"""Performance comparison: a compact Fig. 14 reproduction.

Sweeps database sizes for the three representative fragments the paper
benchmarks — selection (#40), join (#46) and aggregation (#38) — and
prints original-vs-inferred page load times under lazy and eager
association fetching.

Run:  python examples/performance_comparison.py
"""

from repro.bench.harness import measure_original, measure_transformed
from repro.core.qbs import QBS
from repro.core.transform import TransformedFragment
from repro.corpus.registry import WILOS_FRAGMENTS, run_fragment_through_qbs
from repro.corpus.schema import create_wilos_database, populate_wilos
from repro.corpus.wilos import make_wilos_service

EXPERIMENTS = [
    ("Fig 14a selection 10%", "w40", "w40_unfinished_projects",
     dict(unfinished_fraction=0.1), [2_000, 8_000]),
    ("Fig 14c join", "w46", "w46_get_role_users",
     dict(n_roles=None), [100, 400]),
    ("Fig 14d aggregation", "w38", "w38_count_process_managers",
     dict(manager_fraction=0.1), [2_000, 8_000]),
]


def main() -> None:
    qbs = QBS()
    for title, fragment_id, method, populate_kwargs, sizes in EXPERIMENTS:
        corpus_fragment = next(f for f in WILOS_FRAGMENTS
                               if f.fragment_id == fragment_id)
        result = run_fragment_through_qbs(corpus_fragment, qbs)
        transformed = TransformedFragment(result)
        print("\n%s" % title)
        print("  inferred SQL: %s" % transformed.sql)
        for n in sizes:
            db = create_wilos_database()
            kwargs = dict(populate_kwargs)
            if kwargs.get("n_roles", "missing") is None:
                kwargs["n_roles"] = n
            populate_wilos(db, n_users=n, **kwargs)
            for fetch in ("lazy", "eager"):
                print("  " + measure_original(
                    "original", n, make_wilos_service, db, method,
                    fetch).row())
            print("  " + measure_transformed("inferred", n, transformed,
                                             db).row())


if __name__ == "__main__":
    main()
