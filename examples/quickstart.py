"""Quickstart: the paper's running example, end to end.

Takes the nested-loop join of Fig. 1 (users x roles through an ORM),
walks it through every QBS stage — frontend, verification conditions,
invariant synthesis, formal validation, SQL generation — and then
executes both versions against the bundled database engine to show they
agree and how they compare.

Run:  python examples/quickstart.py
"""

from repro.core.qbs import QBS
from repro.core.transform import TransformedFragment, entity_rows
from repro.corpus.registry import WILOS_FRAGMENTS, compile_fragment
from repro.corpus.schema import create_wilos_database, populate_wilos
from repro.corpus.wilos import make_wilos_service
from repro.core.vcgen import generate_vcs
from repro.kernel.pretty import pretty_fragment
from repro.tor.pretty import pretty


def main() -> None:
    running_example = next(f for f in WILOS_FRAGMENTS
                           if f.fragment_id == "w46")

    print("=" * 72)
    print("1. The code fragment (paper Fig. 1), compiled to the kernel "
          "language")
    print("=" * 72)
    fragment = compile_fragment(running_example)
    print(pretty_fragment(fragment))

    print()
    print("=" * 72)
    print("2. Verification conditions with unknown invariants (Fig. 11)")
    print("=" * 72)
    for vc in generate_vcs(fragment).vcs:
        print(" ", str(vc)[:120] + ("..." if len(str(vc)) > 120 else ""))

    print()
    print("=" * 72)
    print("3. Synthesis + formal validation (Fig. 12) and SQL (Fig. 3)")
    print("=" * 72)
    result = QBS().run(fragment)
    assert result.translated
    for name, predicate in sorted(result.assignment.items()):
        print("  %-12s %s" % (name + ":", predicate))
    print()
    print("  postcondition:", pretty(result.postcondition_expr))
    print("  SQL:          ", result.sql.sql)
    print("  synthesized at template level %d in %.2f s"
          % (result.stats.level, result.elapsed_seconds))

    print()
    print("=" * 72)
    print("4. Original vs transformed on a real database")
    print("=" * 72)
    db = create_wilos_database()
    populate_wilos(db, n_users=500, n_roles=500)
    service = make_wilos_service(db)

    import time
    start = time.perf_counter()
    original = service.w46_get_role_users()
    original_time = time.perf_counter() - start

    transformed = TransformedFragment(result)
    start = time.perf_counter()
    inferred = transformed.execute(db)
    inferred_time = time.perf_counter() - start

    assert entity_rows(original) == inferred, "results must agree"
    print("  both versions return %d users, identical contents and order"
          % len(inferred))
    print("  original (ORM + nested loop): %7.1f ms" % (original_time * 1e3))
    print("  inferred (hash join in DB):   %7.1f ms  (%.0fx faster)"
          % (inferred_time * 1e3, original_time / inferred_time))


if __name__ == "__main__":
    main()
