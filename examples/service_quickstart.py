"""Service quickstart: the corpus pipeline behind the async facade.

Submits a handful of fragments to :class:`repro.service.QBSService`,
streams outcomes as they complete, then re-gathers the same batch to
show the persistent cache answering instead of the synthesizer.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

import asyncio
import shutil
import tempfile

from repro.service import QBSService, ResultCache

FRAGMENTS = ["w46", "w40", "i2", "adv_top10", "adv_joincnt"]


async def demo(cache: ResultCache) -> None:
    service = QBSService(workers=2, cache=cache)

    print("streaming first run (computes everything):")
    for fragment_id in FRAGMENTS:
        await service.submit(fragment_id)
    async for outcome in service.stream():
        result = outcome.result
        if result is None:
            print("  %-12s ! job failed: %s" % (outcome.job.fragment_id,
                                                outcome.error))
            continue
        print("  %-12s %s %-10s %s" % (
            outcome.job.fragment_id, result.status.marker,
            result.status.value,
            result.sql.sql if result.sql else result.reason[:50]))

    print("second run (answered from %s):" % cache.root)
    outcomes = await service.run(FRAGMENTS)
    for outcome in outcomes:
        print("  %-12s from_cache=%s  %.3fs" % (
            outcome.job.fragment_id, outcome.from_cache,
            outcome.elapsed_seconds))


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="qbs-quickstart-")
    try:
        asyncio.run(demo(ResultCache(cache_dir)))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
