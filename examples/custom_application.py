"""Using QBS on your own application code.

Shows the full public-API workflow for a new (non-corpus) application:
declare tables and DAOs, write ordinary imperative service code, point
the frontend at it, and let QBS rewrite the hot method into SQL.

Run:  python examples/custom_application.py
"""

from repro.core.qbs import QBS
from repro.core.transform import TransformedFragment, entity_rows
from repro.frontend import AppRegistry, PythonFrontend
from repro.orm.dao import Dao, query_method
from repro.orm.mapping import EntityType, MappingRegistry
from repro.orm.session import Session
from repro.sql.database import Database


# 1. Schema + DAO -----------------------------------------------------------

class OrderDao(Dao):
    @query_method("SELECT * FROM orders", table="orders",
                  schema=("id", "customer_id", "total", "status"),
                  entity="Order")
    def get_orders(self):
        """All orders."""

    @query_method("SELECT * FROM customers", table="customers",
                  schema=("id", "name", "region"), entity="Customer")
    def get_customers(self):
        """All customers."""


# 2. Ordinary application code ----------------------------------------------

class OrderService:
    def __init__(self, session):
        self.session = session
        self.order_dao = OrderDao(session)

    def shipped_order_customers(self):
        """Customers owning shipped orders — a hand-written join."""
        orders = self.order_dao.get_orders()
        customers = self.order_dao.get_customers()
        result = []
        for c in customers:
            for o in orders:
                if c.id == o.customer_id and o.status == 1:
                    result.append(c)
        return result


def main() -> None:
    # 3. Register the application with the frontend.
    registry = AppRegistry()
    for name, member in vars(OrderDao).items():
        if hasattr(member, "__query_spec__"):
            registry.register_query(name, member.__query_spec__)

    # 4. Compile + infer.
    frontend = PythonFrontend(registry)
    fragment = frontend.compile_function(
        OrderService.shipped_order_customers)
    result = QBS().run(fragment)
    assert result.translated, result.reason
    print("inferred SQL:", result.sql.sql)

    # 5. Check both versions agree on real data.
    db = Database()
    db.create_table("orders", ("id", "customer_id", "total", "status"))
    db.create_table("customers", ("id", "name", "region"))
    db.create_index("customers", "id")
    db.insert_many("customers", (
        {"id": i, "name": "c%d" % i, "region": i % 3} for i in range(50)))
    db.insert_many("orders", (
        {"id": i, "customer_id": i % 50, "total": i * 10, "status": i % 2}
        for i in range(200)))

    mappings = MappingRegistry()
    mappings.register(EntityType("Order", "orders",
                                 ("id", "customer_id", "total", "status")))
    mappings.register(EntityType("Customer", "customers",
                                 ("id", "name", "region")))
    service = OrderService(Session(db, mappings))

    original = entity_rows(service.shipped_order_customers())
    inferred = TransformedFragment(result).execute(db)
    assert original == inferred
    print("original and inferred agree on %d rows (contents and order)"
          % len(inferred))


if __name__ == "__main__":
    main()
