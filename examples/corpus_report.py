"""Corpus report: reproduce the Appendix A table.

Runs QBS over all 49 Wilos/itracker fragments plus the four Sec. 7.3
idioms and prints the paper-style table: fragment id, class, category,
outcome, timing and the inferred SQL for translated fragments.

Run:  python examples/corpus_report.py
"""

from collections import Counter

from repro.core.qbs import QBS, QBSStatus
from repro.corpus import ALL_FRAGMENTS, run_fragment_through_qbs


def main() -> None:
    qbs = QBS()
    counts = {}
    print("%-5s %-40s %-3s %-3s %7s  %s"
          % ("id", "class:line", "cat", "st", "time", "inferred SQL"))
    print("-" * 110)
    for cf in ALL_FRAGMENTS:
        result = run_fragment_through_qbs(cf, qbs)
        counts.setdefault(cf.app, Counter())[result.status] += 1
        marker = result.status.marker
        sql = result.sql.sql if result.sql else result.reason
        print("%-5s %-40s %-3s %-3s %6.2fs  %s" % (
            cf.fragment_id, "%s:%d" % (cf.java_class, cf.line),
            cf.category, marker, result.elapsed_seconds, sql[:70]))
        expected = cf.expected.marker
        if marker != expected:
            print("      ^^ MISMATCH: paper reports %s" % expected)

    print()
    print("Summary (paper Fig. 13: wilos 21/9/3, itracker 12/0/4):")
    for app, counter in counts.items():
        print("  %-9s translated=%d rejected=%d failed=%d" % (
            app, counter[QBSStatus.TRANSLATED],
            counter[QBSStatus.REJECTED], counter[QBSStatus.FAILED]))


if __name__ == "__main__":
    main()
