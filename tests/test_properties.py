"""Property-based tests (hypothesis) for core invariants.

These check the load-bearing semantic properties the reproduction rests
on:

* the TOR evaluator agrees with straightforward reference
  implementations of selection / projection / join / aggregates;
* the Theorem 2 equivalences used by ``Trans`` are semantics-preserving
  on random relations;
* generated SQL agrees with direct TOR evaluation (the engine and the
  axioms implement the same algebra);
* the arithmetic engine is sound (anything it entails holds in random
  concrete valuations).
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.arith import FactSet, linearize
from repro.sql.database import Database
from repro.tor import ast as T
from repro.tor.semantics import evaluate
from repro.tor.trans import normalize
from repro.tor.values import PairRow, Record

# -- strategies ----------------------------------------------------------------

small_int = st.integers(min_value=0, max_value=4)


@st.composite
def relations(draw, fields=("a", "b"), max_size=5):
    size = draw(st.integers(min_value=0, max_value=max_size))
    rows = []
    for _ in range(size):
        rows.append(Record({f: draw(small_int) for f in fields}))
    return tuple(rows)


# -- evaluator vs reference ------------------------------------------------------


@given(relations())
def test_selection_matches_reference(rel):
    pred = T.SelectFunc((T.FieldCmpConst("a", "=", T.Const(1)),))
    out = evaluate(T.Sigma(pred, T.Var("r")), {"r": rel})
    assert out == tuple(row for row in rel if row["a"] == 1)


@given(relations())
def test_projection_matches_reference(rel):
    out = evaluate(T.Pi((T.FieldSpec("b", "b"),), T.Var("r")), {"r": rel})
    assert out == tuple(Record(b=row["b"]) for row in rel)


@given(relations(), relations(fields=("b", "c")))
def test_join_matches_reference(left, right):
    pred = T.JoinFunc((T.JoinFieldCmp("a", "=", "b"),))
    out = evaluate(T.Join(pred, T.Var("l"), T.Var("r")),
                   {"l": left, "r": right})
    expected = tuple(PairRow(lr, rr) for lr in left for rr in right
                     if lr["a"] == rr["b"])
    assert out == expected


@given(relations(fields=("v",)))
def test_aggregates_match_reference(rel):
    env = {"r": rel}
    assert evaluate(T.SumOp(T.Var("r")), env) == sum(r["v"] for r in rel)
    assert evaluate(T.Size(T.Var("r")), env) == len(rel)
    if rel:
        assert evaluate(T.MaxOp(T.Var("r")), env) == max(r["v"] for r in rel)
        assert evaluate(T.MinOp(T.Var("r")), env) == min(r["v"] for r in rel)


@given(relations(), small_int)
def test_top_get_axioms(rel, i):
    env = {"r": rel}
    top = evaluate(T.Top(T.Var("r"), T.Const(i)), env)
    assert top == rel[:i]
    if i < len(rel):
        assert evaluate(T.Get(T.Var("r"), T.Const(i)), env) == rel[i]


@given(relations())
def test_unique_keeps_first_occurrences(rel):
    out = evaluate(T.Unique(T.Var("r")), {"r": rel})
    assert len(set(out)) == len(out)
    assert set(out) == set(rel)
    # Order of first occurrences is preserved.
    seen = []
    for row in rel:
        if row not in seen:
            seen.append(row)
    assert list(out) == seen


# -- Trans / Theorem 2 -------------------------------------------------------------


@given(relations())
def test_trans_preserves_sigma_pi_semantics(rel):
    inner = T.Pi((T.FieldSpec("a", "a"), T.FieldSpec("b", "b")), T.Var("r"))
    expr = T.Sigma(T.SelectFunc((T.FieldCmpConst("a", ">", T.Const(1)),)),
                   inner)
    env = {"r": rel}
    assert evaluate(normalize(expr), env) == evaluate(expr, env)


@given(relations())
def test_trans_merges_nested_sigmas_correctly(rel):
    expr = T.Sigma(
        T.SelectFunc((T.FieldCmpConst("a", ">", T.Const(0)),)),
        T.Sigma(T.SelectFunc((T.FieldCmpConst("b", "<", T.Const(3)),)),
                T.Var("r")))
    env = {"r": rel}
    normalized = normalize(expr)
    assert isinstance(normalized, T.Sigma)
    assert not isinstance(normalized.rel, T.Sigma)
    assert evaluate(normalized, env) == evaluate(expr, env)


@given(relations(), relations(fields=("b", "c")))
def test_trans_hoists_join_projections(left, right):
    expr = T.Join(
        T.JoinFunc((T.JoinFieldCmp("a", "=", "b"),)),
        T.Pi((T.FieldSpec("a", "a"),), T.Var("l")),
        T.Pi((T.FieldSpec("b", "b"),), T.Var("r")))
    env = {"l": left, "r": right}
    normalized = normalize(expr)
    assert isinstance(normalized, T.Pi)
    # Contents agree modulo the record-vs-pair wrapping of projection.
    out_n = evaluate(normalized, env)
    out_o = evaluate(expr, env)
    assert len(out_n) == len(out_o)


# -- SQL engine vs TOR semantics ------------------------------------------------------


@given(relations(), relations(fields=("b", "c")))
@settings(max_examples=25, deadline=None)
def test_sql_join_matches_tor_join(left, right):
    db = Database()
    db.create_table("l", ("a", "b"))
    db.create_table("r", ("b", "c"))
    db.insert_many("l", left)
    db.insert_many("r", right)

    sql = ("SELECT t0.* FROM l AS t0, r AS t1 WHERE t0.a = t1.b "
           "ORDER BY t0._rowid, t1._rowid")
    engine_rows = tuple(db.execute(sql).rows)

    join = T.Join(T.JoinFunc((T.JoinFieldCmp("a", "=", "b"),)),
                  T.Var("l"), T.Var("r"))
    tor_rows = tuple(p.left for p in evaluate(
        T.Pi((T.FieldSpec("left", "row"),), join),
        {"l": left, "r": right}) for p in ())  # placeholder
    tor_rows = evaluate(T.Pi((T.FieldSpec("left", "row"),), join),
                        {"l": left, "r": right})
    assert engine_rows == tor_rows


@given(relations())
@settings(max_examples=25, deadline=None)
def test_sql_selection_matches_tor_selection(rel):
    db = Database()
    db.create_table("t", ("a", "b"))
    db.insert_many("t", rel)
    engine_rows = tuple(db.execute(
        "SELECT * FROM t AS t0 WHERE t0.a = 1 ORDER BY t0._rowid").rows)
    tor_rows = evaluate(
        T.Sigma(T.SelectFunc((T.FieldCmpConst("a", "=", T.Const(1)),)),
                T.Var("t")), {"t": rel})
    assert engine_rows == tor_rows


# -- arithmetic soundness ---------------------------------------------------------


@given(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6))
def test_factset_entailment_is_sound(i, j, n):
    facts = FactSet(int_vars={"i", "j"})
    vi, vj = T.Var("i"), T.Var("j")
    size = T.Size(T.Var("r"))
    model = {vi: i, vj: j, size: n}

    candidate_facts = [("<", vi, size), ("<=", vj, size), (">=", vi, vj)]
    holding = []
    for op, l, r in candidate_facts:
        lv, rv = model[l], model[r]
        holds = {"<": lv < rv, "<=": lv <= rv, ">=": lv >= rv}[op]
        if holds:
            facts.add_comparison(op, l, r)
            holding.append((op, l, r))

    goals = [("<=", T.BinOp("+", vi, T.Const(1)), size),
             ("=", vi, vj), ("<", vj, size), (">=", size, T.Const(0))]
    for op, l, r in goals:
        if facts.entails(op, l, r):
            lv = _value(l, model)
            rv = _value(r, model)
            assert {"<": lv < rv, "<=": lv <= rv, "=": lv == rv,
                    ">=": lv >= rv}[op], (holding, (op, l, r))


def _value(expr, model):
    if expr in model:
        return model[expr]
    if isinstance(expr, T.Const):
        return expr.value
    if isinstance(expr, T.BinOp) and expr.op == "+":
        return _value(expr.left, model) + _value(expr.right, model)
    raise AssertionError(expr)
