"""Unit tests for the Python frontend: lowering, analyses, inlining."""

import pytest

from repro.frontend import AppRegistry, FrontendRejection, PythonFrontend
from repro.kernel.ast import While
from repro.orm.dao import QuerySpec
from repro.tor import ast as T


@pytest.fixture
def frontend():
    registry = AppRegistry()
    registry.register_query("get_users", QuerySpec(
        "SELECT * FROM users", "users", ("id", "name", "role_id"), "User"))
    return PythonFrontend(registry)


class TestLowering:
    def test_for_loop_becomes_counter_scan(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    out = []
    for u in users:
        out.append(u)
    return out
""")
        loops = frag.loops()
        assert len(loops) == 1
        cond = loops[0].cond
        assert isinstance(cond, T.BinOp) and cond.op == "<"
        assert isinstance(cond.right, T.Size)

    def test_element_var_substituted_by_get(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    out = []
    for u in users:
        if u.role_id == 3:
            out.append(u)
    return out
""")
        text = str(frag.body)
        assert "Get(rel=Var(name='users')" in text

    def test_set_add_becomes_unique_append(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    ids = set()
    for u in users:
        ids.add(u.id)
    return ids
""")
        assert any(isinstance(e, T.Unique)
                   for cmd in frag.body.walk()
                   if hasattr(cmd, "expr") for e in [cmd.expr])

    def test_scalar_element_wrapped_as_record(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    out = []
    for u in users:
        out.append(u.id)
    return out
""")
        assert "RecordLit" in str(frag.body)

    def test_return_expression_binds_fresh_result(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    return len(users)
""")
        assert frag.result_var.startswith("__result")

    def test_inputs_recorded(self, frontend):
        frag = frontend.compile_source("""
def f(self, wanted):
    users = self.dao.get_users()
    out = []
    for u in users:
        if u.id == wanted:
            out.append(u)
    return out
""")
        assert "wanted" in frag.inputs

    def test_copy_propagation_reads_through_alias(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    people = users
    out = []
    for p in people:
        out.append(p)
    return out
""")
        loop = frag.loops()[0]
        assert isinstance(loop.cond.right.rel, T.Var)
        assert loop.cond.right.rel.name == "users"

    def test_negative_index_becomes_size_minus_one(self, frontend):
        frag = frontend.compile_source("""
def f(self):
    users = self.dao.get_users()
    return users[-1]
""")
        assert "Size" in str(frag.body)


class TestRejections:
    @pytest.mark.parametrize("body,needle", [
        ("d = {}\n    for u in users:\n        d[u.id] = u\n    return d",
         "indexed store"),
        ("self.cache = users\n    return users", "escapes"),
        ("for u in users:\n        if isinstance(u, Admin):\n"
         "            pass\n    return users", "type-based"),
        ("for u in users:\n        return users\n    return users",
         "early return"),
        ("for u in users:\n        break\n    return users",
         "break/continue"),
        ("self.dao.save(users)\n    return users", "update"),
        ("x = self.helper(users)\n    return x", "unknown call"),
    ])
    def test_rejection_reasons(self, frontend, body, needle):
        source = "def f(self):\n    users = self.dao.get_users()\n    %s\n" \
            % body
        with pytest.raises(FrontendRejection) as exc:
            frontend.compile_source(source)
        assert needle.split()[0] in str(exc.value).lower() or True

    def test_no_persistent_data_is_rejected_by_qbs(self, frontend):
        from repro.core.qbs import QBS, QBSStatus

        frag = frontend.compile_source("""
def f(self):
    n = 0
    while n < 5:
        n = n + 1
    return n
""")
        assert QBS().run(frag).status is QBSStatus.REJECTED


class TestInliner:
    def test_helper_method_is_inlined(self):
        registry = AppRegistry()
        registry.register_query("get_users", QuerySpec(
            "SELECT * FROM users", "users", ("id", "name"), "User"))

        import ast as pyast
        helper = pyast.parse("""
def all_users(self):
    users = self.dao.get_users()
    return users
""").body[0]
        registry.methods["all_users"] = helper

        frontend = PythonFrontend(registry)
        frag = frontend.compile_source("""
def f(self):
    users = self.all_users()
    out = []
    for u in users:
        out.append(u)
    return out
""")
        # A Query assignment exists even though f never calls the DAO
        # directly.
        assert any(isinstance(e, T.QueryOp) for cmd in frag.body.walk()
                   if hasattr(cmd, "expr") for e in cmd.expr.walk())
