"""Unit tests for the persistent worker pool's moving parts.

The SQL-level contracts (equivalence, chaos, cache metrics) live in
``tests/sql/``; this file pins the pool mechanics in isolation: the
length-prefixed frame protocol, the driver-owned LRU table cache and
its explicit ``drop`` frames, longest-estimate-first dispatch, and the
process-wide singleton lifecycle.
"""

import os

import pytest

from repro.service import pool as pool_mod
from repro.service.pool import WorkerPool, get_pool, reset_pool


# -- framing -------------------------------------------------------------------


def test_frame_roundtrip_over_a_pipe():
    read_fd, write_fd = os.pipe()
    try:
        # Stay under the 64 KiB pipe buffer: there is no concurrent
        # reader here, so a larger frame would block the writer.
        for payload in (b"x", b"a" * 30000, b""):
            pool_mod._write_frame(write_fd, payload)
            assert pool_mod._read_frame(read_fd) == payload
    finally:
        os.close(read_fd)
        os.close(write_fd)


def test_eof_at_frame_boundary_reads_as_none():
    read_fd, write_fd = os.pipe()
    pool_mod._write_frame(write_fd, b"last")
    os.close(write_fd)
    try:
        assert pool_mod._read_frame(read_fd) == b"last"
        assert pool_mod._read_frame(read_fd) is None  # clean close
    finally:
        os.close(read_fd)


def test_eof_mid_frame_is_corruption_not_a_clean_close():
    read_fd, write_fd = os.pipe()
    # A header promising 100 bytes, then only 3 before the close.
    os.write(write_fd, pool_mod._HEADER.pack(100) + b"abc")
    os.close(write_fd)
    try:
        with pytest.raises(EOFError):
            pool_mod._read_frame(read_fd)
    finally:
        os.close(read_fd)


# -- worker-visible jobs (picklable; children inherit this module) -------------


class FakeTable:
    """Just enough of a Table for shipping: rows with a length."""

    def __init__(self, n):
        self.rows = [None] * n


class CacheKeysJob:
    """Returns the digests the *worker* currently caches — the ground
    truth the driver's LRU bookkeeping must match."""

    def __init__(self, part=0, digests=(), est=0):
        self.part = part
        self.digest_map = {"t%d" % i: d for i, d in enumerate(digests)}
        self.est = est

    def run_in_worker(self, cache):
        return sorted(key for key in cache if not key.startswith("_"))


class SeqJob:
    """Returns its worker-side execution sequence number."""

    def __init__(self, part, est):
        self.part = part
        self.est = est
        self.digest_map = {}

    def run_in_worker(self, cache):
        seq = cache.get("_seq", 0)
        cache["_seq"] = seq + 1
        return seq


@pytest.fixture
def one_worker_pool():
    pool = WorkerPool(size=1, cache_tables_per_worker=2)
    yield pool
    pool.close()


def test_empty_job_list_is_a_noop(one_worker_pool):
    assert one_worker_pool.run_jobs([], {}) == []


def test_lru_eviction_sends_drop_frames(one_worker_pool):
    """With 2 cache slots, shipping a third table must evict the least
    recently used digest on *both* sides: the driver's bookkeeping and
    the worker's actual cache (via an explicit ``drop`` frame)."""
    pool = one_worker_pool
    tables = {"d1": FakeTable(3), "d2": FakeTable(4), "d3": FakeTable(5)}
    assert pool.run_jobs([CacheKeysJob(digests=("d1", "d2"))],
                         tables) == [["d1", "d2"]]
    worker = pool._workers[0]
    assert list(worker.cached) == ["d1", "d2"]
    # d3 arrives; d1 is oldest and must go — from the worker too.
    assert pool.run_jobs([CacheKeysJob(digests=("d2", "d3"))],
                         tables) == [["d2", "d3"]]
    assert list(worker.cached) == ["d2", "d3"]


def test_cache_hit_refreshes_lru_order(one_worker_pool):
    """Re-using a digest moves it to the young end, so the *other*
    table is the one evicted next."""
    pool = one_worker_pool
    tables = {"d1": FakeTable(1), "d2": FakeTable(1), "d3": FakeTable(1)}
    pool.run_jobs([CacheKeysJob(digests=("d1", "d2"))], tables)
    pool.run_jobs([CacheKeysJob(digests=("d1",))], tables)  # touch d1
    pool.run_jobs([CacheKeysJob(part=1, digests=("d3",))], tables)
    assert list(pool._workers[0].cached) == ["d1", "d3"]  # d2 evicted


def test_warm_pool_ships_each_table_once(one_worker_pool):
    pool = one_worker_pool
    tables = {"d1": FakeTable(7)}
    shipped_before = pool_mod._ROWS_SHIPPED.total()
    for part in range(4):
        pool.run_jobs([CacheKeysJob(part=part, digests=("d1",))], tables)
    assert pool_mod._ROWS_SHIPPED.total() == shipped_before + 7.0


def test_dispatch_is_longest_estimate_first(one_worker_pool):
    """On a single worker the execution order is fully observable: the
    job with the largest ``est`` runs first, ties break on index, and
    results still come back slotted in job order."""
    jobs = [SeqJob(part=0, est=1), SeqJob(part=1, est=5),
            SeqJob(part=2, est=3), SeqJob(part=3, est=5)]
    sequence = one_worker_pool.run_jobs(jobs, {})
    # est=5 (index 1), est=5 (index 3), est=3, est=1 — in job order the
    # sequence numbers land as below.
    assert sequence == [3, 0, 2, 1]


# -- singleton lifecycle -------------------------------------------------------


def test_get_pool_is_a_singleton_until_reset():
    reset_pool()
    first = get_pool()
    try:
        assert get_pool() is first
        assert not first.closed
    finally:
        reset_pool()
    assert first.closed
    replacement = get_pool()
    try:
        assert replacement is not first
    finally:
        reset_pool()


def test_closed_pool_refuses_new_work():
    from repro.service import faults

    pool = WorkerPool(size=1)
    pool.close()
    with pytest.raises(faults.SubstrateUnavailable):
        pool.run_jobs([SeqJob(part=0, est=0)], {})


def test_workers_gauge_tracks_pool_size():
    reset_pool()
    pool = WorkerPool(size=2)
    try:
        pool.ensure_workers()
        assert pool_mod._WORKERS.value() == 2.0
    finally:
        pool.close()
    assert pool_mod._WORKERS.value() == 0.0
