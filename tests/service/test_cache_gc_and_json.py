"""Cache eviction (``cache gc``) and machine output (``run --json``)."""

import json
import os
import time

from repro.service.cache import ResultCache
from repro.service.cli import main
from repro.service.jobs import job_for
from repro.core.qbs import QBSOptions
from repro.corpus.registry import select_fragments


def _seed_cache(root, fragment_ids):
    cache = ResultCache(str(root))
    options = QBSOptions()
    paths = []
    for fid in fragment_ids:
        (cf,) = select_fragments(ids=[fid])
        job = job_for(cf, options)
        paths.append(cache.store(job, {"status": "translated",
                                       "marker": "X",
                                       "fragment_id": fid}))
    return cache, paths


class TestGc:
    def test_evicts_oldest_first(self, tmp_path):
        cache, paths = _seed_cache(tmp_path, ["w40", "w42", "i2"])
        # Make the first entry clearly the oldest.
        old = time.time() - 1000
        os.utime(paths[0], (old, old))
        sizes = [os.path.getsize(p) for p in paths]
        budget = sizes[1] + sizes[2]
        accounting = cache.gc(budget)
        assert accounting["removed"] == 1
        assert not os.path.exists(paths[0])
        assert os.path.exists(paths[1]) and os.path.exists(paths[2])
        assert accounting["remaining_bytes"] <= budget

    def test_zero_budget_clears_everything(self, tmp_path):
        cache, paths = _seed_cache(tmp_path, ["w40", "w42"])
        accounting = cache.gc(0)
        assert accounting["removed"] == 2
        assert accounting["remaining_entries"] == 0
        assert cache.info()["entries"] == 0

    def test_gc_within_budget_is_a_no_op(self, tmp_path):
        cache, paths = _seed_cache(tmp_path, ["w40"])
        accounting = cache.gc(10 ** 9)
        assert accounting["removed"] == 0
        assert os.path.exists(paths[0])

    def test_cli_gc_flag(self, tmp_path, capsys):
        _seed_cache(tmp_path, ["w40", "w42"])
        code = main(["cache", "--gc", "--max-bytes", "0",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "evicted 2 entries" in capsys.readouterr().out

    def test_cli_gc_action_spelling(self, tmp_path, capsys):
        _seed_cache(tmp_path, ["w40"])
        code = main(["cache", "gc", "--max-bytes", "0",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "evicted 1 entry" in capsys.readouterr().out

    def test_cli_gc_requires_budget(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_cli_gc_conflicting_action_is_an_error(self, tmp_path,
                                                   capsys):
        cache, paths = _seed_cache(tmp_path, ["w40"])
        assert main(["cache", "clear", "--gc", "--max-bytes", "0",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "conflicts" in capsys.readouterr().err
        assert os.path.exists(paths[0])  # nothing was evicted


class TestRunJson:
    def test_json_document_shape(self, tmp_path, capsys):
        code = main(["run", "--fragments", "w40,w17", "--json",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        by_id = {f["fragment_id"]: f for f in document["fragments"]}
        assert by_id["w40"]["result"]["marker"] == "X"
        assert by_id["w40"]["result"]["sql"]["sql"].startswith("SELECT")
        assert by_id["w40"]["matches_expected"]
        assert by_id["w17"]["result"]["status"] == "rejected"
        assert document["summary"]["fragments"] == 2
        assert document["summary"]["mismatches"] == 0

    def test_json_is_cache_aware_and_check_compatible(self, tmp_path,
                                                      capsys):
        assert main(["run", "--fragments", "w40", "--json", "--check",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["run", "--fragments", "w40", "--json", "--check",
                     "--expect-cached",
                     "--cache-dir", str(tmp_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["cache_hits"] == 1
