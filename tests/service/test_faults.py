"""Chaos suite: deterministic fault injection against the scheduler.

The resilience contract (``docs/robustness.md``): every failure gets a
taxonomy code, retryable failures converge to the fault-free outcome
fingerprint under the :class:`RetryPolicy`, poison jobs trip the
per-job circuit breaker with the right final classification, and no
failure mode — crash, hang, corrupt payload, SIGTERM-ignoring worker —
leaks a zombie or hangs the parent.
"""

import os
import signal
import time
from collections import Counter

import pytest

from repro.corpus.registry import (
    ITRACKER_FRAGMENTS,
    WILOS_FRAGMENTS,
    select_fragments,
)
from repro.service import faults
from repro.service import scheduler as scheduler_module
from repro.service.faults import (
    CorruptPayload,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    PermanentFault,
    RetryPolicy,
    TransientFault,
    WorkerCrash,
)
from repro.service.jobs import execute_job
from repro.service.scheduler import (
    Scheduler,
    _WorkerHandle,
    fork_map,
    outcome_fingerprint,
)

# -- taxonomy / policy units ---------------------------------------------------


def test_backoff_schedule_is_deterministic_and_capped():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.05,
                         backoff_multiplier=2.0, backoff_cap=0.15)
    assert [policy.backoff(a) for a in (1, 2, 3, 4)] \
        == [0.05, 0.1, 0.15, 0.15]


def test_retry_policy_splits_retryable_from_permanent():
    policy = RetryPolicy(max_attempts=3)
    for kind in (faults.TIMEOUT, faults.CRASH, faults.CORRUPT_PAYLOAD,
                 faults.TRANSIENT):
        assert policy.allows_retry(kind, 1)
        assert policy.allows_retry(kind, 2)
        assert not policy.allows_retry(kind, 3)      # circuit breaker
    assert not policy.allows_retry(faults.PERMANENT, 1)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_final_failure_kind_converts_transient():
    assert faults.final_failure_kind(faults.TRANSIENT) \
        == faults.TRANSIENT_EXHAUSTED
    for kind in (faults.TIMEOUT, faults.CRASH, faults.CORRUPT_PAYLOAD,
                 faults.PERMANENT):
        assert faults.final_failure_kind(kind) == kind


def test_classify_exception_reads_fault_kinds():
    assert faults.classify_exception(TransientFault("x")) == faults.TRANSIENT
    assert faults.classify_exception(WorkerCrash("x")) == faults.CRASH
    assert faults.classify_exception(ValueError("x")) == faults.PERMANENT
    # Typed faults are still RuntimeErrors: pre-taxonomy catchers work.
    assert isinstance(WorkerCrash("x"), RuntimeError)


def test_deadline_budget_and_check():
    assert Deadline.after(None) is None
    deadline = Deadline.after(60.0)
    assert 0 < deadline.remaining() <= 60.0 and not deadline.expired()
    spent = Deadline.after(0.0)
    assert spent.expired() and spent.remaining() == 0.0
    with pytest.raises(DeadlineExceeded):
        spent.check("unit test")


def test_error_payload_round_trips_typed_faults():
    corrupt = faults.fault_from_payload(
        faults.error_payload(faults.CORRUPT_PAYLOAD, "garbled"))
    assert isinstance(corrupt, CorruptPayload) and "garbled" in str(corrupt)
    assert isinstance(
        faults.fault_from_payload(
            faults.error_payload(faults.TRANSIENT, "flaky")),
        TransientFault)
    assert isinstance(
        faults.fault_from_payload(
            faults.error_payload(faults.PERMANENT, "bug")),
        PermanentFault)


# -- fault-plan determinism ----------------------------------------------------


def test_fault_plan_is_a_pure_function_of_seed_key_attempt():
    plan = FaultPlan(seed=3, crash=0.2, hang=0.1, transient=0.2,
                     corrupt=0.1)
    keys = ["job-%d" % i for i in range(50)]
    first = [plan.decide(k) for k in keys]
    assert first == [plan.decide(k) for k in keys]          # no clocks
    assert first == [FaultPlan(seed=3, crash=0.2, hang=0.1, transient=0.2,
                               corrupt=0.1).decide(k) for k in keys]
    assert any(first)                                       # it does inject
    # A different seed reshuffles which keys fault.
    other = [FaultPlan(seed=4, crash=0.2, hang=0.1, transient=0.2,
                       corrupt=0.1).decide(k) for k in keys]
    assert other != first


def test_fault_plan_heals_after_faulty_attempts_except_poison():
    plan = FaultPlan(faults={"flaky": faults.CRASH},
                     poison={"doomed": faults.CRASH}, faulty_attempts=2)
    assert plan.decide("flaky", attempt=1) == faults.CRASH
    assert plan.decide("flaky", attempt=2) == faults.CRASH
    assert plan.decide("flaky", attempt=3) is None          # healed
    assert plan.decide("doomed", attempt=99) == faults.CRASH  # never heals
    assert plan.decide("bystander", attempt=1) is None


def test_fault_plan_validates_rates_and_kinds():
    with pytest.raises(ValueError):
        FaultPlan(crash=0.6, hang=0.6)
    with pytest.raises(ValueError):
        FaultPlan(crash=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(faults={"j": "not-a-kind"})
    with pytest.raises(ValueError):
        FaultPlan(poison={"j": faults.TIMEOUT})  # timeout is not injectable


def test_perturb_in_parent_raises_instead_of_exiting():
    plan = FaultPlan(faults={"k": faults.CRASH})
    with pytest.raises(WorkerCrash):
        faults.perturb(plan, "k", attempt=1)
    assert faults.perturb(plan, "k", attempt=2) is None     # healed
    assert faults.perturb(None, "k") is None                # no plan, no-op
    with pytest.raises(CorruptPayload):
        faults.perturb(FaultPlan(poison={"k": faults.CORRUPT_PAYLOAD}), "k")
    with pytest.raises(TransientFault):
        faults.perturb(FaultPlan(poison={"k": faults.TRANSIENT}), "k")


def test_injected_scopes_the_installed_plan():
    assert faults.installed_plan() is None
    plan = FaultPlan(seed=1)
    with faults.injected(plan) as installed:
        assert installed is plan and faults.installed_plan() is plan
    assert faults.installed_plan() is None


# -- chaos runs through the scheduler ------------------------------------------

#: Chosen so the plan below faults >= 10% of the Fig. 13 corpus with
#: every injectable kind represented (asserted in the test, so a
#: corpus change that invalidates the seed fails loudly).
_CHAOS_PLAN = FaultPlan(seed=0, crash=0.06, hang=0.05, transient=0.06,
                        corrupt=0.06, faulty_attempts=1, hang_seconds=30.0)


def _chaos_runner(fragment_id, options_dict):
    """Worker entry that consults the installed fault plan first.

    Fork-started workers inherit both this swap and the installed plan,
    so one plan drives faults on both sides of the pipe."""
    poisoned = faults.perturb(faults.installed_plan(), fragment_id)
    if poisoned is not None:
        return poisoned     # CorruptResult: explodes when the parent recvs
    return execute_job(fragment_id, options_dict)


def test_chaos_corpus_converges_to_fault_free_fingerprint(monkeypatch):
    fragments = WILOS_FRAGMENTS + ITRACKER_FRAGMENTS
    decided = {cf.fragment_id: _CHAOS_PLAN.decide(cf.fragment_id)
               for cf in fragments}
    faulted = {k: v for k, v in decided.items() if v is not None}
    kinds = Counter(faulted.values())
    assert len(faulted) >= max(2, len(fragments) // 10)     # >= 10% chaos
    for kind in (faults.CRASH, faults.HANG, faults.CORRUPT_PAYLOAD,
                 faults.TRANSIENT):
        assert kinds[kind] >= 1, "plan seed no longer covers %s" % kind

    baseline = Scheduler(workers=3).run(fragments)
    assert baseline.failed == 0

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _chaos_runner)
    with faults.injected(_CHAOS_PLAN):
        chaotic = Scheduler(
            workers=3, job_timeout=0.75,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
        ).run(fragments)

    assert chaotic.failed == 0      # every injected fault was absorbed
    assert outcome_fingerprint(chaotic.outcomes) \
        == outcome_fingerprint(baseline.outcomes)
    by_id = {o.job.fragment_id: o for o in chaotic.outcomes}
    for fragment_id, outcome in by_id.items():
        if fragment_id in faulted:
            assert outcome.attempts == 2, \
                "%s (%s) should heal on the retry" \
                % (fragment_id, faulted[fragment_id])
        else:
            assert outcome.attempts == 1, \
                "%s was not faulted but retried" % fragment_id
    assert chaotic.retried == len(faulted)


def test_chaos_inline_path_has_same_semantics(monkeypatch):
    # workers=1 runs in-process; crashes are raised, not exited.
    plan = FaultPlan(faults={"w40": faults.CRASH, "i2": faults.TRANSIENT})
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    baseline = Scheduler(workers=1).run(fragments)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _chaos_runner)
    with faults.injected(plan):
        chaotic = Scheduler(
            workers=1,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
        ).run(fragments)

    assert chaotic.failed == 0
    assert outcome_fingerprint(chaotic.outcomes) \
        == outcome_fingerprint(baseline.outcomes)
    by_id = {o.job.fragment_id: o for o in chaotic.outcomes}
    assert by_id["w40"].attempts == 2
    assert by_id["i2"].attempts == 2
    assert by_id["w42"].attempts == 1


@pytest.mark.parametrize("workers", [1, 2])
def test_poison_jobs_trip_the_circuit_breaker(monkeypatch, workers):
    plan = FaultPlan(poison={"w40": faults.CRASH, "w42": faults.TRANSIENT})
    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _chaos_runner)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    with faults.injected(plan):
        report = Scheduler(
            workers=workers,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
        ).run(fragments)

    by_id = {o.job.fragment_id: o for o in report.outcomes}
    assert not by_id["w40"].ok
    assert by_id["w40"].failure_kind == faults.CRASH
    assert by_id["w40"].attempts == 3           # breaker: bounded respawns
    assert not by_id["w42"].ok
    assert by_id["w42"].failure_kind == faults.TRANSIENT_EXHAUSTED
    assert by_id["w42"].attempts == 3
    assert by_id["i2"].ok and by_id["i2"].failure_kind is None
    assert report.failed == 2


@pytest.mark.parametrize("workers", [1, 2])
def test_permanent_failures_never_retry(monkeypatch, workers):
    def buggy(fragment_id, options_dict):
        if fragment_id == "w42":
            raise ValueError("deterministic application bug")
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", buggy)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    report = Scheduler(
        workers=workers, retry=RetryPolicy(max_attempts=4),
    ).run(fragments)
    by_id = {o.job.fragment_id: o for o in report.outcomes}
    assert not by_id["w42"].ok
    assert by_id["w42"].failure_kind == faults.PERMANENT
    assert by_id["w42"].attempts == 1           # retrying cannot help
    assert "deterministic application bug" in by_id["w42"].error
    assert by_id["w40"].ok and by_id["i2"].ok


def test_poison_corrupt_payload_classified_after_retries(monkeypatch):
    plan = FaultPlan(poison={"w40": faults.CORRUPT_PAYLOAD})
    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _chaos_runner)
    fragments = select_fragments(ids=["w40", "i2"])
    with faults.injected(plan):
        report = Scheduler(
            workers=2, retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
        ).run(fragments)
    by_id = {o.job.fragment_id: o for o in report.outcomes}
    assert not by_id["w40"].ok
    assert by_id["w40"].failure_kind == faults.CORRUPT_PAYLOAD
    assert by_id["w40"].attempts == 2
    assert by_id["i2"].ok


def _sleepy_runner(fragment_id, options_dict):
    time.sleep(60)
    return execute_job(fragment_id, options_dict)


@pytest.mark.parametrize("workers", [1, 2])
def test_run_deadline_fails_unfinished_work_classified(monkeypatch, workers):
    if workers > 1:
        monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _sleepy_runner)
        monkeypatch.setattr(_WorkerHandle, "_JOIN_GRACE", 0.5)
    else:
        # Inline: the deadline is checked between jobs, so let the
        # first job run normally and catch the rest at the boundary.
        monkeypatch.setattr(scheduler_module, "_JOB_RUNNER",
                            lambda f, o: (time.sleep(0.4),
                                          execute_job(f, o))[1])
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    start = time.perf_counter()
    report = Scheduler(workers=workers, deadline=0.3).run(fragments)
    elapsed = time.perf_counter() - start

    assert elapsed < 10                       # wound down, did not block
    assert len(report.outcomes) == 3          # every job got an outcome
    timed_out = [o for o in report.outcomes if not o.ok]
    assert timed_out
    for outcome in timed_out:
        assert outcome.failure_kind == faults.TIMEOUT
        assert "deadline exceeded" in outcome.error


# -- worker shutdown escalation (zombie-leak regression) -----------------------


def _stubborn_worker_main(conn, options_dict):
    """A worker that ignores both the sentinel and SIGTERM."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    conn.send("ready")
    time.sleep(60)


def test_shutdown_escalates_to_sigkill_for_stubborn_workers(monkeypatch):
    import multiprocessing

    monkeypatch.setattr(_WorkerHandle, "_JOIN_GRACE", 0.3)
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe()
    process = context.Process(target=_stubborn_worker_main,
                              args=(child_conn, {}), daemon=True)
    process.start()
    child_conn.close()
    assert parent_conn.recv() == "ready"      # SIGTERM handler installed

    handle = _WorkerHandle(process, parent_conn)
    start = time.perf_counter()
    handle.shutdown(kill=True)
    elapsed = time.perf_counter() - start

    assert not process.is_alive()             # actually reaped, no zombie
    assert process.exitcode == -signal.SIGKILL
    assert elapsed < 5                        # escalated, not full-grace x2


# -- fork_map typed failures ---------------------------------------------------


def test_fork_map_unpicklable_result_is_corrupt_payload():
    import threading

    def locky(x):
        return threading.Lock() if x == 2 else x

    with pytest.raises(CorruptPayload, match="not picklable"):
        fork_map(locky, [1, 2, 3])


def test_fork_map_unpicklable_exception_keeps_its_message():
    class LocalBoom(Exception):     # local class: instance cannot pickle
        pass

    def boom(x):
        if x == 2:
            raise LocalBoom("original diagnosis %d" % x)
        return x

    with pytest.raises(PermanentFault, match="original diagnosis 2"):
        fork_map(boom, [1, 2, 3])


def test_fork_map_child_death_is_worker_crash():
    def die(x):
        if x == 2:
            os._exit(5)
        return x

    with pytest.raises(WorkerCrash, match="exit code 5"):
        fork_map(die, [1, 2, 3])


def test_fork_map_corrupt_result_object_is_corrupt_payload():
    def corrupted(x):
        return faults.CorruptResult("part:%d" % x) if x == 2 else x

    with pytest.raises(CorruptPayload):
        fork_map(corrupted, [1, 2, 3])


def test_fork_map_deadline_reaps_children():
    def slow(x):
        time.sleep(60)
        return x

    start = time.perf_counter()
    with pytest.raises(DeadlineExceeded, match="0/2 results"):
        fork_map(slow, [1, 2], deadline=Deadline.after(0.3))
    assert time.perf_counter() - start < 10   # children terminated

    # Single-item path checks the deadline too (it runs inline).
    with pytest.raises(DeadlineExceeded):
        fork_map(lambda x: x, [1], deadline=Deadline.after(0.0))


def test_fork_map_still_succeeds_with_deadline_headroom():
    assert fork_map(lambda x: x * 2, [1, 2, 3],
                    deadline=Deadline.after(30.0)) == [2, 4, 6]
