"""Job identity and the persistent result cache."""

import json
import os

from repro.core.qbs import QBSOptions, QBSResult, QBSStatus
from repro.core.synthesizer import SynthesisOptions
from repro.corpus.registry import fragment_by_id, run_fragment_through_qbs
from repro.service.cache import ResultCache
from repro.service.jobs import (
    execute_job,
    job_for,
    options_from_payload,
    options_payload,
)


def test_job_key_is_stable():
    cf = fragment_by_id("w46")
    assert job_for(cf).key == job_for(cf).key
    assert job_for(cf, QBSOptions()).key == job_for(cf).key


def test_job_key_distinguishes_fragments_and_options():
    keys = {job_for(fragment_by_id(fid)).key for fid in ("w46", "w40", "i2")}
    assert len(keys) == 3
    cf = fragment_by_id("w46")
    tweaked = QBSOptions(synthesis=SynthesisOptions(max_level=2))
    assert job_for(cf, tweaked).key != job_for(cf).key
    assert job_for(cf, QBSOptions(formal_validation=False)).key \
        != job_for(cf).key
    # Option changes do not touch the kernel hash, only the job key.
    assert job_for(cf, tweaked).kernel_sha == job_for(cf).kernel_sha


def test_rejected_fragments_still_get_keys():
    # w18 is rejected by the frontend (no kernel form exists); the job
    # key hashes the rejection instead of a kernel rendering.
    cf = fragment_by_id("w18")
    job = job_for(cf)
    assert job.key and job.kernel_sha
    assert job.key == job_for(cf).key


def test_options_payload_roundtrip():
    options = QBSOptions(synthesis=SynthesisOptions(max_level=2,
                                                    world_max_size=2),
                         require_translatable=False)
    assert options_from_payload(options_payload(options)) == options


def test_result_json_roundtrip_translated():
    result = run_fragment_through_qbs(fragment_by_id("w46"))
    assert result.status is QBSStatus.TRANSLATED
    payload = result.to_json_dict()
    json.dumps(payload)  # actually JSON-safe
    rebuilt = QBSResult.from_json_dict(payload)
    assert rebuilt.status is QBSStatus.TRANSLATED
    assert rebuilt.sql.sql == result.sql.sql
    assert rebuilt.sql.columns == result.sql.columns
    assert rebuilt.stats == result.stats
    assert rebuilt.postcondition_text  # pretty-printed postcondition
    assert rebuilt.to_json_dict() == payload


def test_result_json_roundtrip_rejected_and_failed():
    for fragment_id, status in (("w17", QBSStatus.REJECTED),
                                ("w20", QBSStatus.FAILED)):
        result = run_fragment_through_qbs(fragment_by_id(fragment_id))
        assert result.status is status
        payload = result.to_json_dict()
        rebuilt = QBSResult.from_json_dict(payload)
        assert rebuilt.status is status
        assert rebuilt.reason == result.reason
        assert rebuilt.to_json_dict() == payload


def test_cache_store_load_clear(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cf = fragment_by_id("w40")
    job = job_for(cf)
    assert cache.load(job) is None

    payload = execute_job(job.fragment_id, options_payload(QBSOptions()))
    path = cache.store(job, payload)
    assert os.path.exists(path)
    assert cache.load(job) == payload
    assert cache.stats.hits == 1 and cache.stats.misses == 1

    info = cache.info()
    assert info["entries"] == 1
    assert info["by_app"] == {"wilos": 1}
    assert cache.clear() == 1
    assert cache.load(job) is None


def test_cache_misses_when_options_change(tmp_path):
    cache = ResultCache(str(tmp_path))
    cf = fragment_by_id("w40")
    payload = execute_job(cf.fragment_id, options_payload(QBSOptions()))
    cache.store(job_for(cf), payload)
    tweaked = QBSOptions(synthesis=SynthesisOptions(max_level=1))
    assert cache.load(job_for(cf, tweaked)) is None
    assert cache.load(job_for(cf)) == payload


def test_cache_tolerates_corrupt_entries(tmp_path):
    # Bad JSON and well-formed JSON of the wrong shape are both
    # misses, never errors — for load(), entries() and info().
    for shape, bad in enumerate(("{ not json", "null", "[]", '"a string"',
                                 '{"version": 1, "key": "x"}')):
        cache = ResultCache(str(tmp_path / ("shape%d" % shape)))
        job = job_for(fragment_by_id("w40"))
        path = cache._path(job.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(bad)
        assert cache.load(job) is None
        assert list(cache.entries()) == []
        assert cache.info()["entries"] == 0
