"""The async facade: submit/gather/stream over the scheduler."""

import asyncio

from repro.service.facade import QBSService
from repro.service.scheduler import Scheduler, outcome_fingerprint
from repro.corpus.registry import fragment_by_id

IDS = ["w40", "w42", "i2", "adv_top10"]

_fingerprint = outcome_fingerprint


def test_submit_then_gather_matches_scheduler():
    async def drive():
        service = QBSService(workers=1)
        jobs = [await service.submit(fragment_id) for fragment_id in IDS]
        assert [job.fragment_id for job in jobs] == IDS
        return await service.gather()

    outcomes = asyncio.run(drive())
    direct = Scheduler(workers=1).run([fragment_by_id(i) for i in IDS])
    assert _fingerprint(outcomes) == _fingerprint(direct.outcomes)


def test_gather_without_submissions_is_empty():
    async def drive():
        service = QBSService(workers=1)
        return await service.gather()

    assert asyncio.run(drive()) == []


def test_stream_yields_each_outcome_in_submission_order():
    async def drive():
        service = QBSService(workers=2)
        for fragment_id in IDS:
            await service.submit(fragment_id)
        seen = []
        async for outcome in service.stream():
            seen.append(outcome)
        # Pending was drained: a second stream yields nothing.
        again = [outcome async for outcome in service.stream()]
        return seen, again

    seen, again = asyncio.run(drive())
    assert [o.job.fragment_id for o in seen] == IDS
    assert all(o.ok for o in seen)
    assert again == []


def test_abandoned_stream_stops_the_run(monkeypatch):
    from repro.service import scheduler as scheduler_module
    from repro.service.jobs import execute_job

    calls = []

    def counting(fragment_id, options_dict):
        calls.append(fragment_id)
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", counting)

    async def drive():
        service = QBSService(workers=1)
        for fragment_id in IDS:
            await service.submit(fragment_id)
        stream = service.stream()
        async for _outcome in stream:
            break               # abandon after the first outcome
        await stream.aclose()   # prompt cleanup (contextlib.aclosing)

    asyncio.run(drive())
    # The scheduler wound down instead of computing the whole batch.
    assert len(calls) < len(IDS)


def test_run_convenience_batches():
    async def drive():
        service = QBSService(workers=1)
        return await service.run(IDS)

    outcomes = asyncio.run(drive())
    assert [o.job.fragment_id for o in outcomes] == IDS
    statuses = {o.job.fragment_id: o.result.status.value for o in outcomes}
    assert statuses["w40"] == "translated"
    assert statuses["adv_top10"] == "translated"
