"""Scheduler semantics: parallel == sequential, cache reuse, timeouts."""

import os
import time

import pytest

from repro.core.qbs import QBSOptions
from repro.core.synthesizer import SynthesisOptions
from repro.corpus.registry import (
    ALL_FRAGMENTS,
    ITRACKER_FRAGMENTS,
    WILOS_FRAGMENTS,
    select_fragments,
)
from repro.service import scheduler as scheduler_module
from repro.service.cache import ResultCache
from repro.service.jobs import execute_job
from repro.service.scheduler import Scheduler, outcome_fingerprint

#: the shared identity contract — one definition, used here and by
#: benchmarks/bench_qbs_parallel.py.
_fingerprint = outcome_fingerprint


def test_parallel_is_outcome_identical_to_sequential_on_fig13():
    fragments = WILOS_FRAGMENTS + ITRACKER_FRAGMENTS
    sequential = Scheduler(workers=1).run(fragments)
    parallel = Scheduler(workers=4).run(fragments)
    assert len(sequential.outcomes) == len(fragments)
    assert _fingerprint(sequential.outcomes) == _fingerprint(parallel.outcomes)
    assert sequential.failed == 0 and parallel.failed == 0
    # Submission order is preserved regardless of completion order.
    got = [o.job.fragment_id for o in parallel.outcomes]
    assert got == [cf.fragment_id for cf in fragments]


def test_worker_errors_become_failed_jobs(monkeypatch):
    def boom(fragment_id, options_dict):
        if fragment_id == "w42":
            raise RuntimeError("synthetic worker crash")
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", boom)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    for workers in (1, 2):
        report = Scheduler(workers=workers).run(fragments)
        by_id = {o.job.fragment_id: o for o in report.outcomes}
        assert not by_id["w42"].ok
        assert "synthetic worker crash" in by_id["w42"].error
        assert by_id["w40"].ok and by_id["i2"].ok


def test_cache_hits_skip_recomputation(tmp_path, monkeypatch):
    calls = []

    def counting(fragment_id, options_dict):
        calls.append(fragment_id)
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", counting)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    cache = ResultCache(str(tmp_path))

    first = Scheduler(workers=1, cache=cache).run(fragments)
    assert len(calls) == 3 and first.cache_hits == 0

    second = Scheduler(workers=1, cache=cache).run(fragments)
    assert len(calls) == 3          # nothing recomputed
    assert second.cache_hits == 3
    assert _fingerprint(first.outcomes) == _fingerprint(second.outcomes)


def test_cache_invalidates_when_options_change(tmp_path, monkeypatch):
    calls = []

    def counting(fragment_id, options_dict):
        calls.append(fragment_id)
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", counting)
    fragments = select_fragments(ids=["w40"])
    cache = ResultCache(str(tmp_path))

    Scheduler(workers=1, cache=cache).run(fragments)
    tweaked = QBSOptions(synthesis=SynthesisOptions(max_level=2))
    Scheduler(workers=1, cache=cache, options=tweaked).run(fragments)
    assert len(calls) == 2          # options change -> key change -> miss

    Scheduler(workers=1, cache=cache).run(fragments)
    Scheduler(workers=1, cache=cache, options=tweaked).run(fragments)
    assert len(calls) == 2          # both configurations now cached


def test_refresh_recomputes_and_restores(tmp_path, monkeypatch):
    calls = []

    def counting(fragment_id, options_dict):
        calls.append(fragment_id)
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", counting)
    fragments = select_fragments(ids=["w40"])
    cache = ResultCache(str(tmp_path))
    Scheduler(workers=1, cache=cache).run(fragments)
    Scheduler(workers=1, cache=cache, refresh=True).run(fragments)
    assert len(calls) == 2


def _sleepy_runner(fragment_id, options_dict):
    if fragment_id == "w40":
        time.sleep(60)
    return execute_job(fragment_id, options_dict)


def test_worker_timeout_surfaces_as_failed_job(monkeypatch):
    # Workers start via fork, so they inherit the patched runner.
    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _sleepy_runner)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    start = time.perf_counter()
    report = Scheduler(workers=2, job_timeout=2.0).run(fragments)
    elapsed = time.perf_counter() - start

    assert elapsed < 30             # no hang: the batch came back
    by_id = {o.job.fragment_id: o for o in report.outcomes}
    assert not by_id["w40"].ok
    assert "timeout" in by_id["w40"].error
    assert by_id["w42"].ok and by_id["i2"].ok
    assert report.failed == 1


def _very_sleepy_runner(fragment_id, options_dict):
    if fragment_id in ("w40", "w42"):
        time.sleep(60)
    return execute_job(fragment_id, options_dict)


def test_saturated_pool_still_completes_queued_jobs(monkeypatch):
    # Both workers hang; the queued job must still run (on replacement
    # workers) and must NOT be mislabeled as a timeout it never had.
    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER",
                        _very_sleepy_runner)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    report = Scheduler(workers=2, job_timeout=1.5).run(fragments)
    by_id = {o.job.fragment_id: o for o in report.outcomes}
    assert "timeout" in by_id["w40"].error
    assert "timeout" in by_id["w42"].error
    assert by_id["i2"].ok
    assert report.failed == 2


def _dying_runner(fragment_id, options_dict):
    if fragment_id == "w42":
        import os
        os._exit(3)             # hard crash: no reply, no cleanup
    return execute_job(fragment_id, options_dict)


def test_worker_death_mid_job_fails_only_that_job(monkeypatch):
    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", _dying_runner)
    fragments = select_fragments(ids=["w40", "w42", "i2"])
    report = Scheduler(workers=2).run(fragments)
    by_id = {o.job.fragment_id: o for o in report.outcomes}
    assert not by_id["w42"].ok
    assert "worker died" in by_id["w42"].error
    assert by_id["w40"].ok and by_id["i2"].ok
    assert report.failed == 1


def test_scheduler_rejects_zero_workers():
    with pytest.raises(ValueError):
        Scheduler(workers=0)


def test_select_fragments_rejects_ids_outside_app_scope():
    with pytest.raises(KeyError):
        select_fragments(app="wilos", ids=["i2"])
    with pytest.raises(KeyError):
        select_fragments(ids=["no_such_fragment"])
    assert [cf.fragment_id
            for cf in select_fragments(app="itracker", ids=["i2"])] == ["i2"]


def test_stop_event_winds_down_early(monkeypatch):
    import threading

    calls = []

    def counting(fragment_id, options_dict):
        calls.append(fragment_id)
        return execute_job(fragment_id, options_dict)

    monkeypatch.setattr(scheduler_module, "_JOB_RUNNER", counting)
    fragments = select_fragments(ids=["w40", "w42", "w46", "i2"])
    stop = threading.Event()
    seen = []
    for outcome in Scheduler(workers=1).run_iter(fragments,
                                                 stop_event=stop):
        seen.append(outcome)
        stop.set()
    assert len(seen) == 1
    assert len(calls) < len(fragments)


def test_full_corpus_counts_through_service():
    report = Scheduler(workers=1).run(list(ALL_FRAGMENTS))
    markers = [o.result.status.marker for o in report.outcomes]
    assert markers.count("X") == 40      # 33 Fig. 13 + 7 advanced
    assert markers.count("†") == 9
    assert markers.count("*") == 9


# -- fork_map (the generic fork fan-out the SQL engine reuses) ----------------


def test_fork_map_preserves_item_order():
    from repro.service.scheduler import fork_map

    # Closures and unpicklable state are fine: children inherit by fork.
    base = {"offset": 100}
    assert fork_map(lambda x: x + base["offset"], [3, 1, 2]) \
        == [103, 101, 102]


def test_fork_map_single_item_runs_inline():
    from repro.service.scheduler import fork_map

    seen = []

    def record(x):
        seen.append(x)          # visible only if run in-process
        return x * 2

    assert fork_map(record, [21]) == [42]
    assert seen == [21]


def test_fork_map_reraises_child_exceptions():
    from repro.service.scheduler import fork_map

    def boom(x):
        if x == 2:
            raise ValueError("bad item %d" % x)
        return x

    with pytest.raises(ValueError, match="bad item 2"):
        fork_map(boom, [1, 2, 3])


def test_fork_map_bounds_concurrent_children():
    """Large K must not fork K children at once: the dispatch loop caps
    live workers at ``usable_cores()`` and releases each worker's pipe
    and process handle as soon as its result is collected.  Run under a
    file-descriptor budget far below what unbounded fan-out needs —
    2 pipe fds per in-flight child plus the process sentinel — so a
    regression fails with EMFILE instead of silently over-forking."""
    import resource

    from repro.service.scheduler import fork_map

    used = len(os.listdir("/proc/self/fd"))
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    budget = min(used + 32, hard if hard != resource.RLIM_INFINITY
                 else used + 32)
    resource.setrlimit(resource.RLIMIT_NOFILE, (budget, hard))
    try:
        items = list(range(200))
        assert fork_map(lambda x: x * 3, items) \
            == [x * 3 for x in items]
    finally:
        resource.setrlimit(resource.RLIMIT_NOFILE, (soft, hard))
