"""The repro-qbs CLI: exit codes and cache round-trips."""

from repro.service.cli import main

SLICE = "w40,w42,i2"


def test_run_check_ok(tmp_path, capsys):
    code = main(["run", "--fragments", SLICE, "--check",
                 "--cache-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "3 fragments" in out and "3 computed" in out


def test_expect_cached_flags_cold_and_accepts_warm(tmp_path, capsys):
    cold = main(["run", "--fragments", SLICE, "--expect-cached",
                 "--cache-dir", str(tmp_path), "--quiet"])
    assert cold == 1
    assert "expected a fully cached run" in capsys.readouterr().out
    warm = main(["run", "--fragments", SLICE, "--expect-cached",
                 "--cache-dir", str(tmp_path), "--quiet"])
    assert warm == 0
    assert "3 from cache" in capsys.readouterr().out


def test_unknown_fragment_exits_2(capsys):
    assert main(["run", "--fragments", "nope", "--no-cache"]) == 2
    assert "unknown corpus fragments" in capsys.readouterr().err


def test_empty_fragments_exits_2_instead_of_running_everything(capsys):
    for value in ("", ","):
        assert main(["run", "--fragments", value, "--no-cache"]) == 2
        assert "names no fragment ids" in capsys.readouterr().err


def test_app_scoped_fragment_mismatch_exits_2(capsys):
    # i2 exists, but not inside --app wilos: an error, not an empty run.
    assert main(["run", "--app", "wilos", "--fragments", "i2",
                 "--no-cache"]) == 2
    assert "in app 'wilos'" in capsys.readouterr().err


def test_status_and_cache_subcommands(tmp_path, capsys):
    main(["run", "--fragments", "w40", "--cache-dir", str(tmp_path),
          "--quiet"])
    assert main(["status", "--fragments", SLICE,
                 "--cache-dir", str(tmp_path)]) == 0
    assert "1/3 fragments cached" in capsys.readouterr().out
    assert main(["cache", "list", "--cache-dir", str(tmp_path)]) == 0
    assert "w40" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed 1" in capsys.readouterr().out
