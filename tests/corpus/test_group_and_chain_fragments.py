"""The GROUP BY and three-table-join corpus fragments, end to end.

Acceptance cut of the planner work: both fragments synthesize (with
formal validation on), translate to SQL that uses the new operators
(GROUP BY; a three-source hash-join chain), execute observably
equivalent to the original code, and surface the expected plan shapes
through EXPLAIN.
"""

import pytest

from repro.core.qbs import QBS
from repro.core.transform import TransformedFragment, entity_rows
from repro.corpus.advanced import create_advanced_database, \
    make_advanced_service
from repro.corpus.registry import fragment_by_id, run_fragment_through_qbs
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions
from repro.tor.pretty import pretty


@pytest.fixture(scope="module")
def results():
    qbs = QBS()
    return {fid: run_fragment_through_qbs(fragment_by_id(fid), qbs)
            for fid in ("adv_groupcnt", "adv_chain")}


@pytest.fixture(scope="module")
def db():
    db = create_advanced_database()
    db.insert_many("r", ({"id": i, "a": i % 7} for i in range(40)))
    db.insert_many("s", ({"id": i, "b": i % 7} for i in range(25)))
    db.insert_many("t", ({"id": i} for i in range(30)))
    db.insert_many("u", ({"id": i, "c": i % 9} for i in range(20)))
    return db


def test_group_fragment_translates_to_group_by(results):
    result = results["adv_groupcnt"]
    assert result.translated
    assert result.sql.sql == (
        "SELECT t0.a, COUNT(*) AS matches FROM r AS t0, s AS t1 "
        "WHERE t0.a = t1.b GROUP BY t0._rowid")
    assert result.sql.columns == ("a", "matches")
    assert "group[" in pretty(result.postcondition_expr)


def test_chain_fragment_translates_to_three_sources(results):
    result = results["adv_chain"]
    assert result.translated
    sql = result.sql.sql
    assert sql.count(" AS t") == 3  # three FROM aliases
    assert "t0.a = t1.b" in sql and "t1.id = t2.c" in sql


def test_group_fragment_is_observationally_equivalent(results, db):
    service = make_advanced_service(db)
    original = entity_rows(service.adv_group_count())
    inferred = TransformedFragment(results["adv_groupcnt"]).execute(db)
    assert tuple(original) == tuple(inferred)
    assert len(inferred) > 0  # the dataset exercises real groups


def test_chain_fragment_is_observationally_equivalent(results, db):
    service = make_advanced_service(db)
    original = entity_rows(service.adv_chain_join())
    inferred = TransformedFragment(results["adv_chain"]).execute(db)
    assert tuple(original) == tuple(inferred)
    assert len(inferred) > 0


def test_chain_sql_is_mode_identical(results, db):
    sql = results["adv_chain"].sql.sql
    planned = db.execute(sql)
    legacy = Database(ExecutorOptions(planner=False))
    legacy.catalog = db.catalog
    legacy.executor.catalog = db.catalog
    assert list(planned.rows) == list(legacy.execute(sql).rows)


def test_explain_shows_hash_join_chain(results, db):
    text = db.explain(results["adv_chain"].sql.sql)
    assert text.count("HashJoin") == 2
    assert "FullScan(r AS t0)" in text


def test_explain_shows_group_operator(results, db):
    text = db.explain(results["adv_groupcnt"].sql.sql)
    assert "GroupBy(t0._rowid)" in text
    assert "HashJoin(t0.a = t1.b)" in text
