"""Corpus conformance: every fragment's outcome matches Appendix A,
and every translated fragment's SQL is observationally equivalent to
the original code on a populated database."""

import pytest

from repro.core.qbs import QBS, QBSStatus
from repro.core.transform import TransformedFragment, entity_rows
from repro.corpus import ALL_FRAGMENTS, run_fragment_through_qbs
from repro.corpus.advanced import create_advanced_database, \
    make_advanced_service
from repro.corpus.registry import ADVANCED_FRAGMENTS, ITRACKER_FRAGMENTS, \
    WILOS_FRAGMENTS
from repro.corpus.schema import (
    create_itracker_database,
    create_wilos_database,
    populate_itracker,
    populate_wilos,
)
from repro.corpus.itracker import make_itracker_service
from repro.corpus.wilos import make_wilos_service


@pytest.fixture(scope="module")
def qbs():
    return QBS()


@pytest.fixture(scope="module")
def results(qbs):
    return {cf.fragment_id: run_fragment_through_qbs(cf, qbs)
            for cf in ALL_FRAGMENTS}


def test_corpus_has_the_paper_population():
    assert len(WILOS_FRAGMENTS) == 33
    assert len(ITRACKER_FRAGMENTS) == 16
    assert len(ADVANCED_FRAGMENTS) == 9


@pytest.mark.parametrize("cf", ALL_FRAGMENTS,
                         ids=[c.fragment_id for c in ALL_FRAGMENTS])
def test_fragment_outcome_matches_paper(cf, results):
    result = results[cf.fragment_id]
    assert result.status == cf.expected, (
        "%s: got %s (%s), paper says %s"
        % (cf.fragment_id, result.status.value, result.reason,
           cf.expected.value))


def test_fig13_totals(results):
    translated = sum(1 for cf in WILOS_FRAGMENTS + ITRACKER_FRAGMENTS
                     if results[cf.fragment_id].status
                     is QBSStatus.TRANSLATED)
    rejected = sum(1 for cf in WILOS_FRAGMENTS + ITRACKER_FRAGMENTS
                   if results[cf.fragment_id].status is QBSStatus.REJECTED)
    failed = sum(1 for cf in WILOS_FRAGMENTS + ITRACKER_FRAGMENTS
                 if results[cf.fragment_id].status is QBSStatus.FAILED)
    assert (translated, rejected, failed) == (33, 9, 7)


# -- observational equivalence -------------------------------------------------

#: (fragment id, method args) for equivalence runs; every translated
#: fragment appears.
WILOS_ARGS = {
    "w19": (), "w22": (), "w23": (), "w25": (), "w29": ("user3",),
    "w30": ("user4", 4), "w31": (), "w32": (), "w33": (), "w34": (),
    "w35": (), "w37": ("proc1",), "w38": (), "w40": (), "w42": (7,),
    "w43": (7,), "w44": (), "w46": (), "w47": (), "w48": (), "w49": (),
}
ITRACKER_ARGS = {
    "i1": (), "i2": (), "i5": (), "i6": (), "i7": (), "i8": (),
    "i11": (), "i12": (1,), "i13": (3,), "i14": (), "i15": (), "i16": (),
}


@pytest.fixture(scope="module")
def wilos_db():
    db = create_wilos_database()
    populate_wilos(db, n_users=60, n_roles=10, unfinished_fraction=0.3,
                   manager_fraction=0.2)
    # Tables the populator does not fill, needed by some fragments.
    db.insert_many("workproduct", (
        {"id": i, "workproduct_name": "wp%d" % i, "state": i % 2,
         "project_id": i % 5} for i in range(20)))
    db.insert_many("workproduct_descriptor", (
        {"id": i, "workproduct_id": i % 25, "process_id": i % 6,
         "state": i % 2} for i in range(30)))
    db.insert_many("role_descriptor", (
        {"id": i, "role_id": i % 10, "process_id": i % 6,
         "descriptor_name": "rd%d" % i} for i in range(25)))
    db.insert_many("process", (
        {"id": i, "process_name": "proc%d" % i, "manager_id": i % 4}
        for i in range(6)))
    return db


@pytest.fixture(scope="module")
def itracker_db():
    db = create_itracker_database()
    populate_itracker(db, n_issues=80)
    return db


def _params_for(fragment, args):
    names = [n for n in fragment.inputs]
    return dict(zip(names, args))


@pytest.mark.parametrize("fragment_id", sorted(WILOS_ARGS))
def test_wilos_equivalence(fragment_id, results, wilos_db):
    cf = next(f for f in WILOS_FRAGMENTS if f.fragment_id == fragment_id)
    result = results[fragment_id]
    assert result.translated
    service = make_wilos_service(wilos_db)
    args = WILOS_ARGS[fragment_id]
    original = getattr(service, cf.method)(*args)
    transformed = TransformedFragment(result)
    inferred = transformed.execute(wilos_db,
                                   _params_for(result.fragment, args))
    _assert_same(original, inferred)


@pytest.mark.parametrize("fragment_id", sorted(ITRACKER_ARGS))
def test_itracker_equivalence(fragment_id, results, itracker_db):
    cf = next(f for f in ITRACKER_FRAGMENTS if f.fragment_id == fragment_id)
    result = results[fragment_id]
    assert result.translated
    service = make_itracker_service(itracker_db)
    args = ITRACKER_ARGS[fragment_id]
    original = getattr(service, cf.method)(*args)
    transformed = TransformedFragment(result)
    inferred = transformed.execute(itracker_db,
                                   _params_for(result.fragment, args))
    _assert_same(original, inferred)


def test_advanced_equivalence(results):
    db = create_advanced_database()
    db.insert_many("r", ({"id": i, "a": i % 7} for i in range(40)))
    db.insert_many("s", ({"id": i, "b": i % 7} for i in range(25)))
    db.insert_many("t", ({"id": i} for i in range(30)))
    db.insert_many("u", ({"id": i, "c": i % 9} for i in range(20)))
    service = make_advanced_service(db)

    for fragment_id, method in (("adv_hash", "adv_hash_join"),
                                ("adv_top10", "adv_sorted_top_ten"),
                                ("adv_joincnt", "adv_join_count"),
                                ("adv_sumsel", "adv_sum_filtered"),
                                ("adv_joinsum", "adv_join_sum"),
                                ("adv_groupcnt", "adv_group_count"),
                                ("adv_chain", "adv_chain_join")):
        result = results[fragment_id]
        assert result.translated
        original = getattr(service, method)()
        inferred = TransformedFragment(result).execute(db)
        _assert_same(original, inferred)


def _unwrap(row):
    """Single-column projected records compare as their scalar value."""
    from repro.tor.values import Record

    if isinstance(row, Record) and len(row.fields) == 1:
        return row[row.fields[0]]
    return row


def _assert_same(original, inferred):
    original_rows = entity_rows(original)
    if isinstance(original, set):
        assert set(map(_unwrap, original_rows)) == set(map(_unwrap, inferred))
    elif isinstance(original, (list, tuple)):
        assert tuple(map(_unwrap, original_rows)) == \
            tuple(map(_unwrap, inferred))
    else:
        assert original == inferred
