"""Unit contract of the metrics registry and its two export formats."""

import json

import pytest

from repro.obs.metrics import REGISTRY, Histogram, MetricsRegistry


def test_counter_accumulates_per_label_set():
    reg = MetricsRegistry()
    c = reg.counter("hits_total", "cache hits")
    c.inc()
    c.inc(2, table="ev")
    c.inc(table="ev")
    assert c.value() == 1
    assert c.value(table="ev") == 3
    assert c.total() == 4
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_overwrites():
    reg = MetricsRegistry()
    g = reg.gauge("margin_seconds")
    g.set(5.0)
    g.set(2.5)
    assert g.value() == 2.5


def test_histogram_buckets_sum_count():
    reg = MetricsRegistry()
    h = reg.histogram("seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 3.0):
        h.observe(v)
    (sample,) = h.samples()
    assert sample["buckets"] == {"0.1": 1, "1.0": 2}
    assert sample["inf"] == 3
    assert sample["count"] == 3
    assert sample["sum"] == pytest.approx(3.55)


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a_total") is reg.counter("a_total")
    with pytest.raises(ValueError):
        reg.gauge("a_total")  # name already bound to a counter
    assert reg.get("a_total").kind == "counter"
    assert reg.get("missing") is None


def test_reset_zeroes_values_but_keeps_registrations():
    reg = MetricsRegistry()
    c = reg.counter("x_total")
    c.inc()
    reg.reset()
    assert reg.get("x_total") is c           # registration survives
    assert c.total() == 0                    # ...but the samples are gone
    assert "x_total" in reg.exposition()


def test_reset_does_not_orphan_module_level_references():
    """Regression: reset() used to clear the registration table, so a
    module-level instrument reference kept recording into an object
    the registry no longer exported — its counts silently vanished
    from snapshot()/exposition().  reset() now delegates to
    reset_values(), so the old reference keeps exporting."""
    reg = MetricsRegistry()
    module_level = reg.counter("engine_ops_total", "ops")
    module_level.inc(7)
    reg.reset()
    module_level.inc()                       # the held reference records...
    assert reg.counter("engine_ops_total") is module_level
    assert module_level.total() == 1
    assert "engine_ops_total 1" in reg.exposition()   # ...and exports
    assert reg.snapshot()["engine_ops_total"]["samples"] != []


def test_exposition_format_is_prometheus_text():
    reg = MetricsRegistry()
    c = reg.counter("queries_total", "queries served")
    c.inc(2, mode="planner")
    c.inc(mode="legacy")
    reg.gauge("up").set(1)
    text = reg.exposition()
    assert text.splitlines() == [
        "# HELP queries_total queries served",
        "# TYPE queries_total counter",
        'queries_total{mode="legacy"} 1',
        'queries_total{mode="planner"} 2',
        "# TYPE up gauge",
        "up 1",
    ]
    assert text.endswith("\n")


def test_exposition_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("odd_total").inc(sql='SELECT "x"\nFROM t')
    line = reg.exposition().splitlines()[-1]
    assert line == 'odd_total{sql="SELECT \\"x\\"\\nFROM t"} 1'


def test_exposition_escapes_hostile_label_values():
    """All three escapes at once, backslash first — a raw ``\\`` in the
    value must not double-escape the quote that follows it."""
    from repro.obs.metrics import escape_label_value

    hostile = 'a\\b"c\nd'
    assert escape_label_value(hostile) == 'a\\\\b\\"c\\nd'
    reg = MetricsRegistry()
    reg.counter("h_total").inc(v=hostile)
    line = reg.exposition().splitlines()[-1]
    assert line == 'h_total{v="a\\\\b\\"c\\nd"} 1'
    # One escaped line: no raw newline leaked into the exposition.
    assert len(reg.exposition().splitlines()) == 2


def test_exposition_escapes_help_text():
    """HELP lines escape backslash and newline (but not quotes — the
    exposition format only quotes label values)."""
    reg = MetricsRegistry()
    reg.counter("w_total", 'matches "x\\y"\nacross lines')
    help_line = reg.exposition().splitlines()[0]
    assert help_line == \
        '# HELP w_total matches "x\\\\y"\\nacross lines'


def test_reset_values_keeps_registrations():
    """The test-isolation primitive: values go to zero, the instruments
    (and every module-level reference to them) stay registered —
    unlike reset(), which orphans them."""
    reg = MetricsRegistry()
    c = reg.counter("x_total", "things")
    g = reg.gauge("y")
    h = reg.histogram("z_seconds")
    c.inc(5, mode="a")
    g.set(3.0)
    h.observe(0.25)
    reg.reset_values()
    assert reg.counter("x_total") is c     # same object, still bound
    assert c.total() == 0
    assert g.value() == 0
    assert h.samples() == []
    c.inc()                                # the old reference still counts
    assert "x_total 1" in reg.exposition()


def test_histogram_exposition_has_cumulative_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    lines = reg.exposition().splitlines()
    assert 'lat_bucket{le="0.1"} 1' in lines
    assert 'lat_bucket{le="1"} 2' in lines
    assert 'lat_bucket{le="+Inf"} 2' in lines
    assert "lat_count 2" in lines


def test_snapshot_is_json_serializable_and_sorted():
    reg = MetricsRegistry()
    reg.counter("b_total").inc(worker=3)
    reg.histogram("a_seconds").observe(0.01)
    snap = reg.snapshot()
    assert list(snap) == ["a_seconds", "b_total"]
    assert snap["b_total"]["type"] == "counter"
    assert snap["b_total"]["samples"] == [
        {"labels": {"worker": "3"}, "value": 1}]
    json.dumps(snap)  # must not raise


def test_global_registry_carries_engine_instruments():
    """Importing the engine registers its cold-site instruments."""
    import repro.sql.database  # noqa: F401  (registers on import)
    import repro.service.cache  # noqa: F401
    assert REGISTRY.get("repro_queries_total") is not None
    assert REGISTRY.get("repro_cache_hits_total") is not None
    assert isinstance(REGISTRY.get("repro_query_seconds"), Histogram)
