"""Unit contract of the span layer: off by default, zero-cost off.

Every other observability suite builds on these invariants: the
module-level :func:`repro.obs.trace.span` helper returns the shared
falsy ``NULL_SPAN`` singleton when no trace is active (so traceable
code never allocates), entering a real span makes it ambient for
nested calls, and the dict round-trip used as the cross-process
transport preserves the tree exactly.
"""

import pickle

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    current_span,
    enabled,
    format_tree,
    span,
)


def test_disabled_by_default():
    assert current_span() is None
    assert not enabled()


def test_span_helper_returns_null_singleton_when_off():
    got = span("anything", foo=1)
    assert got is NULL_SPAN
    assert not got
    # Every mutation is a no-op returning the singleton.
    assert got.child("x") is NULL_SPAN
    assert got.tag(a=1) is NULL_SPAN
    assert got.finish(0.5) is NULL_SPAN
    assert got.adopt({"name": "x"}) is NULL_SPAN
    with got as inner:
        assert inner is NULL_SPAN
    assert not enabled()


def test_entering_a_span_makes_it_ambient():
    root = Span("root", kind="test")
    with root:
        assert current_span() is root
        assert enabled()
        child = span("child", part=0)
        assert child
        with child:
            assert current_span() is child
            grand = span("grand")
            assert grand in child.children
        assert current_span() is root
    assert current_span() is None
    assert root.children == [child]
    assert root.elapsed_seconds is not None
    assert child.elapsed_seconds >= 0.0


def test_reentered_span_accumulates_time():
    node = Span("op")
    with node:
        pass
    first = node.elapsed_seconds
    with node:
        pass
    assert node.elapsed_seconds >= first


def test_exception_tags_error_and_restores_ambient():
    root = Span("root")
    with pytest.raises(ValueError):
        with root:
            raise ValueError("boom")
    assert root.tags["error"] == "ValueError"
    assert current_span() is None


def test_finish_closes_without_timing():
    node = Span("job")
    node.finish(1.25)
    assert node.elapsed_seconds == 1.25


def test_dict_roundtrip_preserves_tree():
    root = Span("query", sql="SELECT 1")
    a = root.child("scan", part=0)
    a.finish(0.002)
    root.child("scan", part=1).child("probe")
    payload = root.to_dict()
    # The transport form must survive pickling (fork workers).
    payload = pickle.loads(pickle.dumps(payload))
    rebuilt = Span.from_dict(payload)
    assert rebuilt.to_dict() == root.to_dict()
    assert format_tree(rebuilt) == format_tree(root)


def test_adopt_accepts_span_and_dict():
    parent = Span("parent")
    parent.adopt(Span("by-object", part=0))
    parent.adopt(Span("by-dict", part=1).to_dict())
    assert [c.name for c in parent.children] == ["by-object", "by-dict"]
    assert parent.children[1].tags == {"part": 1}


def test_walk_is_preorder_and_deterministic():
    root = Span("r")
    a = root.child("a")
    a.child("a1")
    root.child("b")
    assert [(d, s.name) for d, s in root.walk()] \
        == [(0, "r"), (1, "a"), (2, "a1"), (1, "b")]


def test_format_tree_sorts_tags_and_masks_timing():
    root = Span("q", zeta=1, alpha=2)
    root.child("c").finish(0.0015)
    text = format_tree(root)
    assert text == "q  [alpha=2, zeta=1]\n  c"
    timed = format_tree(root, timing=True)
    assert "time=1.500ms" in timed
