"""Socket-level contract of the ops endpoint.

Every test binds ``port=0`` (the OS picks a free ephemeral port) and
talks real HTTP through ``urllib`` — the same path a Prometheus
scraper takes.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench.harness import BENCH_DIR_ENV, write_bench_artifact
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.httpd import METRICS_CONTENT_TYPE, OpsServer


@pytest.fixture()
def server(tmp_path, monkeypatch):
    monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
    ops = OpsServer(port=0).start()
    yield ops
    ops.close()


def _get(server, path):
    with urllib.request.urlopen(server.url(path), timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def test_metrics_route_is_prometheus_exposition(server):
    obs_metrics.counter("repro_queries_total").inc(mode="planner")
    status, content_type, body = _get(server, "/metrics")
    assert status == 200
    assert content_type == METRICS_CONTENT_TYPE
    assert content_type.startswith("text/plain; version=0.0.4")
    lines = body.splitlines()
    assert "# TYPE repro_queries_total counter" in lines
    assert 'repro_queries_total{mode="planner"} 1' in lines
    # The server observes itself: this scrape shows up in the next.
    _, _, again = _get(server, "/metrics")
    assert 'repro_http_requests_total{path="/metrics",status="200"}' in again


def test_pool_instruments_visible_on_metrics(server):
    """serve-metrics imports the pool module for its side effect, so
    the pool's gauges and counters show up in the exposition even when
    this process never dispatched a pool query."""
    from repro.service import cli

    cli._register_pool_instruments()
    _, _, body = _get(server, "/metrics")
    lines = body.splitlines()
    assert "# TYPE repro_pool_workers gauge" in lines
    assert "# TYPE repro_pool_dispatches_total counter" in lines
    assert "# TYPE repro_pool_rows_shipped_total counter" in lines
    # The gauge is pinned to 0.0 at import: a scraper sees "no pool"
    # rather than a missing series.
    assert any(line.startswith("repro_pool_workers ") for line in lines)


def test_healthz(server):
    status, content_type, body = _get(server, "/healthz")
    assert status == 200
    assert content_type == "application/json"
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["pid"] > 0
    assert payload["uptime_seconds"] >= 0


def test_traces_recent_ring(server):
    status, _, body = _get(server, "/traces/recent")
    assert json.loads(body) == {"traces": []}  # ring off by default
    obs_trace.keep_recent_roots(4)
    try:
        with obs_trace.Span("query", sql="SELECT 1"):
            pass
        status, _, body = _get(server, "/traces/recent")
        (trace,) = json.loads(body)["traces"]
        assert trace["trace"]["name"] == "query"
        assert trace["trace"]["tags"]["sql"] == "SELECT 1"
    finally:
        obs_trace.keep_recent_roots(0)


def test_bench_latest(server, tmp_path):
    write_bench_artifact("unit", True, smoke=True)
    status, _, body = _get(server, "/bench/latest")
    assert status == 200
    benches = json.loads(body)["benches"]
    assert benches["unit"]["ok"] is True
    assert benches["unit"]["smoke"] is True


def test_unknown_route_404s_with_route_list(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/nope")
    assert excinfo.value.code == 404
    payload = json.loads(excinfo.value.read().decode("utf-8"))
    assert "/metrics" in payload["routes"]


def test_scrape_during_a_live_corpus_run(server):
    """The acceptance scenario: /metrics and /healthz answer while the
    scheduler is mid-run on another thread."""
    from repro.corpus.registry import select_fragments
    from repro.service.scheduler import Scheduler

    fragments = select_fragments(ids=["w40", "w46", "i2"])
    done = threading.Event()
    reports = []

    def run():
        scheduler = Scheduler(workers=1, cache=None)
        reports.append(scheduler.run(fragments))
        done.set()

    thread = threading.Thread(target=run)
    thread.start()
    scraped = []
    while not done.is_set():
        status, _, body = _get(server, "/metrics")
        assert status == 200
        scraped.append(body)
        health, _, hbody = _get(server, "/healthz")
        assert health == 200 and json.loads(hbody)["status"] == "ok"
    thread.join()
    (report,) = reports
    assert report.failed == 0
    # After the run the jobs counter is visible to a scrape.
    _, _, final = _get(server, "/metrics")
    assert "repro_jobs_total" in final
    assert "repro_jobs_inflight" in final
