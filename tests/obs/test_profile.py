"""The sampling profiler: free when off, span-attributed when on.

Sample *counts* are statistical, so the golden comparisons mask them
(``format_summary(..., mask_counts=True)``) and compare the
deterministic ``spans_seen`` universe instead — which spans were
entered while profiling is a property of the plan, not of scheduler
timing.
"""

import threading
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.profile import NO_SPAN, Profiler, format_summary
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions

SQL = "SELECT e.g, COUNT(*) AS n FROM ev AS e GROUP BY e.g"

#: the deterministic masked form of a profiled serial run of SQL.
GOLDEN_SERIAL = """\
profile  samples=*
span FullScan(ev AS e)  samples=*
span GroupBy(e.g)  samples=*
span query  samples=*"""

#: K=4 adds only the partition fan-out span; every operator span keeps
#: its serial-equivalent label (PhysicalOp.trace_name).
GOLDEN_PARALLEL = """\
profile  samples=*
span FullScan(ev AS e)  samples=*
span GroupBy(e.g)  samples=*
span partition  samples=*
span query  samples=*"""


def _make_db(options=None):
    db = Database(options)
    db.create_table("ev", ["id", "g"])
    db.insert_many("ev", [{"id": i, "g": i % 3} for i in range(4000)])
    db.analyze()
    return db


def _masked(profiler):
    return format_summary(profiler.summary(), mask_counts=True)


# -- free when off -----------------------------------------------------------


def test_off_path_is_untouched():
    """No profile argument: no trace, no profiler, identical results."""
    db = _make_db()
    plain = db.execute(SQL)
    assert plain.trace is None
    assert plain.profile is None
    profiled = _make_db().execute(SQL, profile=True)
    assert profiled.rows == plain.rows
    assert profiled.columns == plain.columns
    assert profiled.stats == plain.stats
    assert profiled.profile.spans_seen  # but this one did sample


def test_explain_identical_with_profiler_sampling():
    db = _make_db()
    before = db.explain(SQL)
    with Profiler(interval_seconds=0.001).sampling():
        during = db.explain(SQL)
    assert during == before


def test_profiling_registers_no_new_instruments():
    """The profiler writes no metrics — the registry's instrument set
    is identical before and after a profiled query."""
    db = _make_db()
    db.execute(SQL)  # fault in every engine instrument first
    names = set(obs_metrics.REGISTRY.snapshot())
    db.execute(SQL, profile=True)
    assert set(obs_metrics.REGISTRY.snapshot()) == names


def test_profile_false_and_none_take_the_off_path():
    db = _make_db()
    for off in (None, False):
        result = db.execute(SQL, profile=off)
        assert result.profile is None
        assert result.trace is None


# -- span attribution --------------------------------------------------------


def test_busy_loop_samples_attribute_to_active_span():
    prof = Profiler(interval_seconds=0.001)
    with prof.sampling():
        with obs_trace.Span("hot-loop"):
            deadline = time.perf_counter() + 0.2
            while time.perf_counter() < deadline:
                sum(range(500))
    assert prof.samples_total > 0
    assert "hot-loop" in prof.spans_seen
    labels = {label for label, _ in prof.samples}
    assert labels <= {"hot-loop", NO_SPAN}
    assert "hot-loop" in labels


def test_masked_golden_serial():
    result = _make_db().execute(SQL, profile=True)
    assert _masked(result.profile) == GOLDEN_SERIAL


def test_masked_golden_parallel_k1_equals_serial():
    """parallel=1 is the serial plan — same span universe."""
    db = _make_db(ExecutorOptions(parallel=1))
    result = db.execute(SQL, profile=True)
    assert _masked(result.profile) == GOLDEN_SERIAL


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_masked_golden_parallel_k4(backend):
    db = _make_db(ExecutorOptions(parallel=4, parallel_backend=backend))
    serial = _make_db().execute(SQL, profile=True)
    result = db.execute(SQL, profile=True)
    assert result.rows == serial.rows
    assert _masked(result.profile) == GOLDEN_PARALLEL
    # Modulo the fan-out span, a parallel run attributes to exactly
    # the serial span set — including across fork, where the samples
    # ship home in the workers' payloads.
    assert (set(result.profile.spans_seen) - {"partition"}
            == set(serial.profile.spans_seen))


def test_shared_profiler_accumulates_across_queries():
    db = _make_db()
    prof = Profiler(interval_seconds=0.001)
    first = db.execute(SQL, profile=prof)
    second = db.execute(SQL, profile=prof)
    assert first.profile is prof and second.profile is prof
    assert _masked(prof) == GOLDEN_SERIAL


# -- lifecycle ---------------------------------------------------------------


def test_start_twice_and_second_live_profiler_are_errors():
    prof = Profiler(interval_seconds=0.001)
    prof.start()
    try:
        with pytest.raises(RuntimeError):
            prof.start()
        with pytest.raises(RuntimeError):
            Profiler(interval_seconds=0.001).start()
    finally:
        prof.stop()
    assert obs_profile.installed() is None
    prof.stop()  # idempotent


def test_sampling_is_reentrancy_safe():
    prof = Profiler(interval_seconds=0.001)
    with prof.sampling():
        with prof.sampling():  # inner: no-op, does not stop the outer
            assert prof.active
        assert prof.active
    assert not prof.active


def test_bad_interval_rejected():
    with pytest.raises(ValueError):
        Profiler(interval_seconds=0)


# -- cross-process transport -------------------------------------------------


def test_payload_absorb_roundtrip_merges():
    a = Profiler()
    a.samples[("query", "main;run")] = 3
    a.spans_seen.add("query")
    a.sample_count = 3
    b = Profiler()
    b.samples[("query", "main;run")] = 2
    b.samples[("partition", "main;part")] = 1
    b.spans_seen.update({"query", "partition"})
    b.sample_count = 3
    a.absorb(b.payload())
    assert a.samples[("query", "main;run")] == 5
    assert a.samples[("partition", "main;part")] == 1
    assert a.spans_seen == {"query", "partition"}
    assert a.sample_count == 6


def test_call_profiled_without_installed_profiler_is_passthrough():
    shipped = obs_profile.call_profiled(lambda: 41 + 1)
    assert shipped == {"result": 42, "profile": None}
    assert obs_profile.absorb_shipped([shipped]) == [42]


def test_fork_child_profiler_is_none_in_parent():
    prof = Profiler(interval_seconds=0.001)
    with prof.sampling():
        # pid matches: the parent's own sampler sees every thread.
        assert obs_profile.fork_child_profiler() is None


# -- surfaces ----------------------------------------------------------------


def test_synthesizer_accepts_a_profiler():
    from repro.core.synthesizer import Synthesizer
    from repro.corpus.registry import compile_fragment, select_fragments

    (cf,) = select_fragments(ids=["w40"])
    fragment = compile_fragment(cf)
    prof = Profiler(interval_seconds=0.001)
    plain = Synthesizer(fragment).synthesize()
    observed = Synthesizer(fragment).synthesize(profiler=prof)
    assert observed.succeeded == plain.succeeded
    assert "synthesis" in prof.spans_seen
    assert not prof.active


def test_profiler_ignores_other_threads_spans_for_its_own_stack():
    """Span stacks are per-thread: a span entered on a worker thread
    never mislabels samples of the main thread."""
    prof = Profiler(interval_seconds=0.001)
    seen_on_worker = []

    def worker():
        with obs_trace.Span("worker-span"):
            time.sleep(0.05)
        seen_on_worker.append(True)

    with prof.sampling():
        thread = threading.Thread(target=worker)
        thread.start()
        with obs_trace.Span("main-span"):
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(500))
        thread.join()
    assert seen_on_worker == [True]
    assert {"worker-span", "main-span"} <= prof.spans_seen
    for (label, stack) in prof.samples:
        if "worker" in stack and label not in (NO_SPAN,):
            assert label == "worker-span"
