"""Machine-readable bench artifacts: schema, atomicity, real runs."""

import json
import os
import sys
import time

import pytest

from repro.bench.harness import (
    BENCH_ARTIFACT_SCHEMA,
    BENCH_DIR_ENV,
    bench_artifact_dir,
    floor_entry,
    validate_bench_artifact,
    write_bench_artifact,
)

BENCHMARKS_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                              "benchmarks")


@pytest.fixture()
def bench_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
    return tmp_path


def test_artifact_dir_env_override(bench_dir):
    assert bench_artifact_dir() == str(bench_dir)


def test_write_and_validate_roundtrip(bench_dir):
    path = write_bench_artifact(
        "unit", True, smoke=True,
        floors={"speed": floor_entry(2.4, 2.0)},
        measurements=[{"mode": "optimized", "seconds": 0.01}],
        extra={"repeats": 1})
    assert os.path.basename(path) == "BENCH_unit.json"
    with open(path) as fh:
        payload = json.load(fh)
    validate_bench_artifact(payload)
    assert payload["schema"] == BENCH_ARTIFACT_SCHEMA
    assert payload["ok"] is True
    assert payload["smoke"] is True
    assert payload["floors"]["speed"] == {
        "value": 2.4, "floor": 2.0, "passed": True, "asserted": True}
    assert payload["measurements"] == [{"mode": "optimized",
                                        "seconds": 0.01}]
    assert payload["extra"]["repeats"] == 1
    # The embedded metrics snapshot is the registry's JSON form.
    assert isinstance(payload["metrics"], dict)
    assert payload["created_unix"] > 0


def test_artifact_carries_provenance(bench_dir):
    """v2 additions: ISO timestamp and the producing git commit."""
    path = write_bench_artifact("prov", True)
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["schema"] == "repro-bench-artifact/v2"
    assert payload["created_utc"].endswith("Z")
    assert payload["created_utc"].startswith(
        time.strftime("%Y-", time.gmtime(payload["created_unix"])))
    # This test runs inside the repo, so the commit resolves; the
    # field is best-effort null when benchmarks run from a tarball.
    commit = payload["git_commit"]
    assert commit is None or (
        len(commit) == 40 and all(c in "0123456789abcdef" for c in commit))


def test_validate_rejects_missing_v2_keys(bench_dir):
    path = write_bench_artifact("v2", True)
    with open(path) as fh:
        payload = json.load(fh)
    for key in ("created_utc", "git_commit"):
        broken = json.loads(json.dumps(payload))
        broken.pop(key)
        with pytest.raises(ValueError):
            validate_bench_artifact(broken)


def test_artifact_write_leaves_history_beside_it(bench_dir):
    write_bench_artifact("hist", True, smoke=True)
    store = bench_dir / "BENCH_HISTORY.jsonl"
    assert store.exists()
    (line,) = store.read_text().strip().splitlines()
    entry = json.loads(line)
    assert entry["name"] == "hist"
    assert entry["schema"] == "repro-bench-history/v1"


def test_unasserted_floor_is_recorded_not_enforced(bench_dir):
    entry = floor_entry(0.5, 1.8, asserted=False)
    assert entry == {"value": 0.5, "floor": 1.8, "passed": False,
                     "asserted": False}
    path = write_bench_artifact("gated", True,
                                floors={"parallel": entry})
    with open(path) as fh:
        validate_bench_artifact(json.load(fh))


def test_validate_rejects_malformed_payloads(bench_dir):
    path = write_bench_artifact("ok", True)
    with open(path) as fh:
        payload = json.load(fh)
    for mutate in (
        lambda p: p.pop("schema"),
        lambda p: p.pop("metrics"),
        lambda p: p.update(schema="other/v9"),
        lambda p: p.update(floors={"f": {"value": 1.0}}),
    ):
        broken = json.loads(json.dumps(payload))
        mutate(broken)
        with pytest.raises(ValueError):
            validate_bench_artifact(broken)


def test_real_bench_run_leaves_valid_artifact(bench_dir):
    """A traced smoke run of a real benchmark writes its artifact."""
    sys.path.insert(0, BENCHMARKS_DIR)
    try:
        import bench_join_order
    finally:
        sys.path.pop(0)
    assert bench_join_order.run(smoke=True) == 0
    path = bench_dir / "BENCH_join_order.json"
    payload = json.loads(path.read_text())
    validate_bench_artifact(payload)
    assert payload["ok"] is True
    assert payload["floors"]["join_order"]["passed"] is True
    assert payload["floors"]["join_order"]["asserted"] is True
