"""The perf-trajectory store and regression sentinel."""

import json

import pytest

from repro.bench import trajectory
from repro.bench.harness import (
    BENCH_DIR_ENV,
    floor_entry,
    write_bench_artifact,
)
from repro.bench.trajectory import (
    DEFAULT_BAND,
    FIRST_RUN,
    IMPROVEMENT,
    REGRESSION,
    STEADY,
    classify,
    load_history,
    rolling_baseline,
    trend_report,
)


@pytest.fixture()
def bench_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
    return tmp_path


def _entry(name, value, stamp, label="speed"):
    return {"schema": trajectory.HISTORY_SCHEMA, "name": name,
            "created_unix": stamp, "ok": True, "smoke": True,
            "floors": {label: floor_entry(value, 1.0)}}


# -- classification ----------------------------------------------------------


def test_classify_no_priors_is_first_run():
    verdict = classify(2.0, [])
    assert verdict == {"classification": FIRST_RUN, "baseline": None,
                       "ratio": None}


def test_classify_band_edges():
    # baseline 2.0, default band 1.0: steady within (1.0, 4.0), i.e.
    # within 2x of the baseline either way (multiplicative, symmetric).
    assert DEFAULT_BAND == 1.0
    assert classify(4.0, [2.0])["classification"] == IMPROVEMENT
    assert classify(3.99, [2.0])["classification"] == STEADY
    assert classify(2.0, [2.0])["classification"] == STEADY
    assert classify(1.01, [2.0])["classification"] == STEADY
    assert classify(1.0, [2.0])["classification"] == REGRESSION
    # A tighter band moves both edges symmetrically in ratio space.
    assert classify(2.5, [2.0], band=0.25)["classification"] \
        == IMPROVEMENT
    assert classify(1.6, [2.0], band=0.25)["classification"] \
        == REGRESSION
    assert classify(1.7, [2.0], band=0.25)["classification"] == STEADY


def test_classify_uses_rolling_median_window():
    # Window 3 over the last 3 priors [4, 4, 1000]: median 4, so a
    # single historical outlier does not move the baseline to 1000.
    priors = [2.0, 4.0, 4.0, 1000.0]
    verdict = classify(4.0, priors, window=3)
    assert verdict["baseline"] == 4.0
    assert verdict["classification"] == STEADY
    assert rolling_baseline(priors, window=3) == 4.0
    assert rolling_baseline([1.0, 3.0], window=5) == 2.0  # even: mean of mid


def test_classify_degenerate_baseline_is_steady_not_crash():
    verdict = classify(2.0, [0.0])
    assert verdict["classification"] == STEADY
    assert verdict["ratio"] is None


# -- the store ---------------------------------------------------------------


def test_artifact_write_appends_history(bench_dir):
    write_bench_artifact("unit", True, smoke=True,
                         floors={"speed": floor_entry(2.4, 2.0)})
    write_bench_artifact("unit", True, smoke=True,
                         floors={"speed": floor_entry(2.5, 2.0)})
    store = bench_dir / trajectory.HISTORY_BASENAME
    assert store.exists()
    lines = store.read_text().strip().splitlines()
    assert len(lines) == 2
    entry = json.loads(lines[0])
    assert entry["schema"] == trajectory.HISTORY_SCHEMA
    assert entry["name"] == "unit"
    assert "metrics" not in entry  # history lines are trimmed
    history = load_history(str(bench_dir))
    assert [e["floors"]["speed"]["value"] for e in history] == [2.4, 2.5]


def test_load_history_skips_torn_lines_and_filters_by_name(bench_dir):
    store = bench_dir / trajectory.HISTORY_BASENAME
    store.write_text(
        json.dumps(_entry("a", 2.0, 1.0)) + "\n"
        + '{"torn": \n'                     # torn write: skipped
        + "not json at all\n"
        + json.dumps(_entry("b", 3.0, 2.0)) + "\n"
        + json.dumps(_entry("a", 2.1, 3.0)) + "\n")
    assert len(load_history(str(bench_dir))) == 3
    assert [e["name"] for e in load_history(str(bench_dir), name="a")] \
        == ["a", "a"]


def test_load_history_empty_when_store_missing(tmp_path):
    assert load_history(str(tmp_path)) == []


# -- the report --------------------------------------------------------------


def test_trend_report_empty_history():
    assert trend_report([]).startswith("no bench history")


def test_trend_report_classifies_each_measurement():
    entries = [_entry("join", 2.0, 1.0), _entry("join", 2.1, 2.0),
               _entry("par", 5.0, 1.0), _entry("par", 2.0, 2.0)]
    report = trend_report(entries)
    assert "perf trajectory: 4 run(s), 2 measurement(s)" in report
    join_row = next(l for l in report.splitlines()
                    if l.startswith("join"))
    par_row = next(l for l in report.splitlines() if l.startswith("par"))
    assert join_row.endswith(STEADY)
    assert par_row.endswith(REGRESSION)
    assert trajectory.regressions(entries) == [("par", "speed")]


def test_trend_report_single_run_is_first_run():
    report = trend_report([_entry("solo", 2.0, 1.0)])
    assert FIRST_RUN in report


def test_trend_report_markdown_form():
    report = trend_report([_entry("m", 2.0, 1.0)], markdown=True)
    assert "| bench | measurement |" in report
    assert "| m | speed | 1 | - | 2.00 | - | first-run |" in report


# -- the CLI sentinel --------------------------------------------------------


def test_bench_report_cli(bench_dir, capsys):
    from repro.service.cli import main

    assert main(["bench-report"]) == 0
    assert "no bench history" in capsys.readouterr().out

    store = bench_dir / trajectory.HISTORY_BASENAME
    store.write_text(json.dumps(_entry("par", 5.0, 1.0)) + "\n"
                     + json.dumps(_entry("par", 2.0, 2.0)) + "\n")
    assert main(["bench-report"]) == 0          # report-only: exit 0
    out = capsys.readouterr().out
    assert REGRESSION in out
    assert main(["bench-report", "--strict"]) == 1
    assert "regressions: par/speed" in capsys.readouterr().out
    # A wide-open band (steady within 3x) turns the same history steady.
    assert main(["bench-report", "--strict", "--band", "2"]) == 0
