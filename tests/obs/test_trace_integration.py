"""End-to-end tracing contracts across the engine and the service.

Three acceptance claims from the observability layer, pinned here:

* **off means off** — with no trace active, queries return exactly
  what they returned before the layer existed (``result.trace`` is
  ``None``, EXPLAIN text unchanged, no ``time=`` column);
* **golden tree shape** — a traced run yields a deterministic span
  tree (:func:`repro.obs.trace.format_tree` masks the one
  nondeterministic field, wall-clock), asserted against a golden
  rendering;
* **cross-process stitching** — a K-partition parallel query adopts
  exactly K partition spans in partition-index order, and the set of
  operators in the stitched tree equals the serial tree's.
"""

import pytest

from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Span, format_tree
from repro.service import faults
from repro.service.faults import FaultPlan
from repro.service.scheduler import Scheduler
from repro.corpus.registry import select_fragments
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions

SQL = "SELECT e.g, COUNT(*) AS n FROM ev AS e GROUP BY e.g"

GOLDEN_SERIAL = """\
query  [mode=planner, rows=3, sql=SELECT e.g, COUNT(*) AS n \
FROM ev AS e GROUP BY e.g]
  Aggregate  [op=GroupBy(e.g), rows=3]
    Rows  [op=FullScan(ev AS e), rows=10]
      FullScan  [op=FullScan(ev AS e), rows=10]"""


@pytest.fixture()
def db():
    db = Database()
    db.create_table("ev", ("id", "g", "v"))
    db.insert_many("ev", ({"id": i, "g": i % 3, "v": i}
                          for i in range(10)))
    return db


def _operator_set(root):
    """The ``op=`` tags in a tree, ignoring stitching scaffolding."""
    return {node.tags["op"] for _, node in root.walk()
            if "op" in node.tags}


# -- off means off -------------------------------------------------------------


def test_untraced_execution_is_unchanged(db):
    result = db.execute(SQL)
    assert result.trace is None
    assert not obs_trace.enabled()
    traced = db.execute(SQL, trace=True)
    assert list(traced.rows) == list(result.rows)
    assert traced.columns == result.columns
    assert traced.stats == result.stats
    # QueryResult equality ignores the trace attachment.
    assert traced == result


def test_untraced_explain_has_no_timing_column(db):
    text = db.explain(SQL, analyze=True)
    assert "time=" not in text
    timed = db.explain(SQL, analyze=True, timing=True)
    assert "time=" in timed
    # The timing run leaves no ambient trace behind.
    assert not obs_trace.enabled()


# -- golden tree shape ---------------------------------------------------------


def test_golden_serial_trace(db):
    result = db.execute(SQL, trace=True)
    assert format_tree(result.trace) == GOLDEN_SERIAL
    # Every span in a traced run is timed.
    assert all(node.elapsed_seconds is not None
               for _, node in result.trace.walk())


def test_trace_rides_an_ambient_root(db):
    root = Span("suite")
    with root:
        db.execute(SQL)
    (query,) = root.children
    assert query.name == "query"
    assert query.tags["rows"] == 3


# -- cross-process stitching ---------------------------------------------------


@pytest.mark.parametrize("partitions", [1, 2, 4])
def test_parallel_stitches_to_serial_operator_set(db, partitions):
    serial = db.execute(SQL, trace=True)
    view = db.view(ExecutorOptions(parallel=partitions))
    parallel = view.execute(SQL, trace=True)
    assert list(parallel.rows) == list(serial.rows)
    assert _operator_set(parallel.trace) == _operator_set(serial.trace)

    parts = [node for _, node in parallel.trace.walk()
             if node.name == "partition"]
    if partitions > 1:
        assert len(parts) == partitions
        assert [p.tags["part"] for p in parts] == list(range(partitions))
        assert all(p.tags["backend"] == "threads" for p in parts)
    else:
        assert parts == []


def test_fork_backend_stitches_too(db):
    view = db.view(ExecutorOptions(parallel=2,
                                   parallel_backend="processes"))
    result = view.execute(SQL, trace=True)
    parts = [node for _, node in result.trace.walk()
             if node.name == "partition"]
    assert [p.tags["part"] for p in parts] == [0, 1]
    assert _operator_set(result.trace) \
        == _operator_set(db.execute(SQL, trace=True).trace)


# -- degradation classification ------------------------------------------------


def test_degradation_kind_in_explain_and_counter(db):
    view = db.view(ExecutorOptions(parallel=3))
    counter = REGISTRY.get("repro_degradations_total")
    before = counter.value(**{"from": "threads", "to": "serial",
                              "kind": "crash"})
    with faults.injected(FaultPlan(faults={"part:1": faults.CRASH})):
        result = view.execute(SQL)
        text = view.explain(SQL, analyze=True)
    assert result.stats.degradations >= 1
    assert "degraded=threads->serial" in text
    assert "degrade_kind=crash" in text
    after = counter.value(**{"from": "threads", "to": "serial",
                             "kind": "crash"})
    assert after >= before + 1


def test_undegraded_explain_has_no_kind_annotation(db):
    text = db.view(ExecutorOptions(parallel=2)).explain(SQL, analyze=True)
    assert "degrade_kind=" not in text
    assert "degraded=" not in text


# -- scheduler job spans -------------------------------------------------------


def test_scheduler_emits_job_spans_under_ambient_root():
    fragments = select_fragments(ids=["w40", "w17"])
    root = Span("corpus-run")
    with root:
        report = Scheduler(workers=1).run(fragments)
    assert len(report.outcomes) == 2
    jobs = [c for c in root.children if c.name == "job"]
    assert {j.tags["fragment"] for j in jobs} == {"w40", "w17"}
    assert all(j.tags["attempts"] >= 1 for j in jobs)
    assert all(j.elapsed_seconds is not None for j in jobs)
    # The in-process run also exposes the synthesis interior, down to
    # the prover's normal-form memo traffic.
    # w17 is rejected before synthesis, so only w40 has an interior.
    synths = [c for c in root.children if c.name == "synthesis"]
    assert [s.tags["fragment"] for s in synths] \
        == ["wilos/w40_unfinished_projects"]
    proves = [node for s in synths for _, node in s.walk()
              if node.name == "prove"]
    assert proves
    assert all(node.tags["proved"] and "nf_cache_misses" in node.tags
               for node in proves)


def test_scheduler_untraced_stays_silent():
    fragments = select_fragments(ids=["w40"])
    report = Scheduler(workers=1).run(fragments)
    assert len(report.outcomes) == 1
    assert not obs_trace.enabled()
