"""Shared obs-test hygiene.

Metric *values* are zeroed before every test with
``MetricsRegistry.reset_values()`` — ``reset()`` would unregister the
instruments and orphan the module-level references the engine holds
(``repro.sql.database._QUERIES`` etc. would keep counting into objects
no exposition ever renders).  Teardown also stops any profiler a
failing test left installed and disables the recent-roots ring.
"""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _obs_isolation():
    obs_metrics.REGISTRY.reset_values()
    yield
    leftover = obs_profile.installed()
    if leftover is not None:
        leftover.stop()
    obs_trace.keep_recent_roots(0)
