"""Regression: the optimized search engine never changes synthesis outcomes.

The lazy best-first enumerator and the compiled/memoized evaluation
pipeline are pure performance work — for every corpus fragment they
must produce exactly the seed implementation's result: same success
status, same chosen invariants, same postcondition expression.
"""

import pytest

from repro.core.synthesizer import SynthesisOptions, Synthesizer
from repro.corpus.registry import ALL_FRAGMENTS, compile_fragment
from repro.frontend import FrontendRejection


def _compilable_fragments():
    out = []
    for cf in ALL_FRAGMENTS:
        try:
            out.append((cf.fragment_id, compile_fragment(cf)))
        except FrontendRejection:
            continue
    return out


FRAGMENTS = _compilable_fragments()


def _outcome(fragment, options):
    result = Synthesizer(fragment, options).synthesize()
    assignment = None
    if result.assignment is not None:
        assignment = {name: str(pred)
                      for name, pred in result.assignment.items()}
    return (result.succeeded, assignment, result.postcondition_expr)


@pytest.mark.parametrize("fragment_id,fragment", FRAGMENTS,
                         ids=[fid for fid, _ in FRAGMENTS])
def test_optimized_modes_match_seed_outcome(fragment_id, fragment):
    seed = _outcome(fragment, SynthesisOptions(
        lazy_enumeration=False, compiled_eval=False))
    optimized = _outcome(fragment, SynthesisOptions())
    assert optimized == seed


def test_each_flag_is_independently_safe():
    """Either optimization alone also reproduces the seed outcome."""
    for fragment_id, fragment in FRAGMENTS[:6]:
        seed = _outcome(fragment, SynthesisOptions(
            lazy_enumeration=False, compiled_eval=False))
        assert _outcome(fragment, SynthesisOptions(
            lazy_enumeration=True, compiled_eval=False)) == seed
        assert _outcome(fragment, SynthesisOptions(
            lazy_enumeration=False, compiled_eval=True)) == seed


def test_optimized_mode_reports_memo_and_frontier_stats():
    fragment = next(frag for fid, frag in FRAGMENTS if fid == "w19")
    result = Synthesizer(fragment, SynthesisOptions()).synthesize()
    stats = result.stats
    assert stats.eval_requests > 0
    assert stats.eval_executed <= stats.eval_requests
    seed_result = Synthesizer(fragment, SynthesisOptions(
        lazy_enumeration=False, compiled_eval=False)).synthesize()
    assert seed_result.stats.eval_executed == seed_result.stats.eval_requests
    # The optimized engine does strictly less evaluation work.
    assert stats.eval_executed < seed_result.stats.eval_executed
