"""Tests for verification-condition generation (paper Fig. 11)."""

from repro.core.logic import Bool, PredApp, formula_pred_apps, pretty_formula
from repro.core.vcgen import generate_vcs
from repro.tor import ast as T

from tests.helpers import running_example_fragment, selection_fragment


class TestSelectionVCs:
    def test_vc_names_and_count(self):
        vcset = generate_vcs(selection_fragment())
        names = [vc.name for vc in vcset.vcs]
        assert names == ["initialization", "loop0 preservation", "loop0 exit"]

    def test_unknowns_registered(self):
        vcset = generate_vcs(selection_fragment())
        assert set(vcset.unknowns) == {"pcon", "inv_loop0"}
        assert vcset.unknowns["pcon"][0] == "result"

    def test_initialization_substitutes_assignments(self):
        vcset = generate_vcs(selection_fragment())
        init = vcset.vcs[0]
        assert init.hypotheses == ()
        apps = list(formula_pred_apps(init.conclusion))
        assert len(apps) == 1
        app = apps[0]
        # i := 0, result := [], users := Query(...) all substituted.
        assert app.arg_for("i") == T.Const(0)
        assert app.arg_for("result") == T.EmptyRelation()
        assert isinstance(app.arg_for("users"), T.QueryOp)

    def test_exit_vc_concludes_postcondition(self):
        vcset = generate_vcs(selection_fragment())
        exit_vc = vcset.vcs[2]
        apps = list(formula_pred_apps(exit_vc.conclusion))
        assert apps[0].name == "pcon"

    def test_preservation_increments_counter(self):
        vcset = generate_vcs(selection_fragment())
        pres = vcset.vcs[1]
        # Both branches of the `if` apply the invariant at i + 1.
        for app in formula_pred_apps(pres.conclusion):
            assert app.arg_for("i") == T.BinOp("+", T.Var("i"), T.Const(1))

    def test_preservation_appends_in_then_branch(self):
        vcset = generate_vcs(selection_fragment())
        pres = vcset.vcs[1]
        args = [app.arg_for("result")
                for app in formula_pred_apps(pres.conclusion)]
        assert any(isinstance(a, T.Append) for a in args)
        assert any(a == T.Var("result") for a in args)


class TestRunningExampleVCs:
    def test_vc_structure_matches_fig11(self):
        vcset = generate_vcs(running_example_fragment())
        names = [vc.name for vc in vcset.vcs]
        # initialization, outer preservation (= inner initialization),
        # inner preservation, inner exit, outer exit.
        assert "initialization" in names
        assert "loop0 preservation" in names
        assert "loop1 preservation" in names
        assert "loop1 exit" in names
        assert "loop0 exit" in names
        assert len(names) == 5

    def test_outer_preservation_enters_inner_invariant_at_zero(self):
        vcset = generate_vcs(running_example_fragment())
        outer_pres = next(vc for vc in vcset.vcs
                          if vc.name == "loop0 preservation")
        apps = list(formula_pred_apps(outer_pres.conclusion))
        assert apps[0].name == "inv_loop1"
        assert apps[0].arg_for("j") == T.Const(0)

    def test_inner_exit_reestablishes_outer_invariant(self):
        vcset = generate_vcs(running_example_fragment())
        inner_exit = next(vc for vc in vcset.vcs if vc.name == "loop1 exit")
        apps = list(formula_pred_apps(inner_exit.conclusion))
        assert apps[0].name == "inv_loop0"
        assert apps[0].arg_for("i") == T.BinOp("+", T.Var("i"), T.Const(1))

    def test_vcs_render(self):
        vcset = generate_vcs(running_example_fragment())
        text = str(vcset)
        assert "inv_loop0" in text and "pcon" in text
