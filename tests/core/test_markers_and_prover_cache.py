"""Appendix-A marker agreement and the prover's normal-form memo."""

import repro.core.qbs as qbs_module
from repro.core.prover import Prover
from repro.core.qbs import QBSStatus
from repro.core.synthesizer import Synthesizer
from repro.corpus.registry import compile_fragment, fragment_by_id


def test_markers_match_appendix_a():
    # Paper Appendix A: X translated, * failed, † rejected.
    assert QBSStatus.TRANSLATED.marker == "X"
    assert QBSStatus.FAILED.marker == "*"
    assert QBSStatus.REJECTED.marker == "†"
    assert len({status.marker for status in QBSStatus}) == len(QBSStatus)


def test_markers_agree_with_module_docstring():
    doc = qbs_module.__doc__
    assert "**rejected** (``†``)" in doc
    assert "**failed** (``*``)" in doc
    assert "**translated** (``X``)" in doc


def _synthesized(fragment_id):
    fragment = compile_fragment(fragment_by_id(fragment_id))
    synthesizer = Synthesizer(fragment)
    result = synthesizer.synthesize()
    assert result.succeeded
    return synthesizer, result


def test_prover_nf_cache_changes_nothing():
    synthesizer, result = _synthesized("w46")
    with_cache = Prover(synthesizer.vcset)
    without = Prover(synthesizer.vcset, nf_cache=False)
    assert with_cache.validate(result.assignment).proved
    assert without.validate(result.assignment).proved
    assert with_cache.nf_cache_hits > 0
    assert without.nf_cache_hits == 0


def test_prover_nf_cache_reused_across_validations():
    synthesizer, result = _synthesized("w46")
    prover = Prover(synthesizer.vcset)
    assert prover.validate(result.assignment).proved
    hits_after_first = prover.nf_cache_hits
    misses_after_first = prover.nf_cache_misses
    # The same assignment revalidates almost entirely from the memo:
    # identical VCs produce identical fact contexts.
    assert prover.validate(result.assignment).proved
    assert prover.nf_cache_hits > hits_after_first
    assert prover.nf_cache_misses == misses_after_first


def test_prover_rejects_bogus_assignment_with_cache():
    # The memo must not convert failures into successes: a wrong
    # candidate still fails under the cached prover.
    synthesizer, good = _synthesized("w40")
    other_synth, other = _synthesized("w46")
    prover = Prover(synthesizer.vcset)
    assert prover.validate(good.assignment).proved
    outcome = prover.validate(other.assignment)
    assert not outcome.proved
