"""Tests for the bounded VC checker with hand-written candidates.

The ground-truth candidates come straight from paper Fig. 12; the
checker must accept them and reject the obvious mutants.
"""

import pytest

from repro.core.checker import BoundedChecker
from repro.core.logic import CmpClause, EqClause, Predicate
from repro.core.vcgen import generate_vcs
from repro.core.worlds import generate_worlds
from repro.tor import ast as T

from tests.helpers import running_example_fragment, selection_fragment


def users_var():
    return T.Var("users")


def join_pred():
    return T.JoinFunc((T.JoinFieldCmp("role_id", "=", "role_id"),))


def pi_left(rel):
    return T.Pi((T.FieldSpec("left", "u"),), rel)


def sigma_role(rel):
    return T.Sigma(T.SelectFunc((T.FieldCmpConst("role_id", "=", T.Const(10)),)),
                   rel)


def selection_candidate():
    """Ground truth for the selection fragment.

    ``i >= 0`` matters: without it ``top(users, i + 1)`` cannot be
    unfolded in the preservation proof (``top`` is only defined for
    non-negative prefixes).
    """
    inv = Predicate(
        params=("users", "i", "result"),
        clauses=(
            CmpClause(T.BinOp(">=", T.Var("i"), T.Const(0))),
            CmpClause(T.BinOp("<=", T.Var("i"), T.Size(users_var()))),
            EqClause("result", sigma_role(T.Top(users_var(), T.Var("i")))),
        ),
    )
    pcon = Predicate(
        params=("result", "users"),
        clauses=(EqClause("result", sigma_role(users_var())),),
    )
    return {"inv_loop0": inv, "pcon": pcon}


def running_example_candidate():
    """Paper Fig. 12, verbatim (with cat/singleton spelled explicitly)."""
    outer_inv = Predicate(
        params=("users", "roles", "i", "j", "listUsers"),
        clauses=(
            CmpClause(T.BinOp(">=", T.Var("i"), T.Const(0))),
            CmpClause(T.BinOp("<=", T.Var("i"), T.Size(users_var()))),
            EqClause("listUsers", pi_left(
                T.Join(join_pred(), T.Top(users_var(), T.Var("i")),
                       T.Var("roles")))),
        ),
    )
    inner_inv = Predicate(
        params=("users", "roles", "i", "j", "listUsers"),
        clauses=(
            CmpClause(T.BinOp(">=", T.Var("i"), T.Const(0))),
            CmpClause(T.BinOp(">=", T.Var("j"), T.Const(0))),
            CmpClause(T.BinOp("<", T.Var("i"), T.Size(users_var()))),
            CmpClause(T.BinOp("<=", T.Var("j"), T.Size(T.Var("roles")))),
            EqClause("listUsers", T.Concat(
                pi_left(T.Join(join_pred(), T.Top(users_var(), T.Var("i")),
                               T.Var("roles"))),
                pi_left(T.Join(join_pred(),
                               T.Singleton(T.Get(users_var(), T.Var("i"))),
                               T.Top(T.Var("roles"), T.Var("j")))),
            )),
        ),
    )
    pcon = Predicate(
        params=("listUsers", "users", "roles"),
        clauses=(EqClause("listUsers", pi_left(
            T.Join(join_pred(), users_var(), T.Var("roles")))),),
    )
    return {"inv_loop0": outer_inv, "inv_loop1": inner_inv, "pcon": pcon}


@pytest.fixture(scope="module")
def selection_setup():
    frag = selection_fragment()
    return BoundedChecker(generate_vcs(frag), generate_worlds(frag))


@pytest.fixture(scope="module")
def running_setup():
    frag = running_example_fragment()
    return BoundedChecker(generate_vcs(frag), generate_worlds(frag))


class TestSelectionChecking:
    def test_ground_truth_accepted(self, selection_setup):
        assert selection_setup.check(selection_candidate()) is None

    def test_wrong_constant_rejected(self, selection_setup):
        bad = selection_candidate()
        bad["pcon"] = Predicate(
            params=("result", "users"),
            clauses=(EqClause("result", T.Sigma(
                T.SelectFunc((T.FieldCmpConst("role_id", "=", T.Const(11)),)),
                users_var())),),
        )
        cex = selection_setup.check(bad)
        assert cex is not None

    def test_full_scan_postcondition_rejected(self, selection_setup):
        # Claiming "result = users" misses the filter.
        bad = selection_candidate()
        bad["pcon"] = Predicate(
            params=("result", "users"),
            clauses=(EqClause("result", users_var()),),
        )
        assert selection_setup.check(bad) is not None

    def test_non_inductive_invariant_rejected(self, selection_setup):
        # Invariant claims result stays empty: kills preservation.
        bad = selection_candidate()
        bad["inv_loop0"] = Predicate(
            params=("users", "i", "result"),
            clauses=(EqClause("result", T.EmptyRelation()),),
        )
        cex = selection_setup.check(bad)
        assert cex is not None
        assert "preservation" in cex.vc_name or "exit" in cex.vc_name

    def test_unpinned_accumulator_rejected(self):
        # Fresh checker: the shared fixture's CEGIS cache may kill this
        # candidate with an ordinary counterexample before the unpinned
        # check runs.
        frag = selection_fragment()
        checker = BoundedChecker(generate_vcs(frag), generate_worlds(frag))
        bad = selection_candidate()
        bad["inv_loop0"] = Predicate(
            params=("users", "i", "result"),
            clauses=(CmpClause(T.BinOp("<=", T.Var("i"),
                                       T.Size(users_var()))),),
        )
        cex = checker.check(bad)
        assert cex is not None
        assert "unpinned" in cex.vc_name


class TestRunningExampleChecking:
    def test_fig12_ground_truth_accepted(self, running_setup):
        assert running_setup.check(running_example_candidate()) is None

    def test_missing_inner_tail_rejected(self, running_setup):
        # Inner invariant without the partial inner-join part is not
        # preserved across inner iterations.
        bad = running_example_candidate()
        bad["inv_loop1"] = Predicate(
            params=("users", "roles", "i", "j", "listUsers"),
            clauses=(
                CmpClause(T.BinOp("<", T.Var("i"), T.Size(users_var()))),
                EqClause("listUsers", pi_left(
                    T.Join(join_pred(), T.Top(users_var(), T.Var("i")),
                           T.Var("roles")))),
            ),
        )
        assert running_setup.check(bad) is not None

    def test_wrong_join_field_rejected(self, running_setup):
        bad = running_example_candidate()
        wrong = T.JoinFunc((T.JoinFieldCmp("id", "=", "role_id"),))
        bad["pcon"] = Predicate(
            params=("listUsers", "users", "roles"),
            clauses=(EqClause("listUsers", pi_left(
                T.Join(wrong, users_var(), T.Var("roles")))),),
        )
        assert running_setup.check(bad) is not None

    def test_cegis_cache_speeds_rejection(self, running_setup):
        bad = running_example_candidate()
        bad["pcon"] = Predicate(
            params=("listUsers", "users", "roles"),
            clauses=(EqClause("listUsers", users_var()),),
        )
        first = running_setup.check(bad)
        assert first is not None
        # Second identical check should hit the CEGIS cache.
        second = running_setup.check(bad)
        assert second is not None
        assert second.vc_name == first.vc_name
