"""Property tests for the lazy best-first candidate enumerator.

The synthesizer's contract: :func:`best_first_product` yields exactly
the sequence the seed implementation produced with
``sorted(itertools.product(*axes), key=total_size)`` — including the
order of equal-size ties (stable sort leaves them in product order) —
while materializing only the search frontier.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumerate import EnumerationStats, best_first_product


class Item:
    """A stand-in for a TOR expression: something with a size."""

    def __init__(self, size, tag):
        self._size = size
        self.tag = tag

    def size(self):
        return self._size

    def __repr__(self):
        return "Item(%d, %r)" % (self._size, self.tag)


def _axes_from_sizes(size_lists):
    return [[Item(size, (axis, idx)) for idx, size in enumerate(sizes)]
            for axis, sizes in enumerate(size_lists)]


def _tags(combos):
    return [tuple(item.tag for item in combo) for combo in combos]


axes_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=6),
    min_size=0, max_size=4)


@settings(max_examples=300, deadline=None)
@given(size_lists=axes_strategy)
def test_matches_sort_then_slice_exactly(size_lists):
    """Lazy enumeration equals the eager sort, ties included."""
    axes = _axes_from_sizes(size_lists)
    expected = sorted(itertools.product(*axes),
                      key=lambda combo: sum(e.size() for e in combo))
    got = list(best_first_product(axes))
    assert _tags(got) == _tags(expected)


@settings(max_examples=200, deadline=None)
@given(size_lists=axes_strategy, n=st.integers(min_value=0, max_value=20))
def test_first_n_matches_seed_truncation(size_lists, n):
    """islice(lazy, n) equals the seed's sort-then-slice prefix."""
    axes = _axes_from_sizes(size_lists)
    expected = sorted(itertools.product(*axes),
                      key=lambda combo: sum(e.size() for e in combo))[:n]
    got = list(itertools.islice(best_first_product(axes), n))
    assert _tags(got) == _tags(expected)


def test_no_axes_yields_single_empty_combination():
    assert list(best_first_product([])) == [()]


def test_empty_axis_yields_nothing():
    axes = _axes_from_sizes([[1, 2], []])
    assert list(best_first_product(axes)) == []


def test_sizes_are_nondecreasing():
    axes = _axes_from_sizes([[3, 1, 2], [2, 2, 5], [4, 1]])
    totals = [sum(e.size() for e in combo)
              for combo in best_first_product(axes)]
    assert totals == sorted(totals)


def test_frontier_memory_independent_of_product_size():
    """Consuming k combinations keeps the heap near O(k * axes), far
    below the full product size — the seed materialized all of it."""
    axes = _axes_from_sizes([[i % 5 for i in range(10)] for _ in range(6)])
    product_size = 10 ** 6
    stats = EnumerationStats()
    consumed = list(itertools.islice(best_first_product(axes, stats=stats),
                                     50))
    assert len(consumed) == 50
    assert stats.peak_frontier < 50 * len(axes)
    assert stats.pushed < product_size / 1000


def test_frontier_independent_of_truncation_cap():
    """The cap (max_combinations) does not affect memory: only the
    number of combinations actually consumed does."""
    axes = _axes_from_sizes([[i % 4 for i in range(8)] for _ in range(5)])
    peaks = []
    for cap in (10, 1000, 10 ** 9):
        stats = EnumerationStats()
        list(itertools.islice(best_first_product(axes, stats=stats), 10))
        assert cap  # the cap never reaches the enumerator
        peaks.append(stats.peak_frontier)
    assert peaks[0] == peaks[1] == peaks[2]
