"""Unit tests for the equational prover and the arithmetic engine."""

import pytest

from repro.core.arith import FactSet, delinearize, linearize
from repro.core.logic import CmpClause, EqClause, Predicate
from repro.core.prover import Prover
from repro.core.vcgen import generate_vcs
from repro.tor import ast as T

from tests.core.test_checker import (
    running_example_candidate,
    selection_candidate,
)
from tests.helpers import running_example_fragment, selection_fragment


class TestArith:
    def test_basic_entailments(self):
        facts = FactSet(int_vars={"i"})
        size = T.Size(T.Var("r"))
        facts.add_comparison("<", T.Var("i"), size)
        # Integer tightening: i < size  entails  i + 1 <= size.
        assert facts.entails("<=", T.BinOp("+", T.Var("i"), T.Const(1)),
                             size)
        assert not facts.entails("=", T.Var("i"), size)

    def test_equality_from_bounds(self):
        facts = FactSet(int_vars={"j"})
        size = T.Size(T.Var("r"))
        facts.add_comparison("<=", T.Var("j"), size)
        facts.add_comparison(">=", T.Var("j"), size)
        assert facts.entails("=", T.Var("j"), size)

    def test_size_nonnegativity_implicit(self):
        facts = FactSet()
        assert facts.entails(">=", T.Size(T.Var("r")), T.Const(0))
        assert facts.entails(">", T.BinOp("+", T.Size(T.Var("r")),
                                          T.Const(1)), T.Const(0))

    def test_refutation(self):
        facts = FactSet(int_vars={"i"})
        facts.add_comparison(">=", T.Var("i"), T.Const(5))
        assert facts.refutes("<", T.Var("i"), T.Const(3))

    def test_no_unsound_entailment(self):
        facts = FactSet(int_vars={"i", "j"})
        facts.add_comparison("<=", T.Var("i"), T.Var("j"))
        assert not facts.entails("<", T.Var("i"), T.Var("j"))

    def test_linearize_roundtrip(self):
        expr = T.BinOp("-", T.BinOp("+", T.Var("i"), T.Const(3)),
                       T.Const(2))
        assert delinearize(linearize(expr)) == \
            T.BinOp("+", T.Var("i"), T.Const(1))

    def test_known_int_constants(self):
        facts = FactSet(int_vars={"i"})
        facts.add_comparison("<=", T.Var("i"), T.Const(10))
        assert 10 in facts.known_int_constants()


class TestProverOnGroundTruth:
    def test_proves_selection_candidate(self):
        frag = selection_fragment()
        vcset = generate_vcs(frag)
        proof = Prover(vcset).validate(selection_candidate())
        assert proof.proved, proof.failures

    def test_proves_running_example_candidate(self):
        frag = running_example_fragment()
        vcset = generate_vcs(frag)
        proof = Prover(vcset).validate(running_example_candidate())
        assert proof.proved, proof.failures

    def test_rejects_wrong_postcondition(self):
        frag = selection_fragment()
        vcset = generate_vcs(frag)
        bad = selection_candidate()
        bad["pcon"] = Predicate(
            params=bad["pcon"].params,
            clauses=(EqClause("result", T.Var("users")),))
        proof = Prover(vcset).validate(bad)
        assert not proof.proved
        assert any("exit" in f for f in proof.failures)

    def test_rejects_non_inductive_invariant(self):
        frag = selection_fragment()
        vcset = generate_vcs(frag)
        bad = selection_candidate()
        bad["inv_loop0"] = Predicate(
            params=bad["inv_loop0"].params,
            clauses=(EqClause("result", T.EmptyRelation()),))
        proof = Prover(vcset).validate(bad)
        assert not proof.proved

    def test_failure_messages_name_the_vc(self):
        frag = selection_fragment()
        vcset = generate_vcs(frag)
        bad = selection_candidate()
        bad["pcon"] = Predicate(
            params=bad["pcon"].params,
            clauses=(EqClause("result", T.Var("users")),))
        proof = Prover(vcset).validate(bad)
        assert all(":" in failure for failure in proof.failures)
