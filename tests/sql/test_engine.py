"""Unit tests for the SQL engine: parser, planner, executor."""

import pytest

from repro.sql import Database, SQLExecutionError, SQLParseError
from repro.sql.parser import parse
from repro.sql import ast as S


@pytest.fixture
def db():
    db = Database()
    db.create_table("users", ("id", "name", "role_id"))
    db.create_table("roles", ("role_id", "role_name"))
    db.insert_many("users", [
        {"id": 1, "name": "alice", "role_id": 10},
        {"id": 2, "name": "bob", "role_id": 20},
        {"id": 3, "name": "carol", "role_id": 10},
    ])
    db.insert_many("roles", [
        {"role_id": 10, "role_name": "admin"},
        {"role_id": 20, "role_name": "user"},
    ])
    return db


class TestParser:
    def test_parse_basic_select(self):
        stmt = parse("SELECT * FROM users")
        assert stmt.items[0].expr == S.Star(None)
        assert stmt.sources[0].table == "users"

    def test_parse_full_clause_set(self):
        stmt = parse("SELECT DISTINCT t0.id AS uid FROM users AS t0 "
                     "WHERE t0.role_id = 10 AND t0.id > 1 "
                     "ORDER BY t0.id DESC LIMIT 5")
        assert stmt.distinct and stmt.limit == 5
        assert stmt.order_by[0].descending

    def test_parse_subquery_source(self):
        stmt = parse("SELECT * FROM (SELECT id FROM users) AS t0")
        assert isinstance(stmt.sources[0], S.SubquerySource)

    def test_parse_in_subquery(self):
        stmt = parse("SELECT * FROM users AS t0 WHERE t0.role_id IN "
                     "(SELECT role_id FROM roles)")
        assert isinstance(stmt.where, S.InSubquery)

    def test_parse_string_escapes(self):
        stmt = parse("SELECT * FROM users AS t0 WHERE t0.name = 'o''brien'")
        assert stmt.where.right.value == "o'brien"

    def test_parse_errors(self):
        with pytest.raises(SQLParseError):
            parse("SELECT FROM users")
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM users WHERE")
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM (SELECT id FROM users)")  # missing alias
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM users; DROP TABLE users")


class TestExecutor:
    def test_where_and_order(self, db):
        rows = db.execute("SELECT * FROM users AS t0 WHERE t0.role_id = 10 "
                          "ORDER BY t0.id DESC").rows
        assert [r.id for r in rows] == [3, 1]

    def test_rowid_order_is_insertion_order(self, db):
        rows = db.execute("SELECT * FROM users AS t0 "
                          "ORDER BY t0._rowid").rows
        assert [r.id for r in rows] == [1, 2, 3]

    def test_limit_and_distinct(self, db):
        rows = db.execute("SELECT DISTINCT role_id FROM users AS t0 "
                          "ORDER BY t0._rowid LIMIT 1").rows
        assert [r.role_id for r in rows] == [10]

    def test_params(self, db):
        rows = db.execute("SELECT * FROM users AS t0 WHERE t0.id = :x",
                          {"x": 2}).rows
        assert [r.name for r in rows] == ["bob"]

    def test_unbound_param_raises(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM users AS t0 WHERE t0.id = :x")

    def test_aggregates(self, db):
        assert db.execute("SELECT COUNT(*) FROM users AS t0").scalar() == 3
        assert db.execute("SELECT MAX(id) FROM users AS t0").scalar() == 3
        assert db.execute("SELECT MIN(id) FROM users AS t0").scalar() == 1
        assert db.execute("SELECT SUM(id) FROM users AS t0").scalar() == 6

    def test_count_comparison(self, db):
        assert db.execute("SELECT COUNT(*) > 0 FROM users AS t0 "
                          "WHERE t0.id = 99").scalar() is False

    def test_empty_aggregate_identities(self, db):
        assert db.execute("SELECT COUNT(*) FROM users AS t0 "
                          "WHERE t0.id = 99").scalar() == 0
        assert db.execute("SELECT SUM(id) FROM users AS t0 "
                          "WHERE t0.id = 99").scalar() == 0

    def test_unknown_table_and_column(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM nope")
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT nope FROM users AS t0")


class TestPlanner:
    def test_equality_join_uses_hash_join(self, db):
        result = db.execute("SELECT t0.* FROM users AS t0, roles AS t1 "
                            "WHERE t0.role_id = t1.role_id")
        assert result.stats.hash_joins == 1
        assert result.stats.nested_loop_joins == 0

    def test_cross_join_uses_nested_loop(self, db):
        result = db.execute("SELECT t0.* FROM users AS t0, roles AS t1")
        assert result.stats.nested_loop_joins == 1
        assert len(result.rows) == 6

    def test_index_scan_on_equality(self, db):
        db.create_index("users", "role_id")
        result = db.execute("SELECT * FROM users AS t0 "
                            "WHERE t0.role_id = 10")
        assert result.stats.index_scans == 1
        assert result.stats.rows_scanned == 2  # only the bucket

    def test_full_scan_without_index(self, db):
        result = db.execute("SELECT * FROM users AS t0 "
                            "WHERE t0.role_id = 10")
        assert result.stats.full_scans == 1
        assert result.stats.rows_scanned == 3

    def test_join_output_order_is_left_major(self, db):
        rows = db.execute(
            "SELECT t0.*, t1.role_name FROM users AS t0, roles AS t1 "
            "WHERE t0.role_id = t1.role_id "
            "ORDER BY t0._rowid, t1._rowid").rows
        assert [r.id for r in rows] == [1, 2, 3]

    def test_whole_row_in_subquery(self, db):
        rows = db.execute(
            "SELECT * FROM users AS t0 WHERE t0 IN "
            "(SELECT * FROM users WHERE id > 1)").rows
        assert [r.id for r in rows] == [2, 3]
