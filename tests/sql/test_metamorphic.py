"""Metamorphic relations: transformed queries with provably equal (or
prefix-related) semantics must agree, in both row and batch modes.

Unlike the differential fuzzer — which compares the *same* SQL across
execution modes — these relations compare *different* SQL texts whose
results are related by construction:

* **predicate commutation** — ``a AND b`` and ``b AND a`` select the
  same rows (rows/columns compared, *not* engine stats: conjunct order
  may change which predicate the planner turns into an index probe);
* **LIMIT monotonicity** — an ordered query with ``LIMIT k`` returns
  exactly the first k rows of the unlimited ordered result, for every
  k up to past the result size;
* **double negation** — ``WHERE p`` and ``WHERE NOT (NOT p)`` are
  identical, including engine stats (the rewrite keeps the predicate
  un-indexable in both forms only when ``p`` already isn't a plain
  equality, so stats are compared just for the safe shapes).

Every relation runs under the row operators and under vectorized
execution at a boundary-straddling batch size.
"""

import pytest

from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions

MODES = (
    ("rows", ExecutorOptions()),
    ("vectorized", ExecutorOptions(vectorized=True, batch_size=7)),
    ("vectorized-1024", ExecutorOptions(vectorized=True,
                                        batch_size=1024)),
)


@pytest.fixture(scope="module")
def db():
    db = Database()
    db.create_table("ev", ("id", "a", "b", "g", "v"))
    db.insert_many("ev", ({"id": i, "a": i % 11, "b": i % 7,
                           "g": i % 3, "v": (i * 13) % 97}
                          for i in range(150)))
    db.create_index("ev", "a")
    return db


@pytest.mark.parametrize("mode", [m[0] for m in MODES])
@pytest.mark.parametrize("left,right", [
    ("t0.a = 3", "t0.v > 40"),
    ("t0.v > 40", "t0.b < 4"),
    ("t0.a > 2", "NOT t0.g = 1"),
])
def test_predicate_commutation(db, mode, left, right):
    options = dict(MODES)[mode]
    view = db.view(options)
    forward = view.execute(
        "SELECT t0.id, t0.v FROM ev t0 WHERE %s AND %s" % (left, right))
    backward = view.execute(
        "SELECT t0.id, t0.v FROM ev t0 WHERE %s AND %s" % (right, left))
    # Rows and columns only: conjunct order may change which predicate
    # becomes the index probe, which changes the stats counters.
    assert list(forward.rows) == list(backward.rows)
    assert forward.columns == backward.columns


@pytest.mark.parametrize("mode", [m[0] for m in MODES])
@pytest.mark.parametrize("sql", [
    "SELECT t0.id, t0.v FROM ev t0 WHERE t0.v > 20 "
    "ORDER BY t0.v DESC, t0.id",
    "SELECT t0.g AS g, COUNT(*) AS n FROM ev t0 GROUP BY t0.g "
    "ORDER BY n DESC",
])
def test_limit_monotonicity(db, mode, sql):
    options = dict(MODES)[mode]
    view = db.view(options)
    unlimited = view.execute(sql)
    total = len(unlimited.rows)
    for k in (0, 1, 2, 5, total, total + 10):
        limited = view.execute(sql + " LIMIT %d" % k)
        assert list(limited.rows) == list(unlimited.rows)[:k], (mode, k)
        assert limited.columns == unlimited.columns


def _stats_tuple(stats):
    return (stats.rows_scanned, stats.index_probes, stats.hash_joins,
            stats.nested_loop_joins, stats.index_scans, stats.full_scans)


@pytest.mark.parametrize("mode", [m[0] for m in MODES])
@pytest.mark.parametrize("predicate", [
    "t0.v > 40",
    "t0.b < 3",
    "(t0.a > 5 OR t0.g = 1)",
])
def test_double_negation(db, mode, predicate):
    options = dict(MODES)[mode]
    view = db.view(options)
    plain = view.execute(
        "SELECT t0.id FROM ev t0 WHERE %s" % predicate)
    doubled = view.execute(
        "SELECT t0.id FROM ev t0 WHERE NOT (NOT %s)" % predicate)
    assert list(plain.rows) == list(doubled.rows)
    assert plain.columns == doubled.columns
    # Non-equality predicates can't become index probes in either
    # form, so the stats contract holds too.
    assert _stats_tuple(plain.stats) == _stats_tuple(doubled.stats)
