"""GROUP BY / HAVING: grammar, the Aggregate operator, group ordering."""

import pytest

from repro.sql import Database, SQLExecutionError
from repro.sql import ast as S
from repro.sql.parser import parse


@pytest.fixture
def db():
    db = Database()
    db.create_table("issue", ("id", "owner_id", "severity"))
    db.create_table("tracker_user", ("id", "login"))
    db.insert_many("tracker_user", [
        {"id": 3, "login": "carol"},
        {"id": 1, "login": "alice"},
        {"id": 2, "login": "bob"},
    ])
    db.insert_many("issue", [
        {"id": 10, "owner_id": 1, "severity": 2},
        {"id": 11, "owner_id": 3, "severity": 5},
        {"id": 12, "owner_id": 1, "severity": 4},
        {"id": 13, "owner_id": 3, "severity": 1},
        {"id": 14, "owner_id": 3, "severity": 3},
    ])
    return db


class TestGrammar:
    def test_parse_group_by_and_having(self):
        stmt = parse("SELECT t0.owner_id, COUNT(*) AS n FROM issue t0 "
                     "GROUP BY t0.owner_id HAVING COUNT(*) > 1")
        assert stmt.group_by == (S.ColumnRef("t0", "owner_id"),)
        assert isinstance(stmt.having, S.BinOp)

    def test_parse_multiple_group_keys(self):
        stmt = parse("SELECT t0.owner_id FROM issue t0 "
                     "GROUP BY t0.owner_id, t0.severity")
        assert len(stmt.group_by) == 2

    def test_having_requires_group_by(self):
        from repro.sql.errors import SQLParseError

        with pytest.raises(SQLParseError):
            parse("SELECT COUNT(*) FROM issue HAVING COUNT(*) > 1 "
                  "GROUP BY owner_id")


class TestExecution:
    def test_groups_emit_in_first_encounter_order(self, db):
        result = db.execute("SELECT t0.owner_id, COUNT(*) AS n "
                            "FROM issue t0 GROUP BY t0.owner_id")
        assert [(r["owner_id"], r["n"]) for r in result.rows] == \
            [(1, 2), (3, 3)]
        assert result.columns == ("owner_id", "n")

    def test_group_aggregates(self, db):
        result = db.execute(
            "SELECT t0.owner_id, SUM(t0.severity) AS total, "
            "MAX(t0.severity) AS worst, MIN(t0.severity) AS best, "
            "AVG(t0.severity) AS mean "
            "FROM issue t0 GROUP BY t0.owner_id")
        rows = {r["owner_id"]: r for r in result.rows}
        assert rows[1]["total"] == 6 and rows[1]["worst"] == 4
        assert rows[3]["best"] == 1 and rows[3]["mean"] == 3

    def test_having_filters_groups(self, db):
        result = db.execute("SELECT t0.owner_id FROM issue t0 "
                            "GROUP BY t0.owner_id HAVING COUNT(*) > 2")
        assert [r["owner_id"] for r in result.rows] == [3]

    def test_having_mixes_aggregate_and_key(self, db):
        result = db.execute(
            "SELECT t0.owner_id FROM issue t0 GROUP BY t0.owner_id "
            "HAVING COUNT(*) > 1 AND t0.owner_id < 3")
        assert [r["owner_id"] for r in result.rows] == [1]

    def test_group_by_rowid_keeps_duplicate_keys_separate(self, db):
        # Two distinct users could share a key value; grouping on the
        # storage position must not merge them.
        db.insert("tracker_user", {"id": 1, "login": "alice2"})
        result = db.execute(
            "SELECT t0.id AS uid, COUNT(*) AS n "
            "FROM tracker_user t0, issue t1 WHERE t0.id = t1.owner_id "
            "GROUP BY t0._rowid")
        assert [(r["uid"], r["n"]) for r in result.rows] == \
            [(3, 3), (1, 2), (1, 2)]

    def test_group_over_join_orders_by_left_source(self, db):
        result = db.execute(
            "SELECT t0.login, COUNT(*) AS n "
            "FROM tracker_user t0, issue t1 WHERE t0.id = t1.owner_id "
            "GROUP BY t0._rowid")
        # User storage order (carol, alice); bob has no issues -> no group.
        assert [(r["login"], r["n"]) for r in result.rows] == \
            [("carol", 3), ("alice", 2)]

    def test_order_by_on_grouped_output_column(self, db):
        result = db.execute("SELECT t0.owner_id, COUNT(*) AS n "
                            "FROM issue t0 GROUP BY t0.owner_id "
                            "ORDER BY n DESC")
        assert [r["owner_id"] for r in result.rows] == [3, 1]

    def test_order_by_unknown_grouped_column_is_an_error(self, db):
        with pytest.raises(SQLExecutionError, match="output column"):
            db.execute("SELECT t0.owner_id FROM issue t0 "
                       "GROUP BY t0.owner_id ORDER BY severity")

    def test_group_limit(self, db):
        result = db.execute("SELECT t0.owner_id FROM issue t0 "
                            "GROUP BY t0.owner_id LIMIT 1")
        assert len(result.rows) == 1

    def test_star_in_grouped_select_is_an_error(self, db):
        with pytest.raises(SQLExecutionError, match="grouped"):
            db.execute("SELECT * FROM issue t0 GROUP BY t0.owner_id")

    def test_empty_input_produces_no_groups(self, db):
        result = db.execute("SELECT t0.owner_id, COUNT(*) AS n "
                            "FROM issue t0 WHERE t0.severity > 99 "
                            "GROUP BY t0.owner_id")
        assert list(result.rows) == []

    def test_explain_shows_group_operator(self, db):
        text = db.explain("SELECT t0.owner_id, COUNT(*) AS n "
                          "FROM issue t0 GROUP BY t0.owner_id "
                          "HAVING COUNT(*) > 1")
        assert "GroupBy(t0.owner_id)" in text
        assert "having COUNT(*) > 1" in text
