"""Property tests: ``parse(to_sql(ast)) == ast`` over generated statements.

The generator produces random statements covering the whole grammar —
including the GROUP BY / HAVING productions — shaped so that every
generated AST is one the parser itself could produce (parenthesisation
artifacts aside, which ``to_sql`` normalises away).
"""

import random

import pytest

from repro.sql import ast as S
from repro.sql.parser import parse
from repro.sql.pretty import to_sql

TABLES = ("users", "roles", "issues")
COLUMNS = ("id", "name", "role_id", "severity", "_rowid")


class _Gen:
    def __init__(self, rng: random.Random):
        self.rng = rng

    def literal(self) -> S.Literal:
        return S.Literal(self.rng.choice(
            [0, 1, 42, 3.5, True, False, None, "x", "o'brien"]))

    def column(self, alias=None) -> S.ColumnRef:
        use_alias = alias if self.rng.random() < 0.7 else None
        return S.ColumnRef(use_alias, self.rng.choice(COLUMNS))

    def operand(self, alias) -> S.Expr:
        roll = self.rng.random()
        if roll < 0.45:
            return self.column(alias)
        if roll < 0.75:
            return self.literal()
        if roll < 0.9:
            return S.Param(self.rng.choice(("p", "creator", "state")))
        name = self.rng.choice(("COUNT", "SUM", "MAX", "MIN", "AVG"))
        if name == "COUNT" and self.rng.random() < 0.4:
            return S.FuncCall(name, None)  # COUNT(*)
        return S.FuncCall(name, self.column(alias))

    def comparison(self, alias, depth) -> S.Expr:
        roll = self.rng.random()
        if roll < 0.12 and depth > 0:
            return S.InSubquery(self.column(alias),
                                self.select(depth - 1),
                                negated=self.rng.random() < 0.4)
        op = self.rng.choice(("=", "!=", "<", ">", "<=", ">="))
        return S.BinOp(op, self.operand(alias), self.operand(alias))

    def condition(self, alias, depth, budget=3) -> S.Expr:
        roll = self.rng.random()
        if budget > 0 and roll < 0.25:
            return S.BinOp(self.rng.choice(("AND", "OR")),
                           self.condition(alias, depth, budget - 1),
                           self.condition(alias, depth, budget - 1))
        if budget > 0 and roll < 0.35:
            return S.NotOp(self.comparison(alias, depth))
        return self.comparison(alias, depth)

    def select(self, depth=1) -> S.Select:
        rng = self.rng
        alias = rng.choice(("t0", "u", None))
        table = rng.choice(TABLES)
        if alias is None:
            sources = (S.TableSource(table, table),)
            alias = table
        elif depth > 0 and rng.random() < 0.15:
            sources = (S.SubquerySource(self.select(depth - 1), alias),)
        else:
            sources = (S.TableSource(table, alias),)
        if rng.random() < 0.2:
            second = rng.choice([t for t in TABLES if t != table])
            sources = sources + (S.TableSource(second, second),)

        items = []
        if rng.random() < 0.25:
            items.append(S.SelectItem(S.Star(
                alias if rng.random() < 0.5 else None)))
        for _ in range(rng.randint(0 if items else 1, 2)):
            as_name = rng.choice((None, "out", "n"))
            items.append(S.SelectItem(self.operand(alias), as_name))

        where = self.condition(alias, depth) if rng.random() < 0.6 \
            else None
        group_by = ()
        having = None
        if rng.random() < 0.3:
            group_by = tuple(self.column(alias)
                             for _ in range(rng.randint(1, 2)))
            if rng.random() < 0.5:
                having = self.condition(alias, 0, budget=1)
        order_by = ()
        if rng.random() < 0.4:
            order_by = tuple(
                S.OrderItem(self.column(alias), rng.random() < 0.5)
                for _ in range(rng.randint(1, 2)))
        limit = rng.randint(0, 9) if rng.random() < 0.3 else None
        return S.Select(items=tuple(items), sources=sources, where=where,
                        group_by=group_by, having=having,
                        order_by=order_by, limit=limit,
                        distinct=rng.random() < 0.2)


@pytest.mark.parametrize("seed", range(12))
def test_roundtrip_generated_statements(seed):
    gen = _Gen(random.Random(seed))
    for case in range(40):
        stmt = gen.select(depth=1)
        rendered = to_sql(stmt)
        reparsed = parse(rendered)
        assert reparsed == stmt, "seed=%d case=%d sql=%s" % (seed, case,
                                                             rendered)
        # Rendering is a fixpoint: pretty(parse(pretty(x))) == pretty(x).
        assert to_sql(reparsed) == rendered


def test_roundtrip_group_by_having_specifically():
    sql = ("SELECT t0.role_id, COUNT(*) AS n FROM users AS t0 "
           "WHERE t0.id > 1 GROUP BY t0.role_id, t0.name "
           "HAVING COUNT(*) > 1 AND NOT t0.role_id = 3 "
           "ORDER BY t0.role_id DESC LIMIT 4")
    stmt = parse(sql)
    assert to_sql(stmt) == sql
    assert parse(to_sql(stmt)) == stmt


def test_roundtrip_corpus_generated_sql():
    """Every SQL string sqlgen emits must survive a round trip."""
    samples = (
        "SELECT * FROM project AS t0 WHERE t0.is_finished = 0 "
        "ORDER BY t0._rowid",
        "SELECT COUNT(*) > 0 FROM login AS t0 WHERE t0.login = :login",
        "SELECT t0.a AS ra, t2.id AS uid FROM r AS t0, s AS t1, u AS t2 "
        "WHERE t0.a = t1.b AND t1.id = t2.c "
        "ORDER BY t0._rowid, t1._rowid, t2._rowid",
        "SELECT t0.a, COUNT(*) AS matches FROM r AS t0, s AS t1 "
        "WHERE t0.a = t1.b GROUP BY t0._rowid",
    )
    for sql in samples:
        stmt = parse(sql)
        assert to_sql(stmt) == sql
