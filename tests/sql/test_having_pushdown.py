"""HAVING pushdown: group-key-only conjuncts move into WHERE.

Planner-equivalence (toggle on vs. off, identical rows over every
shape), plan-shape checks (pushed conjunct shows up as a scan filter),
and pretty round-trips — the rewrite is planner-internal and must not
disturb the parsed AST or its SQL rendering."""

import pytest

from repro.sql import Database, ExecutorOptions
from repro.sql.parser import parse
from repro.sql.pretty import to_sql


@pytest.fixture(scope="module")
def db():
    db = Database()
    db.create_table("ev", ("id", "g", "h", "v"))
    db.create_index("ev", "g")
    db.insert_many("ev", ({"id": i, "g": i % 5, "h": i % 3, "v": i}
                          for i in range(40)))
    return db


HAVING_BATTERY = [
    # Pure group-key conjunct: fully pushable, HAVING disappears.
    "SELECT e.g, COUNT(*) AS n FROM ev e GROUP BY e.g HAVING e.g > 1",
    # Mixed AND: the key conjunct pushes, the aggregate stays.
    "SELECT e.g, COUNT(*) AS n FROM ev e GROUP BY e.g "
    "HAVING e.g > 1 AND COUNT(*) > 3",
    # Equality on an indexed group key: pushes all the way to a probe.
    "SELECT e.g, SUM(e.v) AS s FROM ev e GROUP BY e.g HAVING e.g = 2",
    # Two group keys, conjunct over both.
    "SELECT e.g, e.h, COUNT(*) AS n FROM ev e GROUP BY e.g, e.h "
    "HAVING e.g > e.h",
    # OR inside one conjunct over keys only: still pushable.
    "SELECT e.g, COUNT(*) AS n FROM ev e GROUP BY e.g "
    "HAVING e.g = 1 OR e.g = 3",
    # Aggregate-only HAVING: nothing to push.
    "SELECT e.g, COUNT(*) AS n FROM ev e GROUP BY e.g "
    "HAVING COUNT(*) > 7",
    # Non-key column: must NOT push (h varies within a g-group).
    "SELECT e.g, MAX(e.h) AS m FROM ev e GROUP BY e.g HAVING e.h > 0",
]


@pytest.mark.parametrize("sql", HAVING_BATTERY)
def test_pushdown_is_equivalent(db, sql):
    on = db.execute(sql)
    off = db.view(
        ExecutorOptions(having_pushdown=False)).execute(sql)
    assert list(on.rows) == list(off.rows), sql
    assert on.columns == off.columns, sql


def test_pushed_conjunct_becomes_scan_filter(db):
    sql = ("SELECT e.g, COUNT(*) AS n FROM ev e GROUP BY e.g "
           "HAVING e.g > 1 AND COUNT(*) > 3")
    text = db.explain(sql)
    assert "filter=1" in text                 # key conjunct at the scan
    assert "having COUNT(*) > 3" in text      # aggregate conjunct stays
    assert "e.g > 1" not in text.split("\n")[0]
    off = db.view(ExecutorOptions(having_pushdown=False)).explain(sql)
    assert "having e.g > 1 AND COUNT(*) > 3" in off
    assert "filter=" not in off


def test_pushed_equality_reaches_the_index(db):
    sql = ("SELECT e.g, SUM(e.v) AS s FROM ev e GROUP BY e.g "
           "HAVING e.g = 2")
    text = db.explain(sql)
    assert "IndexScan(ev AS e, g = 2)" in text
    assert "having" not in text


def test_non_key_column_stays_in_having(db):
    text = db.explain("SELECT e.g, MAX(e.h) AS m FROM ev e "
                      "GROUP BY e.g HAVING e.h > 0")
    assert "having e.h > 0" in text
    assert "filter=" not in text


@pytest.mark.parametrize("sql", HAVING_BATTERY)
def test_pretty_roundtrip_is_untouched(db, sql):
    """The rewrite is planner-internal: the parsed AST still renders
    and re-parses to itself after planning and execution."""
    select = parse(sql)
    db.execute(sql)                     # plan + run (mutates nothing)
    assert parse(to_sql(select)) == select
    assert parse(to_sql(parse(sql))) == select


def test_plan_cache_reuse_is_stable(db):
    """Database caches the parsed AST; repeated executions re-plan
    from it and must keep producing the same result."""
    sql = ("SELECT e.g, COUNT(*) AS n FROM ev e GROUP BY e.g "
           "HAVING e.g > 1 AND COUNT(*) > 3")
    first = db.execute(sql)
    second = db.execute(sql)
    assert list(first.rows) == list(second.rows)
