"""Cross-mode differential SQL fuzzing.

A seeded generator builds random schemas, data and SELECT statements,
then executes each query under every execution mode the engine offers —
seed pipeline, greedy planner, cost-based planner, partition-parallel
at K in {1, 2, 4} (threads, periodically the fork backend and the
persistent worker pool), vectorized at several batch sizes, and
vectorized composed with parallel — and
asserts the identity contract: same rows (values *and* order) and
columns everywhere, plus engine-statistics identity within each
stats family (see ``_modes`` — cost-based planning may legitimately
pick different join strategies than the greedy chain).

Determinism: every case derives its own ``random.Random`` from a fixed
seed and the case index, so a failing case index reproduces exactly.
On failure the harness first *reduces* the dataset (dropping rows while
the mismatch persists) and then prints a self-contained repro script.

Scale: ``REPRO_FUZZ_ITERS`` overrides the default 200 cases
(``make fuzz-smoke`` runs a smaller fixed-seed subset in CI; crank it
to thousands for soak runs).
"""

import os
import random
import re

import pytest

from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions

SEED = 1337
ITERS = int(os.environ.get("REPRO_FUZZ_ITERS", "200"))
CHUNK = 25

COMPARISONS = ("=", "!=", "<", ">", "<=", ">=")
AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")


def _stats_tuple(stats):
    return (stats.rows_scanned, stats.index_probes, stats.hash_joins,
            stats.nested_loop_joins, stats.index_scans, stats.full_scans)


# -- generation ----------------------------------------------------------------


def _build_tables(rng):
    """1-3 tables with per-table-distinct column names, skewed keys
    and deliberate edge shapes (empty / single row / all-duplicate
    keys)."""
    tables = {}
    for t in range(rng.randint(1, 3)):
        name = "t%d" % t
        columns = ("id", "k%d" % t, "v%d" % t, "w%d" % t)
        shape = rng.choices(("empty", "single", "dupkeys", "normal"),
                            weights=(1, 1, 2, 8))[0]
        if shape == "empty":
            n = 0
        elif shape == "single":
            n = 1
        else:
            n = rng.randint(2, 24)
        domain = rng.randint(1, 8)
        rows = []
        for i in range(n):
            if shape == "dupkeys":
                key = domain - 1
            else:
                # Skew: the min of two uniforms piles keys low.
                key = min(rng.randint(0, domain), rng.randint(0, domain))
            rows.append({
                "id": i,
                columns[1]: key,
                columns[2]: rng.choice((0, 1, 2, 3, 5, 8, 13)),
                columns[3]: rng.randint(-10, 100),
            })
        tables[name] = {
            "columns": columns,
            "rows": rows,
            "index": columns[1] if rng.random() < 0.5 else None,
        }
    return tables


def _filter_sql(rng, sources, tables, params):
    """One WHERE conjunct over a random source column."""
    alias, tname = rng.choice(sources)
    column = rng.choice(tables[tname]["columns"])
    op = rng.choice(COMPARISONS)
    value = rng.choice((0, 1, 2, 3, 5, 8, 13, 50, -3))
    if rng.random() < 0.15:
        pname = "p%d" % len(params)
        params[pname] = value
        rhs = ":%s" % pname
    else:
        rhs = str(value)
    clause = "%s.%s %s %s" % (alias, column, op, rhs)
    if rng.random() < 0.2:
        other = "%s.%s %s %d" % (alias,
                                 rng.choice(tables[tname]["columns"]),
                                 rng.choice(COMPARISONS),
                                 rng.choice((0, 2, 5, 40)))
        clause = "(%s OR %s)" % (clause, other)
    if rng.random() < 0.15:
        clause = "NOT %s" % clause
    return clause


def _agg_sql(rng, sources, tables, as_name):
    """One aggregate call over a random source column."""
    func = rng.choice(AGGREGATES)
    if func == "COUNT" and rng.random() < 0.5:
        return "COUNT(*) AS %s" % as_name
    alias, tname = rng.choice(sources)
    column = rng.choice(tables[tname]["columns"])
    return "%s(%s.%s) AS %s" % (func, alias, column, as_name)


def _build_query(rng, tables):
    """One random SELECT over the generated tables; returns (sql,
    params)."""
    names = sorted(tables)
    n_sources = rng.randint(1, min(3, len(names) + 1))
    sources = [("a%d" % i, rng.choice(names)) for i in range(n_sources)]
    from_sql = ", ".join("%s %s" % (t, a) for a, t in sources)

    params = {}
    conjuncts = []
    # Join each source to its predecessor on the key columns (else the
    # pair cross-joins through the nested-loop operator).
    for j in range(1, n_sources):
        if rng.random() < 0.85:
            left_alias, left_t = sources[j - 1]
            right_alias, right_t = sources[j]
            conjuncts.append("%s.k%s = %s.k%s"
                             % (right_alias, right_t[1:],
                                left_alias, left_t[1:]))
    for _ in range(rng.randint(0, 2)):
        conjuncts.append(_filter_sql(rng, sources, tables, params))

    mode = rng.choices(("plain", "whole_agg", "grouped"),
                       weights=(5, 2, 3))[0]
    order_limit = ""
    if mode == "plain":
        if rng.random() < 0.25:
            items = "*"
        else:
            picked = []
            for _ in range(rng.randint(1, 3)):
                alias, tname = rng.choice(sources)
                picked.append("%s.%s"
                              % (alias,
                                 rng.choice(tables[tname]["columns"])))
            items = ", ".join(picked)
            if rng.random() < 0.2 and len(picked) == 1:
                items = "DISTINCT " + items
        if rng.random() < 0.5:
            keys = []
            for _ in range(rng.randint(1, 2)):
                alias, tname = rng.choice(sources)
                keys.append("%s.%s%s"
                            % (alias,
                               rng.choice(tables[tname]["columns"]),
                               " DESC" if rng.random() < 0.4 else ""))
            order_limit = " ORDER BY " + ", ".join(keys)
            if rng.random() < 0.5:
                order_limit += " LIMIT %d" % rng.randint(0, 9)
    elif mode == "whole_agg":
        items = ", ".join(_agg_sql(rng, sources, tables, "c%d" % i)
                          for i in range(rng.randint(1, 3)))
        if rng.random() < 0.3:
            # Comparisons only over COUNT/SUM: never None, even on
            # empty input (SUM() of nothing is 0 by the seed's rule).
            func = rng.choice(("COUNT(*)",
                               "SUM(%s.id)" % sources[0][0]))
            items += ", %s %s %d AS flag" % (
                func, rng.choice(COMPARISONS), rng.randint(0, 20))
    else:
        group_keys = []
        for _ in range(rng.randint(1, 2)):
            alias, tname = rng.choice(sources)
            key = "%s.%s" % (alias, rng.choice(tables[tname]["columns"]))
            if key not in group_keys:
                group_keys.append(key)
        key_items = ["%s AS g%d" % (key, i)
                     for i, key in enumerate(group_keys)]
        agg_items = [_agg_sql(rng, sources, tables, "c%d" % i)
                     for i in range(rng.randint(1, 2))]
        items = ", ".join(key_items + agg_items)
        having = ""
        if rng.random() < 0.5:
            # Groups are never empty, so any aggregate compares safely.
            alias, tname = rng.choice(sources)
            calls = ["COUNT(*)",
                     "SUM(%s.id)" % alias,
                     "AVG(%s.%s)" % (alias,
                                     rng.choice(tables[tname]["columns"]))]
            clause = "%s %s %d" % (rng.choice(calls),
                                   rng.choice(COMPARISONS),
                                   rng.randint(0, 10))
            if rng.random() < 0.3:
                clause += " AND COUNT(*) %s %d" % (
                    rng.choice(COMPARISONS), rng.randint(0, 5))
            having = " HAVING " + clause
        suffix = " GROUP BY " + ", ".join(group_keys) + having
        if rng.random() < 0.5:
            # Grouped ORDER BY names output columns.
            out = rng.choice(["g0"] + ["c%d" % i
                                       for i in range(len(agg_items))])
            suffix += " ORDER BY %s%s" % (
                out, " DESC" if rng.random() < 0.4 else "")
            if rng.random() < 0.4:
                suffix += " LIMIT %d" % rng.randint(0, 5)
        order_limit = suffix

    where = (" WHERE " + " AND ".join(conjuncts)) if conjuncts else ""
    sql = "SELECT %s FROM %s%s%s" % (items, from_sql, where, order_limit)
    return sql, params


def build_case(index):
    """The deterministic (tables, sql, params) for one case index."""
    rng = random.Random(SEED * 1000003 + index)
    tables = _build_tables(rng)
    sql, params = _build_query(rng, tables)
    return tables, sql, params


# -- execution matrix ----------------------------------------------------------


def _make_db(tables):
    db = Database()
    for name in sorted(tables):
        spec = tables[name]
        db.create_table(name, spec["columns"])
        if spec["rows"]:
            db.insert_many(name, spec["rows"])
        if spec["index"]:
            db.create_index(name, spec["index"])
    return db


def _modes(index, rng, sql):
    """The mode matrix for one case: (label, options, stats_family).

    Stats compare within a family, not globally: the cost-based
    planner may legitimately choose different join strategies or
    access paths than the greedy chain (that is its job), so the
    greedy planner and the seed pipeline pin stats against *each
    other*, while every parallel/vectorized mode — which only changes
    the execution substrate, never the chosen plan semantics — pins
    stats against the cost-based baseline.  Rows and columns must be
    identical across all modes unconditionally.
    """
    modes = [("greedy", ExecutorOptions(cost_based=False), "greedy")]
    if "GROUP BY" not in sql and "HAVING" not in sql:
        modes.append(("seed-pipeline", ExecutorOptions(planner=False),
                      "greedy"))
    for k in (1, 2, 4):
        modes.append(("parallel-%d" % k, ExecutorOptions(parallel=k),
                      "baseline"))
    if index % 10 == 0:
        modes.append(("processes",
                      ExecutorOptions(parallel=2,
                                      parallel_backend="processes"),
                      "baseline"))
    if index % 10 == 5:
        modes.append(("pool",
                      ExecutorOptions(parallel=2,
                                      parallel_backend="pool"),
                      "baseline"))
    for size in sorted({rng.choice((1, 3, 1024)), 1024}):
        modes.append(("vectorized-%d" % size,
                      ExecutorOptions(vectorized=True, batch_size=size),
                      "baseline"))
    modes.append(("vec-parallel-2",
                  ExecutorOptions(vectorized=True, parallel=2),
                  "baseline"))
    return modes


def _mismatch(tables, sql, params, index):
    """The first diverging mode label, or None if all modes agree."""
    db = _make_db(tables)
    rng = random.Random(SEED * 7 + index)
    try:
        baseline = db.execute(sql, params)
    except Exception as exc:     # noqa: BLE001 - compared across modes
        baseline = ("raises", type(exc).__name__, str(exc))
    family_stats = {}
    for label, options, family in _modes(index, rng, sql):
        view = db.view(options)
        try:
            result = view.execute(sql, params)
        except Exception as exc:     # noqa: BLE001
            result = ("raises", type(exc).__name__, str(exc))
        if isinstance(baseline, tuple) or isinstance(result, tuple):
            if baseline != result:
                return label
            continue
        if (list(result.rows) != list(baseline.rows)
                or result.columns != baseline.columns):
            return label
        stats = _stats_tuple(result.stats)
        if family == "baseline":
            if stats != _stats_tuple(baseline.stats):
                return label
        else:
            reference = family_stats.setdefault(family, stats)
            if stats != reference:
                return label
    return None


# -- reduction + repro ---------------------------------------------------------


def _reduce(tables, sql, params, index, budget=80):
    """Shrink table data while the mismatch persists."""
    current = {name: dict(spec, rows=list(spec["rows"]))
               for name, spec in tables.items()}
    shrunk = True
    while shrunk and budget > 0:
        shrunk = False
        for name in sorted(current):
            rows = current[name]["rows"]
            chunk = max(1, len(rows) // 2)
            while rows and budget > 0:
                trial = {n: (dict(spec, rows=spec["rows"][:-chunk])
                             if n == name else spec)
                         for n, spec in current.items()}
                budget -= 1
                if _mismatch(trial, sql, params, index):
                    current = trial
                    rows = current[name]["rows"]
                    shrunk = True
                else:
                    if chunk == 1:
                        break
                    chunk = max(1, chunk // 2)
    return current


def _repro_script(tables, sql, params, index, label):
    lines = [
        "# fuzz case %d diverged under mode %r" % (index, label),
        "from repro.sql.database import Database",
        "from repro.sql.executor import ExecutorOptions",
        "db = Database()",
    ]
    for name in sorted(tables):
        spec = tables[name]
        lines.append("db.create_table(%r, %r)" % (name, spec["columns"]))
        for row in spec["rows"]:
            lines.append("db.insert(%r, %r)" % (name, row))
        if spec["index"]:
            lines.append("db.create_index(%r, %r)"
                         % (name, spec["index"]))
    lines.append("sql = %r" % sql)
    lines.append("params = %r" % params)
    lines.append("base = db.execute(sql, params)")
    lines.append("# re-run under the diverging mode and compare "
                 "rows/columns/stats")
    return "\n".join(lines)


def _run_cases(start, stop):
    for index in range(start, stop):
        tables, sql, params = build_case(index)
        label = _mismatch(tables, sql, params, index)
        if label is not None:
            reduced = _reduce(tables, sql, params, index)
            print(_repro_script(reduced, sql, params, index, label))
            pytest.fail("fuzz case %d: mode %r diverged from the "
                        "default planner on %r (reduced repro above)"
                        % (index, label, sql))


@pytest.mark.parametrize("chunk", range((ITERS + CHUNK - 1) // CHUNK))
def test_differential_fuzz(chunk):
    _run_cases(chunk * CHUNK, min((chunk + 1) * CHUNK, ITERS))


def test_generator_is_deterministic():
    assert build_case(17) == build_case(17)
    sqls = {build_case(i)[1] for i in range(40)}
    assert len(sqls) > 25     # the generator actually varies


def test_generator_covers_the_clause_space():
    """The fixed seed must keep exercising every major clause — a
    generator regression that stops emitting joins or GROUP BY would
    silently gut the fuzzer."""
    corpus = " || ".join(build_case(i)[1] for i in range(200))
    for needle in ("GROUP BY", "HAVING", "ORDER BY", "LIMIT",
                   "DISTINCT", "NOT ", " OR ", "COUNT", "SUM", "AVG",
                   "MIN", "MAX", ":p0", "a1.", "a2."):
        assert needle in corpus, needle
