"""Chaos suite for the persistent worker pool.

The pool handles substrate faults *inside* its own rung before the
degradation ladder ever moves: a crashed worker is respawned and the
job retried under the pool's :class:`~repro.service.faults.RetryPolicy`
(corrupt payloads retry on the same, still-healthy worker).  Only when
the retry budget exhausts does the fault escape and the ladder fall
``pool → processes → threads → serial``.  Either way the answer is
pinned row/column/stats-identical to serial execution, and the
respawn/retry/dispatch counters expose exactly how many attempts the
recovery took.

Fault plans are applied *worker-side* (shipped inside each run frame):
a long-lived worker forked before ``faults.injected`` ran would never
see a driver-side plan, so the pool routes the plan through the wire
protocol instead.
"""

import time

import pytest

from repro.service import faults
from repro.service import pool as pool_mod
from repro.service.faults import (
    DeadlineExceeded,
    FaultPlan,
    TransientFault,
    WorkerCrash,
)
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions


def _stats_tuple(stats):
    return (stats.rows_scanned, stats.index_probes, stats.hash_joins,
            stats.nested_loop_joins, stats.index_scans, stats.full_scans)


@pytest.fixture(scope="module")
def chaos_db():
    db = Database()
    db.create_table("r", ("id", "a"))
    db.create_table("s", ("id", "b"))
    db.create_index("s", "b")
    db.insert_many("r", ({"id": i, "a": i % 5} for i in range(23)))
    db.insert_many("s", ({"id": i, "b": i % 5} for i in range(11)))
    return db


JOIN = ("SELECT t0.id, t1.id FROM r t0, s t1 WHERE t0.a = t1.b "
        "ORDER BY t0.id, t1.id")
GROUPED = ("SELECT t0.a, COUNT(*) AS n, SUM(t0.id) AS tot "
           "FROM r t0 GROUP BY t0.a ORDER BY n DESC")


def _pool_view(db, **overrides):
    options = dict(parallel=2, parallel_backend="pool")
    options.update(overrides)
    return db.view(ExecutorOptions(**options))


def _metric_deltas(action):
    """Run ``action`` and return the pool counter deltas it caused."""
    before = (pool_mod._DISPATCHES.total(), pool_mod._RESPAWNS.total(),
              pool_mod._RETRIES.total())
    result = action()
    after = (pool_mod._DISPATCHES.total(), pool_mod._RESPAWNS.total(),
             pool_mod._RETRIES.total())
    deltas = {"dispatches": after[0] - before[0],
              "respawns": after[1] - before[1],
              "retries": after[2] - before[2]}
    return result, deltas


def _assert_identical_to_serial(db, view, sql, degradations=0):
    serial = db.execute(sql)
    result = view.execute(sql)
    assert list(result.rows) == list(serial.rows)
    assert result.columns == serial.columns
    assert _stats_tuple(result.stats) == _stats_tuple(serial.stats)
    assert result.stats.degradations == degradations
    return result


def test_killed_worker_respawns_and_retries_exact_counts(chaos_db):
    """A worker killed mid-query (injected CRASH → ``os._exit`` inside
    the worker) is respawned and the lost job retried — converging to
    the fault-free answer with *exactly* one respawn, one retry, and
    three dispatches (two partitions + the retried one), and without
    the ladder moving at all."""
    plan = FaultPlan(faults={"part:1": faults.CRASH})
    view = _pool_view(chaos_db)

    def run():
        with faults.injected(plan):
            return _assert_identical_to_serial(chaos_db, view, JOIN)

    _, deltas = _metric_deltas(run)
    assert deltas == {"dispatches": 3, "respawns": 1, "retries": 1}


def test_two_attempt_crash_heals_within_retry_budget(chaos_db):
    """A fault lasting two attempts still converges inside the pool
    rung: two respawns, two retries, and the third attempt answers."""
    plan = FaultPlan(faults={"part:0": faults.CRASH}, faulty_attempts=2)
    view = _pool_view(chaos_db)

    def run():
        with faults.injected(plan):
            return _assert_identical_to_serial(chaos_db, view, GROUPED)

    _, deltas = _metric_deltas(run)
    assert deltas == {"dispatches": 4, "respawns": 2, "retries": 2}


def test_corrupt_payload_retries_on_the_same_worker(chaos_db):
    """A reply that will not unpickle is transport corruption, not a
    dead worker: the pool retries without respawning anything."""
    plan = FaultPlan(faults={"part:1": faults.CORRUPT_PAYLOAD})
    view = _pool_view(chaos_db)

    def run():
        with faults.injected(plan):
            return _assert_identical_to_serial(chaos_db, view, JOIN)

    _, deltas = _metric_deltas(run)
    assert deltas == {"dispatches": 3, "respawns": 0, "retries": 1}


def test_exhausted_retry_budget_degrades_and_converges(chaos_db):
    """When every pool attempt crashes (``faulty_attempts=3`` covers
    the whole default retry budget), the fault escapes the rung and the
    ladder takes over — the query still converges, one rung at a time,
    down to serial where the plan has healed."""
    plan = FaultPlan(faults={"part:1": faults.CRASH}, faulty_attempts=3)
    view = _pool_view(chaos_db)
    with faults.injected(plan):
        result = _assert_identical_to_serial(chaos_db, view, JOIN,
                                             degradations=3)
        text = view.explain(JOIN, analyze=True)
    assert result.stats.degradations == 3
    assert "degraded=pool->processes->threads->serial" in text


def test_poison_partition_exhausts_the_whole_ladder(chaos_db):
    """A poison fault never heals: the ladder falls all the way and the
    classified crash finally propagates from the serial rung."""
    plan = FaultPlan(poison={"part:0": faults.CRASH})
    view = _pool_view(chaos_db)
    with faults.injected(plan):
        with pytest.raises(WorkerCrash):
            view.execute(JOIN)


def test_application_transient_fault_is_not_absorbed(chaos_db):
    """TransientFault raised inside a worker is an application-level
    error carried home over the ``exc`` reply — the pool re-raises it
    instead of respawning anything."""
    plan = FaultPlan(faults={"part:0": faults.TRANSIENT})
    view = _pool_view(chaos_db)
    with faults.injected(plan):
        with pytest.raises(TransientFault):
            view.execute(JOIN)


def test_hung_worker_hits_deadline_and_pool_recovers(chaos_db):
    """A hung partition trips the query deadline fast; the stuck
    workers are scrapped, and the *next* query finds a healthy pool."""
    plan = FaultPlan(faults={"part:1": faults.HANG}, hang_seconds=30.0)
    view = _pool_view(chaos_db, deadline_seconds=0.3)
    start = time.perf_counter()
    with faults.injected(plan):
        with pytest.raises(DeadlineExceeded):
            view.execute(JOIN)
    assert time.perf_counter() - start < 10     # abandoned, not joined
    # Recovery: the same pool answers the follow-up query correctly.
    _assert_identical_to_serial(chaos_db, _pool_view(chaos_db), JOIN)


def test_chaotic_pool_query_is_deterministic(chaos_db):
    plan = FaultPlan(faults={"part:0": faults.CRASH})
    view = _pool_view(chaos_db)
    snapshots = []
    for _ in range(2):
        with faults.injected(plan):
            result = view.execute(GROUPED)
        snapshots.append((list(result.rows), result.columns,
                          _stats_tuple(result.stats),
                          result.stats.degradations))
    assert snapshots[0] == snapshots[1]


def test_fault_free_pool_run_is_marked_in_analyze(chaos_db):
    view = _pool_view(chaos_db)
    _assert_identical_to_serial(chaos_db, view, JOIN)
    text = view.explain(JOIN, analyze=True)
    assert "backend=pool" in text
    assert "degraded=" not in text
