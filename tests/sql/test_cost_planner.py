"""The cost-based planner: join-order search, order restoration,
cost-driven access paths, and mode equivalence against the greedy
planner and the seed pipeline."""

import pytest

from repro.sql import Database, ExecutorOptions


@pytest.fixture(scope="module")
def skew_db():
    """A join graph where FROM order is the wrong order.

    ``a ⋈ b`` on a 10-value key explodes (40·40/10 = 160 rows);
    starting from the selective ``c`` side keeps every intermediate
    small.  FROM order lists ``a, b, c`` so the greedy chain pays the
    explosion and the cost-based search must not.
    """
    db = Database()
    db.create_table("a", ("id", "k"))
    db.create_table("b", ("id", "k", "m"))
    db.create_table("c", ("id", "m"))
    db.insert_many("a", ({"id": i, "k": i % 10} for i in range(40)))
    db.insert_many("b", ({"id": i, "k": i % 10, "m": i}
                         for i in range(40)))
    db.insert_many("c", ({"id": i, "m": i} for i in range(12)))
    return db


SKEW_SQL = ("SELECT a.id, b.id, c.id FROM a, b, c "
            "WHERE a.k = b.k AND b.m = c.m AND c.id = 3")


class TestJoinOrderSearch:
    def test_reorders_and_restores(self, skew_db):
        text = skew_db.explain(SKEW_SQL)
        assert "Restore(a, b, c)" in text
        assert text.count("HashJoin") == 2

    def test_greedy_mode_keeps_from_order(self, skew_db):
        greedy = skew_db.view(ExecutorOptions(cost_based=False))
        text = greedy.explain(SKEW_SQL)
        assert "Restore" not in text
        assert "est_rows" not in text and "cost=" not in text

    def test_rows_columns_stats_identical_across_modes(self, skew_db):
        cost = skew_db.execute(SKEW_SQL)
        greedy = skew_db.view(
            ExecutorOptions(cost_based=False)).execute(SKEW_SQL)
        seed = skew_db.view(
            ExecutorOptions(planner=False)).execute(SKEW_SQL)
        for other in (greedy, seed):
            assert list(cost.rows) == list(other.rows)
            assert cost.columns == other.columns
        # Same join strategies -> same engine statistics.
        assert cost.stats.hash_joins == greedy.stats.hash_joins
        assert cost.stats.rows_scanned == greedy.stats.rows_scanned
        assert cost.stats.nested_loop_joins == \
            greedy.stats.nested_loop_joins

    def test_reordered_plan_does_less_work(self, skew_db):
        from repro.sql.parser import parse
        from repro.sql.plan import plan_select
        from repro.sql.executor import ExecutionStats

        def peak_join_rows(options):
            plan = plan_select(parse(SKEW_SQL), skew_db.catalog, options)
            plan.execute(skew_db.executor, {}, ExecutionStats())

            def walk(op):
                out = [op]
                for child in op.children:
                    out.extend(walk(child))
                return out

            return max(op.rows_out or 0 for op in walk(plan.root)
                       if "Join" in op.name)

        from repro.sql.plan import OptimizerOptions

        cost_peak = peak_join_rows(OptimizerOptions())
        greedy_peak = peak_join_rows(
            OptimizerOptions(cost_based=False))
        assert cost_peak * 10 <= greedy_peak  # 16 vs 160 intermediates

    def test_cost_tie_keeps_from_order(self):
        db = Database()
        db.create_table("x", ("id", "k"))
        db.create_table("y", ("id", "k"))
        db.insert_many("x", ({"id": i, "k": i % 3} for i in range(9)))
        db.insert_many("y", ({"id": i, "k": i % 3} for i in range(9)))
        text = db.explain("SELECT * FROM x, y WHERE x.k = y.k")
        assert "Restore" not in text


class TestOrderSensitiveShapesUnderReorder:
    """Everything that observes row order must see FROM order."""

    def test_star_expansion_column_order(self, skew_db):
        cost = skew_db.execute(SKEW_SQL.replace("a.id, b.id, c.id", "*"))
        seed = skew_db.view(ExecutorOptions(planner=False)).execute(
            SKEW_SQL.replace("a.id, b.id, c.id", "*"))
        assert cost.columns == seed.columns
        assert list(cost.rows) == list(seed.rows)

    def test_group_first_encounter_order(self, skew_db):
        sql = ("SELECT a.k, COUNT(*) AS n FROM a, b, c "
               "WHERE a.k = b.k AND b.m = c.m GROUP BY a.k")
        grouped = skew_db.execute(sql)
        serial_keys = [row["k"] for row in grouped.rows]
        # First-encounter order over the FROM-order enumeration is
        # a's storage order of first appearance: 0, 1, 2, ...
        assert serial_keys == sorted(serial_keys)

    def test_order_by_and_limit(self, skew_db):
        sql = SKEW_SQL + " ORDER BY b.id DESC LIMIT 5"
        cost = skew_db.execute(sql)
        seed = skew_db.view(ExecutorOptions(planner=False)).execute(sql)
        assert list(cost.rows) == list(seed.rows)

    def test_parallel_over_reordered_chain(self, skew_db):
        for k in (2, 4):
            par = skew_db.view(ExecutorOptions(parallel=k))
            assert list(par.execute(SKEW_SQL).rows) == \
                list(skew_db.execute(SKEW_SQL).rows), k


class TestCostDrivenAccessPaths:
    def test_picks_most_selective_index(self):
        db = Database()
        db.create_table("t", ("id", "coarse", "fine"))
        db.create_index("t", "coarse")
        db.create_index("t", "fine")
        db.insert_many("t", ({"id": i, "coarse": i % 2, "fine": i % 50}
                             for i in range(100)))
        # Greedy takes the first indexable conjunct (coarse); the cost
        # rule prefers the smaller bucket (fine, ndv 50 vs 2).
        sql = "SELECT t0.id FROM t t0 WHERE t0.coarse = 1 AND t0.fine = 3"
        assert "IndexScan(t AS t0, fine = 3)" in db.explain(sql)
        greedy = db.view(ExecutorOptions(cost_based=False))
        assert "IndexScan(t AS t0, coarse = 1)" in greedy.explain(sql)
        assert list(db.execute(sql).rows) == \
            list(greedy.execute(sql).rows)

    def test_estimates_on_every_line(self, skew_db):
        text = skew_db.explain(SKEW_SQL, analyze=True)
        for line in text.splitlines():
            assert "est_rows=" in line and "cost=" in line, line


class TestAmbiguousBareColumnsVetoReorder:
    """The executor resolves bare columns by env insertion order (the
    join-chain order), which Restore cannot repair — so the planner
    must keep FROM order whenever a bare reference could resolve
    against more than one source."""

    @pytest.fixture(scope="class")
    def amb_db(self):
        db = Database()
        db.create_table("a", ("id", "k", "x"))
        db.create_table("b", ("id", "k"))
        db.create_table("c", ("id", "x"))
        db.insert_many("a", ({"id": i, "k": i % 2, "x": 1000 + i}
                             for i in range(6)))
        db.insert_many("b", ({"id": i, "k": i % 2} for i in range(6)))
        db.insert_many("c", ({"id": i, "x": i} for i in range(2)))
        return db

    AMB_SQL = ("SELECT x FROM a, b, c "
               "WHERE a.k = b.k AND b.id = c.id")

    def test_ambiguous_bare_select_item(self, amb_db):
        # The reorder-tempting layout (c is tiny and selective) must
        # not reorder: bare `x` lives in both a and c.
        text = amb_db.explain(self.AMB_SQL)
        assert "Restore" not in text
        cost = amb_db.execute(self.AMB_SQL)
        for options in (ExecutorOptions(cost_based=False),
                        ExecutorOptions(planner=False)):
            other = amb_db.view(options).execute(self.AMB_SQL)
            assert list(cost.rows) == list(other.rows)
            assert cost.columns == other.columns

    def test_bare_rowid_vetoes(self, amb_db):
        sql = ("SELECT _rowid FROM a, b, c "
               "WHERE a.k = b.k AND b.id = c.id")
        assert "Restore" not in amb_db.explain(sql)
        seed = amb_db.view(ExecutorOptions(planner=False)).execute(sql)
        assert list(amb_db.execute(sql).rows) == list(seed.rows)

    def test_unambiguous_bare_column_still_reorders(self, amb_db):
        # Bare `k` is exposed by a and b -> ambiguous -> veto; but a
        # column unique to one source keeps the search enabled.
        db = Database()
        db.create_table("a", ("id", "k", "only_a"))
        db.create_table("b", ("id", "k", "m"))
        db.create_table("c", ("id", "m"))
        db.insert_many("a", ({"id": i, "k": i % 10, "only_a": i}
                             for i in range(40)))
        db.insert_many("b", ({"id": i, "k": i % 10, "m": i}
                             for i in range(40)))
        db.insert_many("c", ({"id": i, "m": i} for i in range(12)))
        sql = ("SELECT only_a FROM a, b, c "
               "WHERE a.k = b.k AND b.m = c.m AND c.id = 3")
        assert "Restore(a, b, c)" in db.explain(sql)
        seed = db.view(ExecutorOptions(planner=False)).execute(sql)
        assert list(db.execute(sql).rows) == list(seed.rows)
