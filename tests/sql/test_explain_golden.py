"""Golden-string tests for EXPLAIN output.

The plans come from :mod:`repro.sql.plan.examples` — the same fixtures
``docs/explain.md`` embeds and ``tools/check_docs.py`` re-renders — so
a plan-shape change fails here with a readable diff *and* flags every
doc snippet that needs regenerating.  The golden strings are spelled
out verbatim: the point is to pin the exact rendering (tree glyphs,
``[rows=..., parts=...]`` annotations, partition counts), not just its
general shape.
"""

import os

import pytest

from repro.sql.plan.examples import render_examples

GOLDEN = {
    "index-scan": """\
Project(p.login)  [rows=1]
 └─ IndexScan(participant AS p, id = 4) filter=1  [rows=1]""",

    "join-chain": """\
Project(p.login, d.descriptor_name)  [rows=36]
 └─ HashJoin(d.role_id = r.role_id)  [rows=36]
     ├─ HashJoin(p.role_id = r.role_id)  [rows=9]
     │   ├─ FullScan(participant AS p)  [rows=9]
     │   └─ FullScan(role AS r)  [rows=3]
     └─ FullScan(role_descriptor AS d)  [rows=12]""",

    "group-by": """\
GroupBy(p.role_id) having COUNT(*) > 2  [rows=3]
 └─ FullScan(participant AS p)  [rows=9]""",

    "partitioned-join": """\
Project(p.login, r.role_name)  [rows=9]
 └─ Gather(partitions=2)  [rows=9]
     └─ PartitionedHashJoin(p.role_id = r.role_id)  [rows=9, parts=5|4]
         ├─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4]
         └─ FullScan(role AS r)  [rows=3]""",

    "partial-aggregate": """\
PartialAggregate(whole input, partitions=2)  [rows=1, parts=2|1]
 └─ PartitionedScan(FullScan(participant AS p) filter=1, partitions=2)  [rows=3, parts=2|1]""",

    "partial-group-by": """\
PartialGroupBy(p.role_id, partitions=2)  [rows=3, parts=3|3]
 └─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4]""",

    "avg-fallback": """\
Aggregate(whole input)
 └─ Gather(partitions=2)
     └─ PartitionedScan(FullScan(participant AS p), partitions=2)""",
}


@pytest.fixture(scope="module")
def rendered():
    return {ex.slug: ex for ex in render_examples()}


def test_every_example_has_a_golden(rendered):
    assert set(rendered) == set(GOLDEN)


@pytest.mark.parametrize("slug", sorted(GOLDEN))
def test_explain_golden(slug, rendered):
    assert rendered[slug].text == GOLDEN[slug], slug


def test_docs_embed_the_rendered_plans(rendered):
    """docs/explain.md must contain every fixture's SQL and plan
    verbatim (the in-repo half of ``tools/check_docs.py``)."""
    doc_path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "docs", "explain.md")
    with open(doc_path) as handle:
        document = handle.read()
    for ex in rendered.values():
        assert ex.sql in document, ex.slug
        assert ex.text in document, ex.slug
