"""Golden-string tests for EXPLAIN output.

The plans come from :mod:`repro.sql.plan.examples` — the same fixtures
``docs/explain.md`` embeds and ``tools/check_docs.py`` re-renders — so
a plan-shape change fails here with a readable diff *and* flags every
doc snippet that needs regenerating.  The golden strings are spelled
out verbatim: the point is to pin the exact rendering (tree glyphs,
``[rows=..., parts=...]`` annotations, the cost-based optimizer's
``est_rows=``/``cost=`` estimates, partition counts), not just its
general shape.

Two golden sets: ``GOLDEN`` pins the default (cost-based) planner,
``GREEDY_GOLDEN`` pins ``OptimizerOptions(cost_based=False)`` — the
pre-cost plan shapes, unchanged from PR 4, which the greedy mode must
keep reproducing exactly.
"""

import os

import pytest

from repro.sql.plan.examples import render_examples

GOLDEN = {
    "index-scan": """\
Project(p.login)  [rows=1, est_rows=0.3, cost=1]
 └─ IndexScan(participant AS p, id = 4) filter=1  [rows=1, est_rows=0.3, cost=1]""",

    "join-chain": """\
Project(p.login, d.descriptor_name)  [rows=36, est_rows=36, cost=69]
 └─ HashJoin(d.role_id = r.role_id)  [rows=36, est_rows=36, cost=69]
     ├─ HashJoin(p.role_id = r.role_id)  [rows=9, est_rows=9, cost=21]
     │   ├─ FullScan(participant AS p)  [rows=9, est_rows=9, cost=9]
     │   └─ FullScan(role AS r)  [rows=3, est_rows=3, cost=3]
     └─ FullScan(role_descriptor AS d)  [rows=12, est_rows=12, cost=12]""",

    "group-by": """\
GroupBy(p.role_id) having COUNT(*) > 2  [rows=3, est_rows=3, cost=12]
 └─ FullScan(participant AS p)  [rows=9, est_rows=9, cost=9]""",

    "partitioned-join": """\
Project(p.login, r.role_name)  [rows=9, est_rows=9, cost=21]
 └─ Gather(partitions=2)  [rows=9, est_rows=9, cost=21]
     └─ PartitionedHashJoin(p.role_id = r.role_id)  [rows=9, parts=5|4, est_rows=9, cost=21]
         ├─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4, est_rows=9, cost=9]
         └─ FullScan(role AS r)  [rows=3, est_rows=3, cost=3]""",

    "partial-aggregate": """\
PartialAggregate(whole input, partitions=2)  [rows=1, parts=2|1, est_rows=1, cost=10]
 └─ PartitionedScan(FullScan(participant AS p) filter=1, partitions=2)  [rows=3, parts=2|1, est_rows=3, cost=9]""",

    "partial-group-by": """\
PartialGroupBy(p.role_id, partitions=2)  [rows=3, parts=3|3, est_rows=3, cost=12]
 └─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4, est_rows=9, cost=9]""",

    "having-fallback": """\
GroupBy(p.role_id) having COUNT(*) > 2 AND COUNT(*) < 9  [est_rows=3, cost=12]
 └─ Gather(partitions=2)  [est_rows=9, cost=9]
     └─ PartitionedScan(FullScan(participant AS p), partitions=2)  [est_rows=9, cost=9]""",

    "cost-reorder": """\
Project(d.descriptor_name, p.login)  [rows=36, est_rows=36, cost=105]
 └─ Restore(d, r, p)  [rows=36, est_rows=36, cost=105]
     └─ HashJoin(d.role_id = r.role_id)  [rows=36, est_rows=36, cost=69]
         ├─ HashJoin(p.role_id = r.role_id)  [rows=9, est_rows=9, cost=21]
         │   ├─ FullScan(role AS r)  [rows=3, est_rows=3, cost=3]
         │   └─ FullScan(participant AS p)  [rows=9, est_rows=9, cost=9]
         └─ FullScan(role_descriptor AS d)  [rows=12, est_rows=12, cost=12]""",

    "merge-sort": """\
Limit(5)  [rows=5, est_rows=5, cost=19]
 └─ Project(p.login)  [rows=5, est_rows=5, cost=14]
     └─ GatherMerge(partitions=2, p.login DESC) top_k=5  [rows=5, est_rows=5, cost=14]
         └─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4, est_rows=9, cost=9]""",

    "having-pushdown": """\
GroupBy(p.role_id) having COUNT(*) > 2  [rows=2, est_rows=3, cost=12]
 └─ FullScan(participant AS p) filter=1  [rows=6, est_rows=9, cost=9]""",

    "vectorized-scan": """\
VecAggregate(whole input)  [rows=1, est_rows=1, cost=10]
 └─ VecScan(FullScan(participant AS p) filter=1, batch=4)  [rows=3, batches=2, est_rows=3, cost=9]""",
}

#: The pre-cost (PR 4) golden strings, verbatim: the greedy mode must
#: keep producing exactly these plans for the original fixtures.
GREEDY_GOLDEN = {
    "index-scan": """\
Project(p.login)  [rows=1]
 └─ IndexScan(participant AS p, id = 4) filter=1  [rows=1]""",

    "join-chain": """\
Project(p.login, d.descriptor_name)  [rows=36]
 └─ HashJoin(d.role_id = r.role_id)  [rows=36]
     ├─ HashJoin(p.role_id = r.role_id)  [rows=9]
     │   ├─ FullScan(participant AS p)  [rows=9]
     │   └─ FullScan(role AS r)  [rows=3]
     └─ FullScan(role_descriptor AS d)  [rows=12]""",

    "group-by": """\
GroupBy(p.role_id) having COUNT(*) > 2  [rows=3]
 └─ FullScan(participant AS p)  [rows=9]""",

    "partitioned-join": """\
Project(p.login, r.role_name)  [rows=9]
 └─ Gather(partitions=2)  [rows=9]
     └─ PartitionedHashJoin(p.role_id = r.role_id)  [rows=9, parts=5|4]
         ├─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4]
         └─ FullScan(role AS r)  [rows=3]""",

    "partial-aggregate": """\
PartialAggregate(whole input, partitions=2)  [rows=1, parts=2|1]
 └─ PartitionedScan(FullScan(participant AS p) filter=1, partitions=2)  [rows=3, parts=2|1]""",

    "partial-group-by": """\
PartialGroupBy(p.role_id, partitions=2)  [rows=3, parts=3|3]
 └─ PartitionedScan(FullScan(participant AS p), partitions=2)  [rows=9, parts=5|4]""",

    "having-fallback": """\
GroupBy(p.role_id) having COUNT(*) > 2 AND COUNT(*) < 9
 └─ Gather(partitions=2)
     └─ PartitionedScan(FullScan(participant AS p), partitions=2)""",

    # The reordering fixture in greedy mode: the plain FROM-order
    # chain, no Restore, no estimates.
    "cost-reorder": """\
Project(d.descriptor_name, p.login)  [rows=36]
 └─ HashJoin(p.role_id = r.role_id)  [rows=36]
     ├─ HashJoin(d.role_id = r.role_id)  [rows=12]
     │   ├─ FullScan(role_descriptor AS d)  [rows=12]
     │   └─ FullScan(role AS r)  [rows=3]
     └─ FullScan(participant AS p)  [rows=9]""",
}


@pytest.fixture(scope="module")
def rendered():
    return {ex.slug: ex for ex in render_examples()}


@pytest.fixture(scope="module")
def rendered_greedy():
    return {ex.slug: ex for ex in render_examples(cost_based=False)}


def test_every_example_has_a_golden(rendered):
    assert set(rendered) == set(GOLDEN)


@pytest.mark.parametrize("slug", sorted(GOLDEN))
def test_explain_golden(slug, rendered):
    assert rendered[slug].text == GOLDEN[slug], slug


@pytest.mark.parametrize("slug", sorted(GREEDY_GOLDEN))
def test_explain_golden_greedy_mode(slug, rendered_greedy):
    """``cost_based=False`` reproduces the pre-cost plans exactly."""
    assert rendered_greedy[slug].text == GREEDY_GOLDEN[slug], slug


def test_docs_embed_the_rendered_plans(rendered):
    """docs/explain.md must contain every fixture's SQL and plan
    verbatim (the in-repo half of ``tools/check_docs.py``)."""
    doc_path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "docs", "explain.md")
    with open(doc_path) as handle:
        document = handle.read()
    for ex in rendered.values():
        assert ex.sql in document, ex.slug
        assert ex.text in document, ex.slug
