"""Planner-vs-legacy outcome equivalence.

Two layers:

* a hand-written query battery over the application schemas, covering
  every operator combination the grammar admits (joins, index probes,
  IN subqueries, FROM subqueries, top-k, DISTINCT, aggregates);
* the full Fig. 13 + advanced corpus: every fragment QBS translates is
  executed against its populated application database under
  ``ExecutorOptions(planner=True)`` and ``planner=False``, asserting
  identical rows, columns and engine statistics (GROUP BY queries,
  which the seed pipeline cannot run, are checked planner-only against
  the original fragment elsewhere).
"""

import re

import pytest

from repro.corpus.schema import create_wilos_database, populate_wilos
from repro.sql.executor import ExecutorOptions


def _assert_identical(db, sql, params=None):
    planned = db.execute(sql, params)
    legacy = db.view(ExecutorOptions(planner=False)).execute(sql, params)
    assert list(planned.rows) == list(legacy.rows), sql
    assert planned.columns == legacy.columns, sql
    for field in ("rows_scanned", "index_probes", "hash_joins",
                  "nested_loop_joins", "index_scans", "full_scans"):
        assert getattr(planned.stats, field) == \
            getattr(legacy.stats, field), (sql, field)


@pytest.fixture(scope="module")
def wilos_db():
    db = create_wilos_database()
    populate_wilos(db, n_users=50, n_roles=8, unfinished_fraction=0.3)
    db.insert_many("process", (
        {"id": i, "process_name": "proc%d" % i, "manager_id": i % 4}
        for i in range(6)))
    db.insert_many("role_descriptor", (
        {"id": i, "role_id": i % 8, "process_id": i % 6,
         "descriptor_name": "rd%d" % i} for i in range(25)))
    return db


BATTERY = [
    ("SELECT * FROM participant", None),
    ("SELECT p.login FROM participant p WHERE p.id = 7", None),
    ("SELECT p.login FROM participant p WHERE p.id = :pid", {"pid": 3}),
    ("SELECT p.login FROM participant p WHERE p.is_manager = 1 "
     "AND p.role_id > 2", None),
    ("SELECT p.login, r.role_name FROM participant p, role r "
     "WHERE p.role_id = r.role_id", None),
    ("SELECT p.login, d.descriptor_name "
     "FROM participant p, role r, role_descriptor d "
     "WHERE p.role_id = r.role_id AND d.role_id = r.role_id", None),
    ("SELECT COUNT(*) FROM participant p, role r "
     "WHERE p.role_id = r.role_id AND p.is_manager = 1", None),
    ("SELECT p.login FROM participant p ORDER BY p.login DESC LIMIT 5",
     None),
    ("SELECT DISTINCT p.role_id FROM participant p ORDER BY p.role_id",
     None),
    ("SELECT x.login FROM (SELECT p.login, p.role_id FROM participant p "
     "WHERE p.role_id = 2) x", None),
    ("SELECT p.login FROM participant p WHERE p.role_id IN "
     "(SELECT r.role_id FROM role r WHERE r.role_name = 'role1')", None),
    ("SELECT COUNT(*) > 0 FROM participant p WHERE p.login = 'user3'",
     None),
    ("SELECT SUM(p.id), MAX(p.role_id), MIN(p.id), AVG(p.id) "
     "FROM participant p WHERE p.is_manager = 0", None),
    ("SELECT p.login FROM participant p, process pr", None),
    ("SELECT p.login FROM participant p ORDER BY p.role_id, "
     "p._rowid DESC LIMIT 7", None),
    # Whole-input aggregates ignore ORDER BY / LIMIT / DISTINCT in the
    # seed pipeline; the planned path must match that exactly.
    ("SELECT COUNT(*) FROM participant p ORDER BY p.login", None),
    ("SELECT COUNT(*) FROM participant p LIMIT 0", None),
    ("SELECT DISTINCT COUNT(*) FROM participant p LIMIT 0", None),
]


@pytest.mark.parametrize("case", range(len(BATTERY)))
def test_battery_equivalence(case, wilos_db):
    sql, params = BATTERY[case]
    _assert_identical(wilos_db, sql, params)


# -- full-corpus equivalence ---------------------------------------------------
# (corpus_sql / app_dbs are the session fixtures from conftest.py,
# shared with tests/sql/test_parallel_equivalence.py.)


def test_full_corpus_sql_equivalence(corpus_sql, app_dbs):
    assert len(corpus_sql) >= 40  # 33 Fig. 13 + 7 advanced
    checked = 0
    for fragment_id, app, sql in corpus_sql:
        db = app_dbs[app]
        params = {name: 1 for name in
                  set(re.findall(r":(\w+)", sql))}
        if "GROUP BY" in sql:
            # The seed pipeline has no GROUP BY; the grouped fragments
            # are checked against the original code in the corpus suite.
            db.execute(sql, params)
            continue
        _assert_identical(db, sql, params)
        checked += 1
    assert checked >= 39
