"""Chaos suite: the degradation ladder under deterministic faults.

Substrate failures inside a partition-parallel query — a forked child
crashing, a payload that will not unpickle, a hung partition — must
never change the answer: the ladder falls ``processes → threads →
serial`` and the degraded query stays row/column/stats-identical to
serial execution, with the fall visible in EXPLAIN ANALYZE and counted
in ``stats.degradations``.  Application errors and deadline expiry are
*not* absorbed: they propagate with their classification.
"""

import time

import pytest

from repro.service import faults
from repro.service.faults import (
    DeadlineExceeded,
    FaultPlan,
    WorkerCrash,
)
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions
from repro.sql.plan.parallel import run_tasks

# -- run_tasks ladder (no SQL involved) ----------------------------------------


def _tasks(n=3):
    return [lambda i=i: i * 10 for i in range(n)]


def test_threads_degrade_to_serial_on_injected_crash():
    plan = FaultPlan(faults={"part:1": faults.CRASH})
    falls = []
    with faults.injected(plan):
        results = run_tasks(_tasks(), backend="threads",
                            on_degrade=lambda f, t, e: falls.append((f, t)))
    assert results == [0, 10, 20]
    assert falls == [("threads", "serial")]


def test_processes_degrade_all_the_way_down():
    # faulty_attempts=2: the crash survives the first fallback too, so
    # the ladder must fall twice before the plan heals.
    plan = FaultPlan(faults={"part:1": faults.CRASH}, faulty_attempts=2)
    falls = []
    with faults.injected(plan):
        results = run_tasks(_tasks(), backend="processes",
                            on_degrade=lambda f, t, e: falls.append((f, t)))
    assert results == [0, 10, 20]
    assert falls == [("processes", "threads"), ("threads", "serial")]


def test_corrupt_payload_from_fork_child_degrades():
    # In a forked child the injection returns a CorruptResult, which
    # explodes on the parent's unpickle — transport corruption, not an
    # application error — so the ladder absorbs it.
    plan = FaultPlan(faults={"part:2": faults.CORRUPT_PAYLOAD})
    falls = []
    with faults.injected(plan):
        results = run_tasks(_tasks(), backend="processes",
                            on_degrade=lambda f, t, e:
                            falls.append(type(e).__name__))
    assert results == [0, 10, 20]
    assert falls and falls[0] in ("CorruptPayload", "WorkerCrash")


def test_poison_partition_exhausts_the_ladder():
    plan = FaultPlan(poison={"part:0": faults.CRASH})
    with faults.injected(plan):
        with pytest.raises(WorkerCrash):
            run_tasks(_tasks(), backend="threads")


def test_application_errors_are_not_absorbed():
    def boom():
        raise ValueError("application bug, not a substrate fault")

    falls = []
    with pytest.raises(ValueError, match="application bug"):
        run_tasks([lambda: 1, boom], backend="threads",
                  on_degrade=lambda f, t, e: falls.append(f))
    assert falls == []      # the ladder never moved


def test_hung_partition_surfaces_classified_deadline():
    from repro.service.faults import Deadline

    plan = FaultPlan(faults={"part:1": faults.HANG}, hang_seconds=30.0)
    start = time.perf_counter()
    with faults.injected(plan):
        with pytest.raises(DeadlineExceeded):
            run_tasks(_tasks(), backend="threads",
                      deadline=Deadline.after(0.3))
    assert time.perf_counter() - start < 10     # abandoned, not joined


def test_ladder_is_deterministic():
    plan = FaultPlan(faults={"part:1": faults.CRASH})
    runs = []
    for _ in range(2):
        falls = []
        with faults.injected(plan):
            results = run_tasks(_tasks(), backend="threads",
                                on_degrade=lambda f, t, e:
                                falls.append((f, t)))
        runs.append((results, falls))
    assert runs[0] == runs[1]


def test_fault_free_run_never_degrades():
    falls = []
    assert run_tasks(_tasks(), backend="threads",
                     on_degrade=lambda f, t, e: falls.append(f)) \
        == [0, 10, 20]
    assert falls == []


# -- whole queries under injected faults ---------------------------------------


def _stats_tuple(stats):
    return (stats.rows_scanned, stats.index_probes, stats.hash_joins,
            stats.nested_loop_joins, stats.index_scans, stats.full_scans)


@pytest.fixture(scope="module")
def chaos_db():
    db = Database()
    db.create_table("r", ("id", "a"))
    db.create_table("s", ("id", "b"))
    db.create_index("s", "b")
    db.insert_many("r", ({"id": i, "a": i % 5} for i in range(23)))
    db.insert_many("s", ({"id": i, "b": i % 5} for i in range(11)))
    return db


JOIN = ("SELECT t0.id, t1.id FROM r t0, s t1 WHERE t0.a = t1.b "
        "ORDER BY t0.id, t1.id")
GROUPED = ("SELECT t0.a, COUNT(*) AS n, SUM(t0.id) AS tot "
           "FROM r t0 GROUP BY t0.a ORDER BY n DESC")


def _assert_identical_to_serial(db, view, sql, expect_degraded=True):
    serial = db.execute(sql)
    result = view.execute(sql)
    assert list(result.rows) == list(serial.rows)
    assert result.columns == serial.columns
    assert _stats_tuple(result.stats) == _stats_tuple(serial.stats)
    assert serial.stats.degradations == 0
    if expect_degraded:
        assert result.stats.degradations >= 1
    else:
        assert result.stats.degradations == 0
    return result


def test_degraded_query_identical_to_serial_threads(chaos_db):
    plan = FaultPlan(faults={"part:1": faults.CRASH})
    view = chaos_db.view(ExecutorOptions(parallel=3))
    with faults.injected(plan):
        _assert_identical_to_serial(chaos_db, view, JOIN)
        text = view.explain(JOIN, analyze=True)
    assert "degraded=threads->serial" in text


def test_degraded_aggregation_identical_on_process_backend(chaos_db):
    plan = FaultPlan(faults={"part:0": faults.CRASH}, faulty_attempts=2)
    view = chaos_db.view(ExecutorOptions(parallel=3,
                                         parallel_backend="processes"))
    with faults.injected(plan):
        result = _assert_identical_to_serial(chaos_db, view, GROUPED)
        text = view.explain(GROUPED, analyze=True)
    assert result.stats.degradations >= 2       # fell two rungs
    assert "degraded=processes->threads->serial" in text


def test_corrupt_partition_payload_still_identical(chaos_db):
    plan = FaultPlan(faults={"part:2": faults.CORRUPT_PAYLOAD})
    view = chaos_db.view(ExecutorOptions(parallel=3,
                                         parallel_backend="processes"))
    with faults.injected(plan):
        _assert_identical_to_serial(chaos_db, view, GROUPED)


def test_fault_free_parallel_reports_no_degradation(chaos_db):
    view = chaos_db.view(ExecutorOptions(parallel=3))
    _assert_identical_to_serial(chaos_db, view, JOIN,
                                expect_degraded=False)
    text = view.explain(JOIN, analyze=True)
    assert "degraded=" not in text


def test_chaotic_query_is_deterministic(chaos_db):
    plan = FaultPlan(faults={"part:1": faults.CRASH})
    view = chaos_db.view(ExecutorOptions(parallel=3))
    snapshots = []
    for _ in range(2):
        with faults.injected(plan):
            result = view.execute(JOIN)
        snapshots.append((list(result.rows), result.columns,
                          _stats_tuple(result.stats),
                          result.stats.degradations))
    assert snapshots[0] == snapshots[1]


def test_executor_deadline_fails_hung_query_fast(chaos_db):
    plan = FaultPlan(faults={"part:1": faults.HANG}, hang_seconds=30.0)
    view = chaos_db.view(ExecutorOptions(parallel=3,
                                         deadline_seconds=0.3))
    start = time.perf_counter()
    with faults.injected(plan):
        with pytest.raises(DeadlineExceeded):
            view.execute(JOIN)
    assert time.perf_counter() - start < 10


def test_executor_deadline_is_invisible_when_met(chaos_db):
    view = chaos_db.view(ExecutorOptions(parallel=3,
                                         deadline_seconds=30.0))
    _assert_identical_to_serial(chaos_db, view, JOIN,
                                expect_degraded=False)
