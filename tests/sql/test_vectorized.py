"""Vectorized execution is invisible: ``ExecutorOptions(vectorized=True)``
is row/column/stats-identical to the serial row operators (and,
transitively, to the seed single-pass pipeline) for every batch size.

Layers:

* the planner-equivalence query battery under batch sizes spanning the
  degenerate (1) and the default (1024);
* batch-boundary sizes {1, 2, 1023, 1024, 1025, > table} over a table
  sized to straddle the default boundary, plus empty-table and
  single-batch fast paths;
* composition with ``parallel=K`` for K in {1, 2, 4} on both substrate
  backends;
* row-mode fallback shapes the batch compiler does not cover (IN
  subqueries, ``*`` inside COUNT) — lowered to the seed row operators,
  identical by construction;
* observability surfaces: ``batches=`` under EXPLAIN ANALYZE, trace
  span operator sets equal to the serial tree's, profile attachment;
* option validation;
* every corpus-inferred SQL statement.
"""

import re

import pytest

from repro.corpus.schema import create_wilos_database, populate_wilos
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions

from test_planner_equivalence import BATTERY

BOUNDARY_SIZES = (1, 2, 1023, 1024, 1025, 5000)


def _stats_tuple(stats):
    return (stats.rows_scanned, stats.index_probes, stats.hash_joins,
            stats.nested_loop_joins, stats.index_scans, stats.full_scans)


def _assert_vectorized_identical(db, sql, params=None,
                                 batch_sizes=(1024,), legacy=True):
    serial = db.execute(sql, params)
    references = [("serial planner", serial)]
    if legacy:
        references.append(
            ("seed pipeline",
             db.view(ExecutorOptions(planner=False)).execute(sql, params)))
    for size in batch_sizes:
        view = db.view(ExecutorOptions(vectorized=True, batch_size=size))
        result = view.execute(sql, params)
        for label, reference in references:
            assert list(result.rows) == list(reference.rows), \
                (sql, size, label)
            assert result.columns == reference.columns, (sql, size, label)
            assert _stats_tuple(result.stats) == \
                _stats_tuple(reference.stats), (sql, size, label)


@pytest.fixture(scope="module")
def wilos_db():
    db = create_wilos_database()
    populate_wilos(db, n_users=50, n_roles=8, unfinished_fraction=0.3)
    db.insert_many("process", (
        {"id": i, "process_name": "proc%d" % i, "manager_id": i % 4}
        for i in range(6)))
    db.insert_many("role_descriptor", (
        {"id": i, "role_id": i % 8, "process_id": i % 6,
         "descriptor_name": "rd%d" % i} for i in range(25)))
    return db


@pytest.mark.parametrize("case", range(len(BATTERY)))
def test_battery_vectorized_equivalence(case, wilos_db):
    sql, params = BATTERY[case]
    _assert_vectorized_identical(wilos_db, sql, params,
                                 batch_sizes=(1, 7, 1024))


# -- batch boundaries ----------------------------------------------------------


@pytest.fixture(scope="module")
def boundary_db():
    """1030 rows: every size in BOUNDARY_SIZES lands a partial batch,
    an exact split, or a single batch larger than the table."""
    db = Database()
    db.create_table("t", ("id", "k", "v"))
    db.insert_many("t", ({"id": i, "k": i % 9, "v": i % 31}
                         for i in range(1030)))
    db.create_table("empty", ("id", "v"))
    db.create_table("one", ("id", "v"))
    db.insert("one", {"id": 0, "v": 42})
    return db


BOUNDARY_QUERIES = (
    "SELECT t0.id FROM t t0 WHERE t0.v > 15",
    "SELECT t0.k, COUNT(*) AS n, SUM(t0.v) AS tot FROM t t0 "
    "GROUP BY t0.k ORDER BY n DESC, t0.k",
    "SELECT t0.id, t0.v FROM t t0 WHERE t0.k = 3 "
    "ORDER BY t0.v DESC, t0.id LIMIT 10",
    "SELECT COUNT(*) AS n, MIN(t0.v) AS lo, AVG(t0.v) AS m FROM t t0 "
    "WHERE t0.k > 1",
)


@pytest.mark.parametrize("sql", BOUNDARY_QUERIES)
def test_batch_boundary_sizes(boundary_db, sql):
    legacy = "GROUP BY" not in sql
    _assert_vectorized_identical(boundary_db, sql,
                                 batch_sizes=BOUNDARY_SIZES,
                                 legacy=legacy)


def test_empty_table_fast_path(boundary_db):
    _assert_vectorized_identical(boundary_db, "SELECT * FROM empty",
                                 batch_sizes=(1, 1024))
    _assert_vectorized_identical(
        boundary_db, "SELECT COUNT(*), SUM(t0.v) FROM empty t0",
        batch_sizes=(1, 1024))
    view = boundary_db.view(ExecutorOptions(vectorized=True))
    text = view.explain("SELECT * FROM empty", analyze=True)
    assert "batches=0" in text


def test_single_batch_fast_path(boundary_db):
    _assert_vectorized_identical(boundary_db,
                                 "SELECT t0.v FROM one t0 WHERE t0.v > 1",
                                 batch_sizes=(1024,))
    view = boundary_db.view(ExecutorOptions(vectorized=True))
    text = view.explain("SELECT t0.v FROM one t0", analyze=True)
    assert "batches=1" in text


# -- composition with parallel=K -----------------------------------------------


PARALLEL_QUERIES = (
    # Partial aggregation (the process-backend shape).
    "SELECT COUNT(*) AS n, SUM(t0.v) AS tot, MIN(t0.v) AS lo, "
    "MAX(t0.v) AS hi FROM t t0 WHERE t0.k > 1",
    # Grouped partial aggregation.
    "SELECT t0.k, COUNT(*) AS n FROM t t0 WHERE t0.v > 3 GROUP BY t0.k",
    # GatherMerge above the boundary.
    "SELECT t0.id FROM t t0 WHERE t0.v > 15 ORDER BY t0.v DESC, t0.id "
    "LIMIT 20",
    # AVG fallback: Gather + serial-side aggregation over batches.
    "SELECT AVG(t0.v) FROM t t0 WHERE t0.k > 1",
)


@pytest.mark.parametrize("backend", ["threads", "processes"])
@pytest.mark.parametrize("sql", PARALLEL_QUERIES)
def test_vectorized_composes_with_parallel(boundary_db, sql, backend):
    serial = boundary_db.execute(sql)
    for k in (1, 2, 4):
        view = boundary_db.view(ExecutorOptions(
            vectorized=True, parallel=k, parallel_backend=backend))
        result = view.execute(sql)
        assert list(result.rows) == list(serial.rows), (sql, k, backend)
        assert result.columns == serial.columns, (sql, k, backend)
        assert _stats_tuple(result.stats) == _stats_tuple(serial.stats), \
            (sql, k, backend)


def test_parallel_shapes_survive_vectorization(boundary_db):
    """The Gather shapes lower exactly as in row mode — partitions are
    the currency at the boundary and vectorize internally."""
    view = boundary_db.view(ExecutorOptions(vectorized=True, parallel=2))
    plan = view.explain(PARALLEL_QUERIES[0])
    assert "PartialAggregate(whole input, partitions=2)" in plan
    merge_plan = view.explain(PARALLEL_QUERIES[2])
    assert "GatherMerge(partitions=2" in merge_plan


# -- row-mode fallbacks --------------------------------------------------------


@pytest.fixture(scope="module")
def fallback_db():
    db = Database()
    db.create_table("r", ("id", "a"))
    db.create_table("s", ("id", "b"))
    db.insert_many("r", ({"id": i, "a": i % 5} for i in range(23)))
    db.insert_many("s", ({"id": i, "b": i % 5} for i in range(11)))
    return db


def test_in_subquery_falls_back_to_row_operators(fallback_db):
    sql = ("SELECT t0.id FROM r t0 WHERE t0.a IN "
           "(SELECT t1.b FROM s t1 WHERE t1.id = 1)")
    view = fallback_db.view(ExecutorOptions(vectorized=True))
    plan = view.explain(sql)
    assert "VecScan" not in plan     # predicate is not vectorizable
    _assert_vectorized_identical(fallback_db, sql, batch_sizes=(1, 1024))


def test_aggregate_comparison_expression_vectorizes(fallback_db):
    _assert_vectorized_identical(
        fallback_db,
        "SELECT COUNT(*) > 10 AS big, SUM(t0.id) AS tot FROM r t0 "
        "WHERE t0.a > 1",
        batch_sizes=(1, 1024))


def test_partial_coverage_mixes_vec_and_row_operators(fallback_db):
    """A vectorizable scan below a non-vectorizable aggregate: the
    scan stays batched, the aggregate falls back with an Unbatch
    adapter in between."""
    sql = ("SELECT COUNT(*) AS n FROM r t0 WHERE t0.a > 1 AND t0.id IN "
           "(SELECT t1.id FROM s t1)")
    _assert_vectorized_identical(fallback_db, sql, batch_sizes=(1, 7))


# -- observability surfaces ----------------------------------------------------


def test_explain_analyze_shows_batches(boundary_db):
    view = boundary_db.view(ExecutorOptions(vectorized=True,
                                            batch_size=256))
    text = view.explain("SELECT t0.id FROM t t0 WHERE t0.v > 15",
                        analyze=True)
    assert "VecScan" in text
    assert re.search(r"batches=\d+", text)
    # Static EXPLAIN has no observed counts.
    static = view.explain("SELECT t0.id FROM t t0 WHERE t0.v > 15")
    assert "batches=" not in static
    # The serial plan never prints batches=.
    serial = boundary_db.explain("SELECT t0.id FROM t t0 WHERE t0.v > 15",
                                 analyze=True)
    assert "batches=" not in serial
    assert "VecScan" not in serial


def test_trace_operator_set_matches_serial(boundary_db):
    sql = "SELECT t0.k, COUNT(*) AS n FROM t t0 GROUP BY t0.k"
    serial = boundary_db.execute(sql, trace=True)
    vec = boundary_db.view(
        ExecutorOptions(vectorized=True, batch_size=64)).execute(
            sql, trace=True)

    def ops(root):
        return {node.tags["op"] for _, node in root.walk()
                if "op" in node.tags}

    assert ops(vec.trace) == ops(serial.trace)
    # Vec spans carry per-operator cardinalities like row spans do.
    assert any(node.name == "VecScan" and "rows" in node.tags
               for _, node in vec.trace.walk())


def test_profile_attaches_under_vectorized(boundary_db):
    view = boundary_db.view(ExecutorOptions(vectorized=True))
    result = view.execute(
        "SELECT t0.k, COUNT(*) AS n FROM t t0 GROUP BY t0.k",
        profile=True)
    assert result.profile is not None


# -- option validation ---------------------------------------------------------


def test_vectorized_requires_planner():
    with pytest.raises(ValueError):
        Database(ExecutorOptions(planner=False, vectorized=True))


@pytest.mark.parametrize("bad", [0, -1, 2.5, True, "1024"])
def test_batch_size_must_be_a_positive_integer(bad):
    with pytest.raises(ValueError):
        Database(ExecutorOptions(batch_size=bad))


# -- full-corpus equivalence ---------------------------------------------------


def test_full_corpus_sql_vectorized(corpus_sql, app_dbs):
    assert len(corpus_sql) >= 40
    for fragment_id, app, sql in corpus_sql:
        db = app_dbs[app]
        params = {name: 1
                  for name in set(re.findall(r":(\w+)", sql))}
        legacy = "GROUP BY" not in sql
        _assert_vectorized_identical(db, sql, params,
                                     batch_sizes=(3, 1024),
                                     legacy=legacy)
