"""The query planner: plan shapes, optimizer rules, EXPLAIN output."""

import pytest

from repro.sql import Database, SQLExecutionError
from repro.sql.executor import ExecutorOptions
from repro.sql.parser import parse
from repro.sql.plan import build_logical, optimize, plan_select
from repro.sql.plan import logical as L
from repro.sql.plan.optimizer import OptimizerOptions


@pytest.fixture
def db():
    db = Database()
    db.create_table("participant", ("id", "login", "role_id"))
    db.create_table("role", ("role_id", "role_name"))
    db.create_table("role_descriptor", ("id", "role_id", "descriptor_name"))
    db.create_index("participant", "id")
    db.create_index("role", "role_id")
    db.insert_many("participant", [
        {"id": i, "login": "u%d" % i, "role_id": i % 3} for i in range(9)])
    db.insert_many("role", [
        {"role_id": i, "role_name": "r%d" % i} for i in range(3)])
    db.insert_many("role_descriptor", [
        {"id": i, "role_id": i % 3, "descriptor_name": "d%d" % i}
        for i in range(12)])
    return db


THREE_WAY = ("SELECT t0.login, t2.descriptor_name "
             "FROM participant t0, role t1, role_descriptor t2 "
             "WHERE t0.role_id = t1.role_id AND t2.role_id = t1.role_id")


class TestLogicalBuilder:
    def test_select_builds_canonical_tree(self):
        plan = build_logical(parse(
            "SELECT t0.id FROM participant t0 WHERE t0.id = 1 "
            "ORDER BY t0.id LIMIT 2"))
        assert isinstance(plan, L.Limit)
        project = plan.child
        assert isinstance(project, L.Project)
        sort = project.child
        assert isinstance(sort, L.Sort) and sort.top_k == 2
        assert isinstance(sort.child, L.Filter)
        assert isinstance(sort.child.child, L.Scan)

    def test_grouped_select_builds_aggregate(self):
        plan = build_logical(parse(
            "SELECT t0.role_id, COUNT(*) FROM participant t0 "
            "GROUP BY t0.role_id HAVING COUNT(*) > 1"))
        assert isinstance(plan, L.Aggregate)
        assert plan.group_by and plan.having is not None

    def test_distinct_keeps_full_sort(self):
        plan = build_logical(parse(
            "SELECT DISTINCT t0.id FROM participant t0 "
            "ORDER BY t0.id LIMIT 2"))
        # DISTINCT must see the whole ordered set: no top-k bound.
        node = plan
        while not isinstance(node, L.Sort):
            node = node.children()[0]
        assert node.top_k is None


class TestOptimizer:
    def test_pushdown_and_join_chain(self, db):
        plan = optimize(build_logical(parse(THREE_WAY)), db.catalog)
        project = plan
        assert isinstance(project, L.Project)
        outer = project.child
        assert isinstance(outer, L.Join) and outer.strategy == "hash"
        inner = outer.left
        assert isinstance(inner, L.Join) and inner.strategy == "hash"
        assert isinstance(inner.left, L.Scan)

    def test_index_scan_selected(self, db):
        plan = optimize(build_logical(parse(
            "SELECT * FROM participant t0 WHERE t0.id = 4")), db.catalog)
        scan = plan.child
        assert isinstance(scan, L.Scan)
        assert scan.index is not None and scan.index[0] == "id"
        # The probe consumes the predicate: no residual filter remains.
        assert "filter=" not in db.explain(
            "SELECT * FROM participant t0 WHERE t0.id = 4")

    def test_rules_can_be_disabled(self, db):
        options = OptimizerOptions(index_scans=False, hash_joins=False)
        plan = optimize(build_logical(parse(THREE_WAY)), db.catalog,
                        options)
        node = plan
        while not isinstance(node, L.Join):
            node = node.children()[0]
        assert node.strategy == "nested"
        scan_plan = optimize(build_logical(parse(
            "SELECT * FROM participant t0 WHERE t0.id = 4")), db.catalog,
            options)
        assert scan_plan.child.index is None


class TestExplain:
    def test_explain_shows_hash_join_chain_and_index_scans(self, db):
        text = db.explain(THREE_WAY)
        assert text.count("HashJoin") == 2
        assert "FullScan(participant AS t0)" in text
        indexed = db.explain("SELECT * FROM participant t0 "
                             "WHERE t0.id = 4")
        assert "IndexScan(participant AS t0, id = 4)" in indexed

    def test_explain_analyze_reports_per_operator_rows(self, db):
        text = db.explain(THREE_WAY, analyze=True)
        assert "[rows=" in text
        # Every operator line carries its cardinality.
        assert all("[rows=" in line for line in text.splitlines())

    def test_explain_nested_loop_when_no_connector(self, db):
        text = db.explain("SELECT COUNT(*) FROM participant t0, role t1")
        assert "NestedLoop" in text and "HashJoin" not in text


class TestExecutionModes:
    def test_planner_stats_match_legacy(self, db):
        planned = db.execute(THREE_WAY)
        legacy_db = Database(ExecutorOptions(planner=False))
        legacy_db.catalog = db.catalog
        legacy_db.executor.catalog = db.catalog
        legacy = legacy_db.execute(THREE_WAY)
        assert list(planned.rows) == list(legacy.rows)
        assert planned.columns == legacy.columns
        for field in ("rows_scanned", "index_probes", "hash_joins",
                      "nested_loop_joins", "index_scans", "full_scans"):
            assert getattr(planned.stats, field) == \
                getattr(legacy.stats, field), field

    def test_legacy_rejects_group_by(self, db):
        legacy_db = Database(ExecutorOptions(planner=False))
        legacy_db.catalog = db.catalog
        legacy_db.executor.catalog = db.catalog
        with pytest.raises(SQLExecutionError, match="planner"):
            legacy_db.execute("SELECT t0.role_id, COUNT(*) "
                              "FROM participant t0 GROUP BY t0.role_id")

    def test_hash_join_ablation_changes_plan_not_rows(self, db):
        ablated = Database(ExecutorOptions(hash_joins=False,
                                           index_scans=False))
        ablated.catalog = db.catalog
        ablated.executor.catalog = db.catalog
        assert list(ablated.execute(THREE_WAY).rows) == \
            list(db.execute(THREE_WAY).rows)
        assert "NestedLoop" in ablated.explain(THREE_WAY)


def test_plan_select_facade(db):
    from repro.sql.executor import ExecutionStats

    plan = plan_select(parse(THREE_WAY), db.catalog)
    result = plan.execute(db.executor, {}, ExecutionStats())
    assert result.columns == ("login", "descriptor_name")
