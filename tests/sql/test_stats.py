"""The statistics layer: incremental maintenance, ANALYZE, estimator
edge cases (empty tables, constant/all-distinct columns, stale stats,
degradation on unhashable/incomparable values) and the auto-partition
cost rule."""

import pytest

from repro.sql import Database, ExecutorOptions
from repro.sql.plan.optimizer import (
    AUTO_ROWS_PER_PARTITION,
    resolve_auto_partitions,
)
from repro.sql.stats import TableStats


@pytest.fixture
def db():
    db = Database()
    db.create_table("t", ("id", "c", "v"))
    # id all-distinct, c constant, v small-domain.
    db.insert_many("t", ({"id": i, "c": 7, "v": i % 4}
                         for i in range(20)))
    db.create_table("empty", ("id", "v"))
    return db


def test_incremental_maintenance_on_insert(db):
    stats = db.table("t").stats
    assert stats.row_count == 20
    assert stats.ndv("id") == 20          # all distinct
    assert stats.ndv("c") == 1            # constant column
    assert stats.ndv("v") == 4
    assert stats.bounds("id") == (0, 19)
    assert stats.bounds("c") == (7, 7)
    db.insert("t", {"id": 20, "c": 7, "v": 99})
    assert stats.row_count == 21
    assert stats.ndv("id") == 21
    assert stats.bounds("v") == (0, 99)


def test_empty_table_stats_and_planning(db):
    stats = db.table("empty").stats
    assert stats.row_count == 0
    assert stats.ndv("id") == 0
    assert stats.bounds("id") == (None, None)
    # Planning and executing against empty stats must not divide by
    # zero or reorder anything (all costs tie at zero -> FROM order).
    text = db.explain("SELECT * FROM empty e, t WHERE e.id = t.id")
    assert "Restore" not in text
    assert len(db.execute("SELECT * FROM empty e, t "
                          "WHERE e.id = t.id").rows) == 0


def test_rowid_stats_are_synthetic(db):
    stats = db.table("t").stats
    assert stats.ndv("_rowid") == 20
    assert stats.bounds("_rowid") == (0, 19)
    assert db.table("empty").stats.bounds("_rowid") == (None, None)


def test_stale_stats_after_bulk_bypass_and_analyze_refresh(db):
    table = db.table("t")
    # Rows smuggled in behind the insert API leave the stats stale.
    from repro.tor.values import Record

    for i in range(30):
        table.rows.append(Record({"id": 100 + i, "c": 8, "v": 5}))
    assert table.stats.row_count == 20          # stale
    db.analyze("t")
    assert table.stats.row_count == 50
    assert table.stats.ndv("c") == 2
    assert table.stats.bounds("id") == (0, 129)
    # Database.analyze() with no argument refreshes every table.
    table.rows.pop()
    db.analyze()
    assert table.stats.row_count == 49


def test_unhashable_values_degrade_ndv():
    stats = TableStats(("x",))
    stats.observe({"x": [1, 2]})
    stats.observe({"x": [3]})
    assert stats.ndv("x") is None       # unknown, not a wrong guess
    assert stats.row_count == 2


def test_incomparable_values_degrade_bounds():
    stats = TableStats(("x",))
    stats.observe({"x": 1})
    stats.observe({"x": "a"})
    assert stats.bounds("x") == (None, None)
    assert stats.ndv("x") == 2          # NDV still exact


def test_none_values_ignored_by_bounds_regardless_of_order():
    # SQL NULL semantics: None never enters min/max, and the result
    # must not depend on where in the load the None appears.
    for load in ((None, 5, 3), (5, None, 3), (3, 5, None)):
        stats = TableStats(("x",))
        for value in load:
            stats.observe({"x": value})
        assert stats.bounds("x") == (3, 5), load
        assert stats.ndv("x") == 3      # None still counts as a value


def test_estimates_survive_unknown_stats(db):
    # A FROM subquery has no table stats; estimation falls back to
    # defaults instead of failing.
    sql = ("SELECT x.id FROM (SELECT t0.id FROM t t0 WHERE t0.v = 1) x, "
           "t t1 WHERE x.id = t1.id")
    result = db.execute(sql)
    legacy = db.view(ExecutorOptions(planner=False)).execute(sql)
    assert list(result.rows) == list(legacy.rows)


def test_resolve_auto_partitions_rule():
    cores = 8
    assert resolve_auto_partitions(0, cores) == 1
    assert resolve_auto_partitions(AUTO_ROWS_PER_PARTITION - 1,
                                   cores) == 1
    assert resolve_auto_partitions(AUTO_ROWS_PER_PARTITION * 3,
                                   cores) == 3
    # Capped by the usable cores.
    assert resolve_auto_partitions(AUTO_ROWS_PER_PARTITION * 100,
                                   cores) == cores
    assert resolve_auto_partitions(10 ** 9, 1) == 1


def test_parallel_auto_is_identity(db):
    auto = db.view(ExecutorOptions(parallel="auto"))
    for sql in ("SELECT t0.id FROM t t0 WHERE t0.v = 2",
                "SELECT COUNT(*), SUM(t0.id) FROM t t0",
                "SELECT t0.v, COUNT(*) AS n FROM t t0 GROUP BY t0.v"):
        assert list(auto.execute(sql).rows) == \
            list(db.execute(sql).rows), sql


def test_parallel_auto_fans_out_large_scans(monkeypatch):
    import repro.sql.plan.optimizer as O

    db = Database()
    db.create_table("big", ("id", "g"))
    db.insert_many("big", ({"id": i, "g": i % 5}
                           for i in range(AUTO_ROWS_PER_PARTITION * 4)))
    monkeypatch.setattr(O, "usable_cores", lambda: 4)
    auto = db.view(ExecutorOptions(parallel="auto"))
    sql = "SELECT COUNT(*) AS n FROM big t0"
    assert "partitions=4" in auto.explain(sql)
    assert auto.execute(sql).scalar() == db.execute(sql).scalar()


def test_parallel_auto_requires_planner():
    with pytest.raises(ValueError):
        Database(ExecutorOptions(planner=False, parallel="auto"))
    with pytest.raises(ValueError):
        Database(ExecutorOptions(parallel="nope"))
