"""Partition-parallel execution is invisible: K-way plans are
row/column/stats-identical to the serial planner (and, transitively,
to the seed single-pass pipeline) for every K.

Three layers:

* the planner-equivalence query battery, re-run under
  ``ExecutorOptions(parallel=K)`` for K in {1, 2, 4} against both the
  serial planner and the seed pipeline;
* targeted shapes: grouped partial aggregation (threads, the
  fork-based process backend *and* the persistent worker pool),
  combinable whole-input aggregates — including AVG, whose
  ``(total, count)`` partials combine to a float-bitwise-identical
  mean — the AND-HAVING fallback to Gather + serial aggregation,
  empty tables, and K larger than the row count;
* every corpus-inferred SQL statement, executed at K=4 (and again
  through the worker pool at K=2);
* the pool's table cache: a warm pool re-ships zero rows for an
  unchanged catalog, and a catalog mutation invalidates the digest.
"""

import re
import struct

import pytest

from repro.corpus.schema import create_wilos_database, populate_wilos
from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions

from test_planner_equivalence import BATTERY

PARTITION_COUNTS = (1, 2, 4)


def _stats_tuple(stats):
    return (stats.rows_scanned, stats.index_probes, stats.hash_joins,
            stats.nested_loop_joins, stats.index_scans, stats.full_scans)


def _assert_parallel_identical(db, sql, params=None,
                               partitions=PARTITION_COUNTS,
                               backend="threads", legacy=True):
    serial = db.execute(sql, params)
    references = [("serial planner", serial)]
    if legacy:
        references.append(
            ("seed pipeline",
             db.view(ExecutorOptions(planner=False)).execute(sql, params)))
    for k in partitions:
        view = db.view(ExecutorOptions(parallel=k,
                                       parallel_backend=backend))
        result = view.execute(sql, params)
        for label, reference in references:
            assert list(result.rows) == list(reference.rows), \
                (sql, k, backend, label)
            assert result.columns == reference.columns, (sql, k, label)
            assert _stats_tuple(result.stats) == \
                _stats_tuple(reference.stats), (sql, k, backend, label)


@pytest.fixture(scope="module")
def wilos_db():
    db = create_wilos_database()
    populate_wilos(db, n_users=50, n_roles=8, unfinished_fraction=0.3)
    db.insert_many("process", (
        {"id": i, "process_name": "proc%d" % i, "manager_id": i % 4}
        for i in range(6)))
    db.insert_many("role_descriptor", (
        {"id": i, "role_id": i % 8, "process_id": i % 6,
         "descriptor_name": "rd%d" % i} for i in range(25)))
    return db


@pytest.mark.parametrize("case", range(len(BATTERY)))
def test_battery_parallel_equivalence(case, wilos_db):
    sql, params = BATTERY[case]
    _assert_parallel_identical(wilos_db, sql, params)


@pytest.mark.parametrize("case", range(len(BATTERY)))
def test_battery_pool_equivalence(case, wilos_db):
    """The whole battery again, dispatched to the persistent worker
    pool — same rows, columns, and stats as the serial planner."""
    sql, params = BATTERY[case]
    _assert_parallel_identical(wilos_db, sql, params, partitions=(2,),
                               backend="pool")


# -- targeted shapes -----------------------------------------------------------


@pytest.fixture(scope="module")
def small_db():
    db = Database()
    db.create_table("r", ("id", "a"))
    db.create_table("s", ("id", "b"))
    db.create_index("s", "b")
    db.insert_many("r", ({"id": i, "a": i % 5} for i in range(23)))
    db.insert_many("s", ({"id": i, "b": i % 5} for i in range(11)))
    db.create_table("empty", ("id", "v"))
    return db


GROUPED = ("SELECT t0.a, COUNT(*) AS n, SUM(t0.id) AS tot, "
           "MIN(t0.id) AS lo, MAX(t0.id) AS hi "
           "FROM r t0 GROUP BY t0.a HAVING COUNT(*) > 2 ORDER BY n DESC")
WHOLE = ("SELECT COUNT(*) AS n, SUM(t0.id) AS tot, MIN(t0.id) AS lo, "
         "MAX(t0.id) AS hi FROM r t0, s t1 "
         "WHERE t0.a = t1.b AND t0.id > 2")


@pytest.mark.parametrize("backend", ["threads", "processes", "pool"])
def test_partial_aggregation_backends(small_db, backend):
    # GROUP BY only exists in the planner, so compare against the
    # serial planner alone.
    _assert_parallel_identical(small_db, GROUPED, backend=backend,
                               legacy=False)
    _assert_parallel_identical(small_db, WHOLE, backend=backend)


def test_partial_aggregation_lowering(small_db):
    view = small_db.view(ExecutorOptions(parallel=3))
    grouped_plan = view.explain(GROUPED)
    assert "PartialGroupBy(t0.a, partitions=3)" in grouped_plan
    whole_plan = view.explain(WHOLE)
    assert "PartialAggregate(whole input, partitions=3)" in whole_plan
    assert "Gather" not in whole_plan


@pytest.mark.parametrize("sql", [
    # AND short-circuits in HAVING; serial fallback.
    "SELECT t0.a, COUNT(*) AS n FROM r t0 GROUP BY t0.a "
    "HAVING COUNT(*) > 1 AND COUNT(*) < 5",
])
def test_non_combinable_aggregates_fall_back(small_db, sql):
    view = small_db.view(ExecutorOptions(parallel=3))
    plan = view.explain(sql)
    assert "Gather(partitions=3)" in plan
    assert "Partial" not in plan.replace("Partitioned", "")
    _assert_parallel_identical(small_db, sql, legacy=False)


AVG_GROUPED = ("SELECT t0.a, AVG(t0.id) AS m, COUNT(*) AS n FROM r t0 "
               "GROUP BY t0.a ORDER BY t0.a")
AVG_WHOLE = "SELECT AVG(t0.id) AS m FROM r t0 WHERE t0.id > 2"


def test_avg_lowers_to_partials(small_db):
    """AVG no longer forces the Gather fallback: its partial state is
    an exact ``(total, count)`` pair, so it combines like SUM/COUNT."""
    view = small_db.view(ExecutorOptions(parallel=3))
    assert "PartialAggregate" in view.explain(AVG_WHOLE)
    assert "PartialGroupBy" in view.explain(AVG_GROUPED)


@pytest.mark.parametrize("backend", ["threads", "processes", "pool"])
def test_avg_combines_bitwise_identical(small_db, backend):
    """The combined mean is float-*bitwise* identical to the serial
    fold on every backend, not merely approximately equal."""
    for sql in (AVG_GROUPED, AVG_WHOLE):
        serial = list(small_db.execute(sql).rows)
        for k in (2, 4):
            view = small_db.view(
                ExecutorOptions(parallel=k, parallel_backend=backend))
            got = list(view.execute(sql).rows)
            assert len(got) == len(serial), (sql, k)
            for mine, reference in zip(got, serial):
                for value, expected in zip(mine, reference):
                    if isinstance(expected, float):
                        assert struct.pack("<d", value) == \
                            struct.pack("<d", expected), (sql, k, backend)
                    else:
                        assert value == expected, (sql, k, backend)


@pytest.mark.parametrize("backend", ["threads", "processes", "pool"])
def test_nested_subquery_inside_partition(small_db, backend):
    """Per-row IN subqueries evaluated inside partition workers must
    execute with a *serial* nested plan: re-planning them parallel
    would build a substrate per probed row — and fork from inside a
    daemonic fork child on the process backend, which multiprocessing
    forbids."""
    in_agg = ("SELECT COUNT(*) AS n FROM r t0 WHERE t0.a IN "
              "(SELECT t1.b FROM s t1 WHERE t1.id = 1)")
    _assert_parallel_identical(small_db, in_agg, backend=backend)
    in_plain = ("SELECT t0.id FROM r t0 WHERE t0.a IN "
                "(SELECT t1.b FROM s t1 WHERE t1.id = 1)")
    _assert_parallel_identical(small_db, in_plain, backend=backend)


ORDERED = ("SELECT t0.id, t0.a FROM r t0, s t1 WHERE t0.a = t1.b "
           "ORDER BY t0.a DESC, t0.id")


def test_parallel_order_by_merges(small_db):
    """ORDER BY above the partition boundary runs as per-partition
    sorts + a k-way heap merge (GatherMerge), pinned identical to the
    serial sort — including tie order (t0.a has heavy duplicates)."""
    view = small_db.view(ExecutorOptions(parallel=3))
    plan = view.explain(ORDERED)
    assert "GatherMerge(partitions=3, t0.a DESC, t0.id)" in plan
    assert "Gather(" not in plan
    _assert_parallel_identical(small_db, ORDERED)


def test_parallel_order_by_top_k(small_db):
    sql = ORDERED + " LIMIT 4"
    view = small_db.view(ExecutorOptions(parallel=3))
    assert "top_k=4" in view.explain(sql)
    _assert_parallel_identical(small_db, sql, partitions=(2, 3, 64))


def test_parallel_sort_toggle_falls_back_to_gather(small_db):
    view = small_db.view(ExecutorOptions(parallel=3,
                                         parallel_sort=False))
    plan = view.explain(ORDERED)
    assert "GatherMerge" not in plan
    assert "Gather(partitions=3)" in plan and "Sort(" in plan
    result = view.execute(ORDERED)
    assert list(result.rows) == list(small_db.execute(ORDERED).rows)


def test_more_partitions_than_rows(small_db):
    _assert_parallel_identical(
        small_db, "SELECT t0.id FROM r t0 WHERE t0.a = 1",
        partitions=(4, 64))


def test_empty_table(small_db):
    _assert_parallel_identical(small_db, "SELECT * FROM empty")
    _assert_parallel_identical(
        small_db,
        "SELECT COUNT(*), SUM(t0.v) FROM empty t0", partitions=(2, 4))


def test_parallel_requires_planner():
    with pytest.raises(ValueError):
        Database(ExecutorOptions(planner=False, parallel=2))
    with pytest.raises(ValueError):
        Database(ExecutorOptions(parallel=0))


def test_partition_counts_in_analyze(small_db):
    view = small_db.view(ExecutorOptions(parallel=2))
    text = view.explain(
        "SELECT t0.id, t1.id FROM r t0, s t1 WHERE t0.a = t1.b",
        analyze=True)
    assert "Gather(partitions=2)" in text
    assert "parts=" in text
    # Per-partition counts sum to the operator's rows_out.
    for line in text.splitlines():
        match = re.search(r"\[rows=(\d+), parts=([\d|]+)\]", line)
        if match:
            total, parts = match.groups()
            assert sum(int(p) for p in parts.split("|")) == int(total)


# -- full-corpus equivalence ---------------------------------------------------


def test_full_corpus_sql_parallel(corpus_sql, app_dbs):
    assert len(corpus_sql) >= 40
    for fragment_id, app, sql in corpus_sql:
        db = app_dbs[app]
        params = {name: 1
                  for name in set(re.findall(r":(\w+)", sql))}
        legacy = "GROUP BY" not in sql
        _assert_parallel_identical(db, sql, params, partitions=(4,),
                                   legacy=legacy)


def test_full_corpus_sql_pool(corpus_sql, app_dbs):
    """Every corpus statement again through the worker pool; the warm
    pool serves repeated catalogs from its table cache."""
    for fragment_id, app, sql in corpus_sql:
        db = app_dbs[app]
        params = {name: 1
                  for name in set(re.findall(r":(\w+)", sql))}
        legacy = "GROUP BY" not in sql
        _assert_parallel_identical(db, sql, params, partitions=(2,),
                                   backend="pool", legacy=legacy)


# -- pool table cache ----------------------------------------------------------


def test_pool_reships_nothing_when_catalog_unchanged(small_db):
    """A warm pool sends only plan fragments: repeated queries over an
    unchanged catalog ship zero table rows (the cache-hit metric grows,
    the rows-shipped metric does not)."""
    from repro.service import pool as pool_mod
    view = small_db.view(ExecutorOptions(parallel=2,
                                         parallel_backend="pool"))
    sql = "SELECT t0.id, t1.id FROM r t0, s t1 WHERE t0.a = t1.b"
    view.execute(sql)  # cold: ships whatever isn't cached yet
    shipped_cold = pool_mod._ROWS_SHIPPED.total()
    hits_cold = pool_mod._CACHE_HITS.total()
    for _ in range(3):
        view.execute(sql)
    assert pool_mod._ROWS_SHIPPED.total() == shipped_cold
    assert pool_mod._CACHE_HITS.total() > hits_cold


def test_pool_reships_after_catalog_mutation(small_db):
    """An insert bumps the table's content digest, so the next pool
    query re-ships that table (and only then caches the new version)."""
    from repro.service import pool as pool_mod
    db = Database()
    db.create_table("m", ("id", "v"))
    db.insert_many("m", ({"id": i, "v": i % 3} for i in range(10)))
    view = db.view(ExecutorOptions(parallel=2, parallel_backend="pool"))
    sql = "SELECT t0.v, COUNT(*) AS n FROM m t0 GROUP BY t0.v"
    view.execute(sql)
    warm = pool_mod._ROWS_SHIPPED.total()
    view.execute(sql)
    assert pool_mod._ROWS_SHIPPED.total() == warm  # cached
    db.insert_many("m", ({"id": 100 + i, "v": i} for i in range(2)))
    result = view.execute(sql)
    assert pool_mod._ROWS_SHIPPED.total() > warm  # re-shipped
    assert list(result.rows) == list(db.execute(sql).rows)
