"""Shared fixtures for the SQL engine suites.

The corpus fixtures are session-scoped because running every fragment
through QBS is the expensive part; the planner- and parallel-
equivalence suites both iterate the same inferred SQL statements.
"""

import pytest

from repro.corpus import ALL_FRAGMENTS, run_fragment_through_qbs
from repro.corpus.advanced import create_advanced_database
from repro.corpus.schema import (
    create_itracker_database,
    create_wilos_database,
    populate_itracker,
    populate_wilos,
)


@pytest.fixture(scope="session")
def corpus_sql():
    """Every SQL statement QBS infers over the whole corpus."""
    out = []
    for cf in ALL_FRAGMENTS:
        result = run_fragment_through_qbs(cf)
        if result.translated:
            out.append((cf.fragment_id, cf.app, result.sql.sql))
    return out


@pytest.fixture(scope="session")
def app_dbs():
    """Populated application databases, one per corpus app."""
    wilos = create_wilos_database()
    populate_wilos(db=wilos, n_users=40, n_roles=8)
    wilos.insert_many("workproduct", (
        {"id": i, "workproduct_name": "wp%d" % i, "state": i % 2,
         "project_id": i % 4} for i in range(16)))
    wilos.insert_many("workproduct_descriptor", (
        {"id": i, "workproduct_id": i % 20, "process_id": i % 5,
         "state": i % 2} for i in range(24)))
    wilos.insert_many("role_descriptor", (
        {"id": i, "role_id": i % 8, "process_id": i % 5,
         "descriptor_name": "rd%d" % i} for i in range(20)))
    wilos.insert_many("process", (
        {"id": i, "process_name": "proc%d" % i, "manager_id": i % 3}
        for i in range(5)))
    itracker = create_itracker_database()
    populate_itracker(itracker, n_issues=60)
    advanced = create_advanced_database()
    advanced.insert_many("r", ({"id": i, "a": i % 6} for i in range(30)))
    advanced.insert_many("s", ({"id": i, "b": i % 6} for i in range(20)))
    advanced.insert_many("t", ({"id": i} for i in range(25)))
    advanced.insert_many("u", ({"id": i, "c": i % 8} for i in range(15)))
    return {"wilos": wilos, "itracker": itracker, "advanced": advanced}
