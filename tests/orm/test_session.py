"""Unit tests for the ORM session: hydration, lazy/eager associations."""

import pytest

from repro.orm import Association, EntityType, Session
from repro.orm.mapping import MappingRegistry
from repro.sql.database import Database


@pytest.fixture
def setup():
    db = Database()
    db.create_table("users", ("id", "name", "role_id"))
    db.create_table("roles", ("role_id", "role_name"))
    db.create_index("roles", "role_id")
    db.insert_many("users", [
        {"id": 1, "name": "alice", "role_id": 10},
        {"id": 2, "name": "bob", "role_id": 20},
    ])
    db.insert_many("roles", [
        {"role_id": 10, "role_name": "admin"},
        {"role_id": 20, "role_name": "user"},
    ])
    registry = MappingRegistry()
    registry.register(EntityType(
        "User", "users", ("id", "name", "role_id"),
        associations=(Association("role", "Role", "role_id", "role_id"),)))
    registry.register(EntityType("Role", "roles",
                                 ("role_id", "role_name")))
    return db, registry


class TestLazyFetching:
    def test_load_all_hydrates_every_row(self, setup):
        db, registry = setup
        session = Session(db, registry, fetch="lazy")
        users = session.load_all("User")
        assert [u.name for u in users] == ["alice", "bob"]
        assert session.objects_hydrated == 2
        assert session.queries_issued == 1  # no association queries yet

    def test_association_resolved_on_first_access(self, setup):
        db, registry = setup
        session = Session(db, registry, fetch="lazy")
        users = session.load_all("User")
        assert session.queries_issued == 1
        assert users[0].role.role_name == "admin"
        assert session.queries_issued == 2
        # Cached on second access.
        assert users[0].role.role_name == "admin"
        assert session.queries_issued == 2


class TestEagerFetching:
    def test_associations_loaded_at_hydration(self, setup):
        db, registry = setup
        session = Session(db, registry, fetch="eager")
        users = session.load_all("User")
        queries_after_load = session.queries_issued
        assert queries_after_load == 1 + len(users)  # N+1 pattern
        assert users[1].role.role_name == "user"
        assert session.queries_issued == queries_after_load

    def test_eager_hydrates_more_objects_than_lazy(self, setup):
        db, registry = setup
        lazy = Session(db, registry, fetch="lazy")
        lazy.load_all("User")
        eager = Session(db, registry, fetch="eager")
        eager.load_all("User")
        assert eager.objects_hydrated > lazy.objects_hydrated


class TestEntity:
    def test_attribute_access_and_equality(self, setup):
        db, registry = setup
        session = Session(db, registry)
        users = session.load_all("User")
        assert users[0].id == 1
        assert users[0] == Session(db, registry).load_all("User")[0]
        with pytest.raises(AttributeError):
            users[0].nope
        with pytest.raises(AttributeError):
            users[0].id = 5

    def test_scalar_query_unwraps_single_column(self, setup):
        db, registry = setup
        session = Session(db, registry)
        ids = session.query("SELECT id FROM users AS t0 ORDER BY t0._rowid")
        assert ids == [1, 2]

    def test_invalid_fetch_mode(self, setup):
        db, registry = setup
        with pytest.raises(ValueError):
            Session(db, registry, fetch="psychic")
