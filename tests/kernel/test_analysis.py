"""Unit tests for kernel fragment structural analysis."""

from repro.kernel.analysis import analyze_loops, query_assignments, scope_vars
from repro.kernel.ast import Assign, Seq, VarInfo, While, Fragment
from repro.tor import ast as T

from tests.helpers import running_example_fragment, selection_fragment


class TestAnalyzeLoops:
    def test_selection_loop_facts(self):
        frag = selection_fragment()
        infos = analyze_loops(frag)
        assert set(infos) == {"loop0"}
        info = infos["loop0"]
        assert info.counter == "i"
        assert info.scanned == T.Var("users")
        assert info.depth == 0
        assert info.accumulators == ("result",)

    def test_nested_loops_facts(self):
        frag = running_example_fragment()
        infos = analyze_loops(frag)
        outer, inner = infos["loop0"], infos["loop1"]
        assert outer.counter == "i" and outer.scanned == T.Var("users")
        assert inner.counter == "j" and inner.scanned == T.Var("roles")
        assert inner.parent == "loop0"
        assert outer.inner_loops == ("loop1",)
        # j is an inner counter, not an accumulator of the outer loop.
        assert outer.accumulators == ("listUsers",)
        assert inner.accumulators == ("listUsers",)

    def test_non_canonical_guard_yields_no_counter(self):
        # while (get(r, i).id < 10) — the Sec 7.3 failing idiom.
        guard = T.BinOp("<",
                        T.FieldAccess(T.Get(T.Var("r"), T.Var("i")), "id"),
                        T.Const(10))
        loop = While(guard, Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
                     loop_id="loop0")
        frag = Fragment(body=loop, result_var="i",
                        locals={"i": VarInfo("scalar"),
                                "r": VarInfo("relation", ("id",))})
        info = analyze_loops(frag)["loop0"]
        assert info.counter is None
        assert info.scanned is None

    def test_non_unit_increment_rejected(self):
        guard = T.BinOp("<", T.Var("i"), T.Size(T.Var("r")))
        loop = While(guard, Assign("i", T.BinOp("+", T.Var("i"), T.Const(2))),
                     loop_id="loop0")
        frag = Fragment(body=loop, result_var="i",
                        locals={"i": VarInfo("scalar"),
                                "r": VarInfo("relation", ("id",))})
        assert analyze_loops(frag)["loop0"].counter is None


class TestScopeAndQueries:
    def test_scope_vars_cover_loop_locals(self):
        frag = running_example_fragment()
        loop = frag.loops()[0]
        names = scope_vars(frag, loop)
        assert set(names) >= {"listUsers", "users", "roles", "i", "j"}

    def test_query_assignments(self):
        frag = running_example_fragment()
        queries = query_assignments(frag)
        assert set(queries) == {"users", "roles"}
        assert queries["users"].table == "users"
