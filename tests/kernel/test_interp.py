"""Unit tests for the kernel-language interpreter."""

import pytest

from repro.kernel.ast import (
    Assert,
    Assign,
    Fragment,
    If,
    KernelValidationError,
    Seq,
    Skip,
    VarInfo,
    While,
    modified_vars,
    seq,
    validate_expression,
)
from repro.kernel.interp import ExecutionError, execute, run_fragment
from repro.tor import ast as T
from repro.tor.values import Record

from tests.helpers import (
    count_fragment,
    exists_fragment,
    running_example_fragment,
    sample_db,
    selection_fragment,
)


class TestBasicCommands:
    def test_skip_leaves_env(self):
        env = {"x": 1}
        assert execute(Skip(), env) == {"x": 1}

    def test_assign(self):
        env = execute(Assign("x", T.Const(5)), {})
        assert env["x"] == 5

    def test_seq_order(self):
        cmd = Seq((Assign("x", T.Const(1)),
                   Assign("x", T.BinOp("+", T.Var("x"), T.Const(2)))))
        assert execute(cmd, {})["x"] == 3

    def test_if_branches(self):
        cmd = If(T.BinOp(">", T.Var("x"), T.Const(0)),
                 Assign("sign", T.Const(1)), Assign("sign", T.Const(-1)))
        assert execute(cmd, {"x": 5})["sign"] == 1
        assert execute(cmd, {"x": -5})["sign"] == -1

    def test_while_counts(self):
        cmd = Seq((
            Assign("i", T.Const(0)),
            While(T.BinOp("<", T.Var("i"), T.Const(4)),
                  Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
                  loop_id="loop0"),
        ))
        assert execute(cmd, {})["i"] == 4

    def test_assert_pass_and_fail(self):
        execute(Assert(T.Const(True)), {})
        with pytest.raises(ExecutionError):
            execute(Assert(T.Const(False)), {})

    def test_fuel_exhaustion(self):
        cmd = While(T.Const(True), Skip(), loop_id="loop0")
        with pytest.raises(ExecutionError):
            execute(cmd, {}, fuel=100)

    def test_seq_smart_constructor(self):
        assert seq() == Skip()
        assert seq(Skip(), Skip()) == Skip()
        single = Assign("x", T.Const(1))
        assert seq(single) == single
        nested = seq(seq(single, single), single)
        assert len(nested.commands) == 3


class TestTraceHook:
    def test_trace_fires_at_loop_heads(self):
        states = []
        cmd = Seq((
            Assign("i", T.Const(0)),
            While(T.BinOp("<", T.Var("i"), T.Const(2)),
                  Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
                  loop_id="L"),
        ))
        execute(cmd, {}, trace=lambda lid, env: states.append((lid, env["i"])))
        # Fires at i=0, 1 and the final test at i=2.
        assert states == [("L", 0), ("L", 1), ("L", 2)]

    def test_trace_snapshots_are_isolated(self):
        snaps = []
        cmd = Seq((
            Assign("i", T.Const(0)),
            While(T.BinOp("<", T.Var("i"), T.Const(1)),
                  Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
                  loop_id="L"),
        ))
        execute(cmd, {}, trace=lambda lid, env: snaps.append(env))
        assert snaps[0]["i"] == 0  # not mutated by later iterations


class TestFragments:
    def test_running_example_joins(self):
        result = run_fragment(running_example_fragment(), db=sample_db())
        assert [u.name for u in result] == ["alice", "bob", "carol"]

    def test_running_example_no_matches(self):
        db = sample_db(roles=(Record(role_id=99, role_name="ghost"),))
        assert run_fragment(running_example_fragment(), db=db) == ()

    def test_selection_fragment(self):
        result = run_fragment(selection_fragment(), db=sample_db())
        assert [u.id for u in result] == [1, 3]

    def test_count_fragment(self):
        assert run_fragment(count_fragment(), db=sample_db()) == 2

    def test_exists_fragment_input_binding(self):
        frag = exists_fragment()
        assert run_fragment(frag, db=sample_db(), inputs={"wanted": 2}) is True
        assert run_fragment(frag, db=sample_db(), inputs={"wanted": 99}) is False

    def test_missing_result_var_raises(self):
        frag = Fragment(body=Skip(), result_var="nope", name="broken")
        with pytest.raises(ExecutionError):
            run_fragment(frag)


class TestValidation:
    def test_kernel_subset_accepts_fig4_constructs(self):
        expr = T.Append(T.Unique(T.Var("r")), T.Get(T.Var("r"), T.Const(0)))
        validate_expression(expr)

    def test_kernel_subset_rejects_relational_operators(self):
        bad = T.Sigma(T.SelectFunc(()), T.Var("r"))
        with pytest.raises(KernelValidationError):
            validate_expression(bad)
        with pytest.raises(KernelValidationError):
            validate_expression(T.Pi((T.FieldSpec("id", "id"),), T.Var("r")))

    def test_modified_vars_order(self):
        cmd = Seq((Assign("a", T.Const(1)),
                   If(T.Const(True), Assign("b", T.Const(2)), Skip()),
                   Assign("a", T.Const(3))))
        assert modified_vars(cmd) == ("a", "b")
