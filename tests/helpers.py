"""Shared test fixtures: hand-built kernel fragments and tiny databases.

These mirror the paper's running example (Fig. 1/2) and a few smaller
idioms, in kernel form, so the core pipeline can be tested without the
frontend.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.kernel import ast as K
from repro.kernel.ast import Assign, Fragment, If, Seq, VarInfo, While
from repro.tor import ast as T
from repro.tor.values import Record

USERS_SCHEMA = ("id", "name", "role_id")
ROLES_SCHEMA = ("role_id", "role_name")

USERS_QUERY = T.QueryOp(sql="SELECT * FROM users", table="users",
                        schema=USERS_SCHEMA)
ROLES_QUERY = T.QueryOp(sql="SELECT * FROM roles", table="roles",
                        schema=ROLES_SCHEMA)


def sample_db(users=None, roles=None):
    """A database callback over in-memory user/role tables."""
    tables = {
        "users": users if users is not None else (
            Record(id=1, name="alice", role_id=10),
            Record(id=2, name="bob", role_id=20),
            Record(id=3, name="carol", role_id=10),
        ),
        "roles": roles if roles is not None else (
            Record(role_id=10, role_name="admin"),
            Record(role_id=20, role_name="user"),
        ),
    }

    def db(query: T.QueryOp) -> Tuple[Record, ...]:
        return tables[query.table]

    return db


def running_example_fragment() -> Fragment:
    """Paper Fig. 2: the nested-loop join over users and roles."""
    inner_body = Seq((
        If(
            T.BinOp("=",
                    T.FieldAccess(T.Get(T.Var("users"), T.Var("i")), "role_id"),
                    T.FieldAccess(T.Get(T.Var("roles"), T.Var("j")), "role_id")),
            Assign("listUsers", T.Append(T.Var("listUsers"),
                                         T.Get(T.Var("users"), T.Var("i")))),
        ),
        Assign("j", T.BinOp("+", T.Var("j"), T.Const(1))),
    ))
    inner = While(T.BinOp("<", T.Var("j"), T.Size(T.Var("roles"))),
                  inner_body, loop_id="loop1")
    outer_body = Seq((
        Assign("j", T.Const(0)),
        inner,
        Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
    ))
    outer = While(T.BinOp("<", T.Var("i"), T.Size(T.Var("users"))),
                  outer_body, loop_id="loop0")
    body = Seq((
        Assign("listUsers", T.EmptyRelation()),
        Assign("users", USERS_QUERY),
        Assign("roles", ROLES_QUERY),
        Assign("i", T.Const(0)),
        outer,
    ))
    return Fragment(
        body=body,
        result_var="listUsers",
        inputs={},
        locals={
            "listUsers": VarInfo("relation", USERS_SCHEMA),
            "users": VarInfo("relation", USERS_SCHEMA, table="users"),
            "roles": VarInfo("relation", ROLES_SCHEMA, table="roles"),
            "i": VarInfo("scalar"),
            "j": VarInfo("scalar"),
        },
        name="running-example/getRoleUser",
    )


def selection_fragment() -> Fragment:
    """Filter users with role_id = 10 (category A in Appendix A)."""
    body = Seq((
        Assign("result", T.EmptyRelation()),
        Assign("users", USERS_QUERY),
        Assign("i", T.Const(0)),
        While(
            T.BinOp("<", T.Var("i"), T.Size(T.Var("users"))),
            Seq((
                If(
                    T.BinOp("=",
                            T.FieldAccess(T.Get(T.Var("users"), T.Var("i")),
                                          "role_id"),
                            T.Const(10)),
                    Assign("result", T.Append(T.Var("result"),
                                              T.Get(T.Var("users"), T.Var("i")))),
                ),
                Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
            )),
            loop_id="loop0",
        ),
    ))
    return Fragment(
        body=body,
        result_var="result",
        inputs={},
        locals={
            "result": VarInfo("relation", USERS_SCHEMA),
            "users": VarInfo("relation", USERS_SCHEMA, table="users"),
            "i": VarInfo("scalar"),
        },
        name="test/selection",
    )


def count_fragment() -> Fragment:
    """Count users with role_id = 10 (category J / aggregation)."""
    body = Seq((
        Assign("n", T.Const(0)),
        Assign("users", USERS_QUERY),
        Assign("i", T.Const(0)),
        While(
            T.BinOp("<", T.Var("i"), T.Size(T.Var("users"))),
            Seq((
                If(
                    T.BinOp("=",
                            T.FieldAccess(T.Get(T.Var("users"), T.Var("i")),
                                          "role_id"),
                            T.Const(10)),
                    Assign("n", T.BinOp("+", T.Var("n"), T.Const(1))),
                ),
                Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
            )),
            loop_id="loop0",
        ),
    ))
    return Fragment(
        body=body,
        result_var="n",
        inputs={},
        locals={
            "n": VarInfo("scalar"),
            "users": VarInfo("relation", USERS_SCHEMA, table="users"),
            "i": VarInfo("scalar"),
        },
        name="test/count",
    )


def exists_fragment() -> Fragment:
    """Existence check: is there a user with id = wanted? (category H)."""
    body = Seq((
        Assign("found", T.Const(False)),
        Assign("users", USERS_QUERY),
        Assign("i", T.Const(0)),
        While(
            T.BinOp("<", T.Var("i"), T.Size(T.Var("users"))),
            Seq((
                If(
                    T.BinOp("=",
                            T.FieldAccess(T.Get(T.Var("users"), T.Var("i")), "id"),
                            T.Var("wanted")),
                    Assign("found", T.Const(True)),
                ),
                Assign("i", T.BinOp("+", T.Var("i"), T.Const(1))),
            )),
            loop_id="loop0",
        ),
    ))
    return Fragment(
        body=body,
        result_var="found",
        inputs={"wanted": VarInfo("scalar")},
        locals={
            "found": VarInfo("scalar"),
            "users": VarInfo("relation", USERS_SCHEMA, table="users"),
            "i": VarInfo("scalar"),
        },
        name="test/exists",
    )
