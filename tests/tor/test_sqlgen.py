"""Unit tests for Trans normalisation and SQL generation."""

import pytest

from repro.tor import ast as T
from repro.tor.sqlgen import translate
from repro.tor.trans import NotTranslatableError, normalize

USERS = T.QueryOp(sql="SELECT * FROM users", table="users",
                  schema=("id", "name", "role_id"))
ROLES = T.QueryOp(sql="SELECT * FROM roles", table="roles",
                  schema=("role_id", "role_name"))


def sel(field, value, rel):
    return T.Sigma(T.SelectFunc((T.FieldCmpConst(field, "=",
                                                 T.Const(value)),)), rel)


class TestTranslatable:
    def test_plain_query(self):
        out = translate(USERS)
        assert out.kind == "relation"
        assert out.sql == "SELECT * FROM users AS t0 ORDER BY t0._rowid"

    def test_selection(self):
        out = translate(sel("role_id", 10, USERS))
        assert "WHERE t0.role_id = 10" in out.sql

    def test_projection_renames(self):
        out = translate(T.Pi((T.FieldSpec("id", "uid"),), USERS))
        assert "t0.id AS uid" in out.sql
        assert out.columns == ("uid",)

    def test_join_with_whole_side_projection(self):
        join = T.Join(T.JoinFunc((T.JoinFieldCmp("role_id", "=",
                                                 "role_id"),)),
                      USERS, ROLES)
        out = translate(T.Pi((T.FieldSpec("left", "row"),), join))
        assert out.sql.startswith("SELECT t0.* FROM users AS t0, roles AS t1")
        assert "ORDER BY t0._rowid, t1._rowid" in out.sql

    def test_aggregates(self):
        assert translate(T.Size(USERS)).sql == \
            "SELECT COUNT(*) FROM users AS t0"
        out = translate(T.MaxOp(T.Pi((T.FieldSpec("id", "id"),), USERS)))
        assert out.sql == "SELECT MAX(t0.id) FROM users AS t0"
        assert out.kind == "scalar"

    def test_exists_form(self):
        expr = T.BinOp(">", T.Size(sel("id", 3, USERS)), T.Const(0))
        out = translate(expr)
        assert out.kind == "bool"
        assert out.sql.startswith("SELECT COUNT(*) > 0")

    def test_distinct(self):
        out = translate(T.Unique(T.Pi((T.FieldSpec("id", "id"),), USERS)))
        assert out.sql.startswith("SELECT DISTINCT")

    def test_limit(self):
        out = translate(T.Top(USERS, T.Const(10)))
        assert out.sql.endswith("LIMIT 10")

    def test_sorted_base_orders_before_rowid(self):
        out = translate(T.Top(T.Sort(("id",), USERS), T.Const(5)))
        assert "ORDER BY t0.id, t0._rowid" in out.sql

    def test_parameter_reference(self):
        expr = T.Sigma(T.SelectFunc((T.FieldCmpConst(
            "id", "=", T.Var("wanted")),)), USERS)
        assert ":wanted" in translate(expr).sql

    def test_in_subquery(self):
        ids = T.QueryOp(sql="SELECT role_id FROM roles", table="roles",
                        schema=("role_id",))
        expr = T.Sigma(T.SelectFunc((T.RecordIn(ids, "role_id"),)), USERS)
        out = translate(expr)
        assert "IN (" in out.sql

    def test_bindings_substituted(self):
        expr = sel("role_id", 10, T.Var("users"))
        out = translate(expr, {"users": USERS})
        assert "FROM users" in out.sql


class TestNotTranslatable:
    def test_append_rejected(self):
        with pytest.raises(NotTranslatableError):
            translate(T.Append(USERS, T.Const(1)))

    def test_concat_rejected(self):
        with pytest.raises(NotTranslatableError):
            translate(T.Concat(USERS, USERS))

    def test_non_constant_limit_rejected(self):
        with pytest.raises(NotTranslatableError):
            translate(T.Top(USERS, T.Var("k")))

    def test_custom_sort_key_rejected(self):
        with pytest.raises(NotTranslatableError):
            translate(T.Top(T.Sort(("__custom_comparator__",), USERS),
                            T.Const(5)))

    def test_get_rejected(self):
        with pytest.raises(NotTranslatableError):
            translate(T.Get(USERS, T.Const(0)))


class TestNormalize:
    def test_sigma_slides_through_pi(self):
        expr = T.Sigma(
            T.SelectFunc((T.FieldCmpConst("uid", "=", T.Const(1)),)),
            T.Pi((T.FieldSpec("id", "uid"),), T.Var("r")))
        out = normalize(expr)
        assert isinstance(out, T.Pi)
        assert isinstance(out.rel, T.Sigma)
        assert out.rel.pred.preds[0].field == "id"

    def test_tops_merge(self):
        out = normalize(T.Top(T.Top(T.Var("r"), T.Const(5)), T.Const(3)))
        assert out == T.Top(T.Var("r"), T.Const(3))

    def test_unique_idempotent(self):
        out = normalize(T.Unique(T.Unique(T.Var("r"))))
        assert out == T.Unique(T.Var("r"))
