"""Equivalence of the TOR expression compiler with the interpreter.

The compiled closures of :mod:`repro.tor.compile` must agree with
:func:`repro.tor.semantics.evaluate` on every expression and state —
same values, and the same ``EvalError`` domain.  Beyond targeted node
coverage, the strongest test evaluates every template-generated
candidate expression of real corpus fragments against their bounded
worlds and trace states in both engines.
"""

import pytest

from repro.core.features import extract_features
from repro.core.templates import TemplateGenerator
from repro.core.worlds import generate_worlds
from repro.corpus.registry import ALL_FRAGMENTS, compile_fragment
from repro.frontend import FrontendRejection
from repro.tor import ast as T
from repro.tor.compile import Evaluator, compile_expr
from repro.tor.semantics import EvalError, evaluate
from repro.tor.values import Record


def both(expr, env=None, db=None):
    """Evaluate with both engines; return (value, error-message) pairs."""
    results = []
    for engine in (evaluate, lambda e, n, d: compile_expr(e)(n or {}, d)):
        try:
            results.append(("ok", engine(expr, env, db)))
        except EvalError as exc:
            results.append(("err", str(exc)))
    return results


def assert_agree(expr, env=None, db=None):
    interpreted, compiled = both(expr, env, db)
    assert interpreted == compiled, \
        "divergence on %r: %r vs %r" % (expr, interpreted, compiled)


ROWS = (Record({"id": 1, "v": 5}), Record({"id": 2, "v": 3}),
        Record({"id": 2, "v": 3}), Record({"id": 3, "v": 9}))


@pytest.mark.parametrize("expr", [
    T.Const(42),
    T.EmptyRelation(),
    T.Var("rel"),
    T.Var("missing"),
    T.FieldAccess(T.Get(T.Var("rel"), T.Const(0)), "id"),
    T.FieldAccess(T.Get(T.Var("rel"), T.Const(0)), "nope"),
    T.RecordLit((("a", T.Const(1)), ("b", T.Var("x")))),
    T.BinOp("+", T.Var("x"), T.Const(1)),
    T.BinOp("and", T.Const(False), T.Var("missing")),  # short-circuit
    T.BinOp("or", T.Const(True), T.Var("missing")),
    T.BinOp("<", T.Const(1), T.Const("s")),  # ill-typed comparison
    T.Not(T.Const(0)),
    T.Size(T.Var("rel")),
    T.Get(T.Var("rel"), T.Const(99)),
    T.Get(T.Var("rel"), T.Const(-1)),
    T.Top(T.Var("rel"), T.Const(2)),
    T.Top(T.Var("rel"), T.Const(-2)),
    T.Pi((T.FieldSpec("id", "id"),), T.Var("rel")),
    T.Pi((T.FieldSpec("nope", "x"),), T.Var("rel")),
    T.Sigma(T.SelectFunc((T.FieldCmpConst("v", ">", T.Const(4)),)),
            T.Var("rel")),
    T.Sigma(T.SelectFunc((T.FieldCmpField("id", "<", "v"),)), T.Var("rel")),
    T.Sigma(T.SelectFunc((T.RecordIn(T.Var("ids"), field="id"),)),
            T.Var("rel")),
    T.Join(T.JoinFunc((T.JoinFieldCmp("id", "=", "id"),)),
           T.Var("rel"), T.Var("rel")),
    T.Join(T.JoinFunc(()), T.Var("rel"), T.Var("rel")),
    T.SumOp(T.Pi((T.FieldSpec("v", "v"),), T.Var("rel"))),
    T.MaxOp(T.Pi((T.FieldSpec("v", "v"),), T.Var("rel"))),
    T.MaxOp(T.EmptyRelation()),
    T.MinOp(T.EmptyRelation()),
    T.Concat(T.Var("rel"), T.Var("rel")),
    T.Singleton(T.Const(7)),
    T.PairLit(T.Const(1), T.Const(2)),
    T.Append(T.Var("rel"), T.Const(9)),
    T.Sort(("id", "v"), T.Var("rel")),
    T.Sort(("nope",), T.Var("rel")),
    T.Sort(("__natural__",), T.Pi((T.FieldSpec("v", "v"),), T.Var("rel"))),
    T.RemoveFirst(T.Var("rel"), T.Get(T.Var("rel"), T.Const(1))),
    T.Unique(T.Var("rel")),
    T.Contains(T.Const(2), T.Var("ids")),
    T.Contains(T.Var("missing"), T.EmptyRelation()),
])
def test_node_coverage(expr):
    env = {"rel": ROWS, "x": 10, "ids": (1, 2)}
    assert_agree(expr, env)


def test_query_without_database():
    assert_agree(T.QueryOp(sql="SELECT * FROM t", table="t"))


def test_query_with_database():
    query = T.QueryOp(sql="SELECT * FROM t", table="t", schema=("id", "v"))
    db = lambda q: ROWS  # noqa: E731
    assert_agree(query, {}, db)


def _corpus_expression_states(limit_fragments=20):
    """(expr, env, db) triples from real template pools and worlds."""
    count = 0
    for cf in ALL_FRAGMENTS:
        try:
            fragment = compile_fragment(cf)
        except FrontendRejection:
            continue
        count += 1
        if count > limit_fragments:
            return
        features = extract_features(fragment)
        worlds = generate_worlds(fragment, max_size=2, extra_random=2)
        generator = TemplateGenerator(fragment, features, level=2)
        exprs = list(generator.postcondition_exprs())
        for loop in fragment.loops():
            template = generator.loop_template(loop.loop_id)
            exprs.extend(c.expr for c in template.cmp_clauses)
            for choices in template.eq_choices.values():
                exprs.extend(choices)
        for world in worlds[:4]:
            env = dict(world.inputs)
            for name, info in fragment.all_vars().items():
                if info.kind == "relation" and info.table is not None \
                        and info.table in world.tables:
                    env[name] = world.tables[info.table]
            for counter in ("i", "j"):
                env.setdefault(counter, 1)
            for expr in exprs:
                yield expr, env, world.db


def test_corpus_template_expressions_agree():
    checked = 0
    for expr, env, db in _corpus_expression_states():
        assert_agree(expr, env, db)
        checked += 1
    assert checked > 100  # the sweep actually exercised real pools


def test_evaluator_memo_is_transparent():
    """Memoized and unmemoized evaluation agree, including errors."""
    ev = Evaluator(compiled=True)
    env = {"rel": ROWS}
    expr = T.Size(T.Var("rel"))
    bad = T.Get(T.Var("rel"), T.Const(99))
    for _ in range(3):
        assert ev.eval(expr, env, None, key="state0") == 4
        with pytest.raises(EvalError):
            ev.eval(bad, env, None, key="state0")
    assert ev.stats.memo_hits == 4
    assert ev.stats.executed == 2
    assert ev.stats.requests == 6


def test_interpreted_mode_counts_but_never_caches():
    ev = Evaluator(compiled=False)
    env = {"rel": ROWS}
    for _ in range(2):
        assert ev.eval(T.Size(T.Var("rel")), env, None, key="k") == 4
    assert ev.stats.requests == 2
    assert ev.stats.executed == 2
    assert ev.stats.memo_hits == 0
