"""Unit tests for TOR runtime values: records, pairs, paths."""

import pytest

from repro.tor.values import (
    PairRow,
    Record,
    as_relation,
    resolve_path,
    row_fields,
    row_scalar,
)


class TestRecord:
    def test_field_access_by_key_and_attribute(self):
        r = Record(id=1, name="alice")
        assert r["id"] == 1
        assert r.name == "alice"

    def test_fields_preserve_declaration_order(self):
        r = Record(b=2, a=1)
        assert r.fields == ("b", "a")

    def test_equality_is_structural(self):
        assert Record(id=1) == Record(id=1)
        assert Record(id=1) != Record(id=2)
        assert Record(id=1) != Record(xd=1)

    def test_hashable_and_usable_in_sets(self):
        assert len({Record(id=1), Record(id=1), Record(id=2)}) == 2

    def test_immutable(self):
        r = Record(id=1)
        with pytest.raises(AttributeError):
            r.id = 2

    def test_missing_field_raises_keyerror(self):
        with pytest.raises(KeyError):
            Record(id=1)["nope"]

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            Record({"a": 1}, a=2)

    def test_project_renames_and_replicates(self):
        r = Record(id=7, name="x")
        p = r.project([("id", "a"), ("id", "b")])
        assert p == Record(a=7, b=7)

    def test_concat_disjoint_fields(self):
        c = Record(a=1).concat(Record(b=2))
        assert c == Record(a=1, b=2)

    def test_concat_clash_requires_prefixes(self):
        with pytest.raises(ValueError):
            Record(a=1).concat(Record(a=2))
        c = Record(a=1).concat(Record(a=2), prefix_other="r_")
        assert c == Record(a=1, r_a=2)

    def test_mapping_protocol(self):
        r = Record(x=1, y=2)
        assert dict(r) == {"x": 1, "y": 2}
        assert len(r) == 2


class TestPairRow:
    def test_pair_equality_and_hash(self):
        a = PairRow(Record(id=1), Record(id=2))
        b = PairRow(Record(id=1), Record(id=2))
        assert a == b
        assert hash(a) == hash(b)

    def test_pair_immutable(self):
        p = PairRow(1, 2)
        with pytest.raises(AttributeError):
            p.left = 3


class TestResolvePath:
    def test_plain_field(self):
        assert resolve_path(Record(id=3), "id") == 3

    def test_pair_sides(self):
        p = PairRow(Record(id=1), Record(id=2))
        assert resolve_path(p, "left.id") == 1
        assert resolve_path(p, "right.id") == 2

    def test_whole_side(self):
        p = PairRow(Record(id=1), Record(id=2))
        assert resolve_path(p, "left") == Record(id=1)

    def test_nested_pairs(self):
        p = PairRow(PairRow(Record(a=1), Record(b=2)), Record(c=3))
        assert resolve_path(p, "left.right.b") == 2
        assert resolve_path(p, "right.c") == 3

    def test_bad_path_raises(self):
        with pytest.raises(KeyError):
            resolve_path(Record(a=1), "b")
        with pytest.raises(KeyError):
            resolve_path(PairRow(Record(a=1), Record(b=2)), "middle.a")


class TestRowHelpers:
    def test_row_fields_record(self):
        assert row_fields(Record(a=1, b=2)) == ("a", "b")

    def test_row_fields_pair(self):
        p = PairRow(Record(a=1), Record(b=2))
        assert row_fields(p) == ("left.a", "right.b")

    def test_row_scalar_accepts_bare_and_single_field(self):
        assert row_scalar(5) == 5
        assert row_scalar(Record(v=5)) == 5

    def test_row_scalar_rejects_wide_records(self):
        with pytest.raises(ValueError):
            row_scalar(Record(a=1, b=2))

    def test_as_relation_coerces_dicts(self):
        rel = as_relation([{"id": 1}, Record(id=2), 7])
        assert rel == (Record(id=1), Record(id=2), 7)
