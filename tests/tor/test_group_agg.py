"""The GroupAgg operator: semantics, compiled closures, SQL image."""

import random

import pytest

from repro.tor import ast as T
from repro.tor.compile import Evaluator, compile_expr
from repro.tor.semantics import EvalError, evaluate
from repro.tor.sqlgen import translate
from repro.tor.values import Record


def _group(agg="count", agg_field=None, sel2=False):
    right = T.Var("issues")
    if sel2:
        right = T.Sigma(T.SelectFunc((T.FieldCmpConst("sev", ">",
                                                      T.Const(2)),)),
                        right)
    return T.GroupAgg(
        fields=(T.FieldSpec("id", "user_id"),),
        agg=agg, agg_field=agg_field, out="n",
        pred=T.JoinFunc((T.JoinFieldCmp("id", "=", "owner_id"),)),
        left=T.Var("users"), right=right)


USERS = (Record(id=1, login="a"), Record(id=2, login="b"),
         Record(id=3, login="c"))
ISSUES = (Record(id=10, owner_id=1, sev=5), Record(id=11, owner_id=3, sev=1),
          Record(id=12, owner_id=1, sev=3), Record(id=13, owner_id=3, sev=2))


def test_count_semantics_in_left_order():
    env = {"users": USERS, "issues": ISSUES}
    assert evaluate(_group(), env) == (
        Record(user_id=1, n=2), Record(user_id=3, n=2))


def test_empty_groups_are_skipped():
    env = {"users": USERS, "issues": ()}
    assert evaluate(_group(), env) == ()


def test_sum_and_inner_selection():
    env = {"users": USERS, "issues": ISSUES}
    assert evaluate(_group("sum", "sev", sel2=True), env) == (
        Record(user_id=1, n=8),)


def test_duplicate_left_rows_stay_separate_groups():
    env = {"users": USERS + (Record(id=1, login="a"),), "issues": ISSUES}
    assert evaluate(_group(), env) == (
        Record(user_id=1, n=2), Record(user_id=3, n=2),
        Record(user_id=1, n=2))


def test_compiled_matches_interpreted():
    rng = random.Random(5)
    expr = _group("sum", "sev", sel2=True)
    fn = compile_expr(expr)
    for _ in range(50):
        users = tuple(Record(id=rng.randint(0, 3), login="x")
                      for _ in range(rng.randint(0, 4)))
        issues = tuple(Record(id=i, owner_id=rng.randint(0, 3),
                              sev=rng.randint(0, 5))
                       for i in range(rng.randint(0, 5)))
        env = {"users": users, "issues": issues}
        assert fn(env, None) == evaluate(expr, env)


def test_missing_field_is_an_eval_error():
    env = {"users": (Record(wrong=1),), "issues": ISSUES}
    with pytest.raises(EvalError):
        evaluate(_group(), env)
    with pytest.raises(EvalError):
        Evaluator().eval(_group(), env)


def test_constructor_rejects_unknown_aggregate():
    with pytest.raises(ValueError):
        T.GroupAgg(fields=(), agg="median", agg_field=None, out="n",
                   pred=T.JoinFunc(()), left=T.Var("a"), right=T.Var("b"))


class TestSQLImage:
    def _bound(self, expr):
        return T.substitute(expr, {
            "users": T.QueryOp("SELECT * FROM users", "users",
                               ("id", "login")),
            "issues": T.QueryOp("SELECT * FROM issues", "issues",
                                ("id", "owner_id", "sev")),
        })

    def test_count_group_by_rowid(self):
        sql = translate(self._bound(_group()))
        assert sql.sql == (
            "SELECT t0.id AS user_id, COUNT(*) AS n "
            "FROM users AS t0, issues AS t1 "
            "WHERE t0.id = t1.owner_id GROUP BY t0._rowid")
        assert sql.kind == "relation"
        assert sql.columns == ("user_id", "n")

    def test_sum_with_selection(self):
        sql = translate(self._bound(_group("sum", "sev", sel2=True)))
        assert "SUM(t1.sev) AS n" in sql.sql
        assert "t1.sev > 2" in sql.sql
        assert sql.sql.endswith("GROUP BY t0._rowid")

    def test_sql_image_agrees_with_semantics(self):
        from repro.sql.database import Database

        expr = self._bound(_group())
        translation = translate(expr)
        db = Database()
        db.create_table("users", ("id", "login"))
        db.create_table("issues", ("id", "owner_id", "sev"))
        db.insert_many("users", ({"id": r["id"], "login": r["login"]}
                                 for r in USERS))
        db.insert_many("issues", (
            {"id": r["id"], "owner_id": r["owner_id"], "sev": r["sev"]}
            for r in ISSUES))
        rows = tuple(db.execute(translation.sql).rows)
        assert rows == evaluate(expr, {}, db.tor_db())
