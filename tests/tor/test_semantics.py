"""Unit tests for the TOR evaluator against the Appendix C axioms."""

import pytest

from repro.tor import ast as T
from repro.tor.semantics import EvalError, evaluate
from repro.tor.values import NEG_INF, POS_INF, PairRow, Record

USERS = (
    Record(id=1, name="alice", role_id=10),
    Record(id=2, name="bob", role_id=20),
    Record(id=3, name="carol", role_id=10),
)
ROLES = (
    Record(role_id=10, role_name="admin"),
    Record(role_id=20, role_name="user"),
)
ENV = {"users": USERS, "roles": ROLES}


def users():
    return T.Var("users")


def roles():
    return T.Var("roles")


class TestScalars:
    def test_const(self):
        assert evaluate(T.Const(42)) == 42

    def test_var_lookup(self):
        assert evaluate(T.Var("users"), ENV) == USERS

    def test_unbound_var_raises(self):
        with pytest.raises(EvalError):
            evaluate(T.Var("nope"), {})

    @pytest.mark.parametrize(
        "op,l,r,expected",
        [
            ("and", True, False, False),
            ("or", False, True, True),
            (">", 3, 2, True),
            ("=", 3, 3, True),
            ("<", 3, 2, False),
            (">=", 2, 2, True),
            ("<=", 1, 2, True),
            ("!=", 1, 2, True),
            ("+", 1, 2, 3),
            ("-", 5, 2, 3),
            ("*", 4, 3, 12),
        ],
    )
    def test_binops(self, op, l, r, expected):
        assert evaluate(T.BinOp(op, T.Const(l), T.Const(r))) == expected

    def test_not(self):
        assert evaluate(T.Not(T.Const(False))) is True

    def test_record_literal_and_field_access(self):
        rec = T.RecordLit((("a", T.Const(1)), ("b", T.Const(2))))
        assert evaluate(rec) == Record(a=1, b=2)
        assert evaluate(T.FieldAccess(rec, "b")) == 2


class TestListAxioms:
    def test_size(self):
        assert evaluate(T.Size(users()), ENV) == 3
        assert evaluate(T.Size(T.EmptyRelation())) == 0

    def test_get(self):
        assert evaluate(T.Get(users(), T.Const(1)), ENV) == USERS[1]

    def test_get_out_of_range(self):
        with pytest.raises(EvalError):
            evaluate(T.Get(users(), T.Const(5)), ENV)
        with pytest.raises(EvalError):
            evaluate(T.Get(users(), T.Const(-1)), ENV)

    def test_top_prefix(self):
        assert evaluate(T.Top(users(), T.Const(2)), ENV) == USERS[:2]

    def test_top_zero_and_overflow(self):
        assert evaluate(T.Top(users(), T.Const(0)), ENV) == ()
        assert evaluate(T.Top(users(), T.Const(99)), ENV) == USERS

    def test_append(self):
        extra = Record(id=9, name="zed", role_id=30)
        out = evaluate(T.Append(users(), T.Const(extra)), ENV)
        assert out == USERS + (extra,)

    def test_unique_keeps_first_occurrence(self):
        rel = (Record(a=1), Record(a=2), Record(a=1))
        out = evaluate(T.Unique(T.Var("r")), {"r": rel})
        assert out == (Record(a=1), Record(a=2))

    def test_sort_is_stable(self):
        rel = (Record(k=2, tag="x"), Record(k=1, tag="y"), Record(k=1, tag="z"))
        out = evaluate(T.Sort(("k",), T.Var("r")), {"r": rel})
        assert out == (Record(k=1, tag="y"), Record(k=1, tag="z"), Record(k=2, tag="x"))


class TestProjection:
    def test_projection_keeps_listed_fields(self):
        pi = T.Pi((T.FieldSpec("id", "id"),), users())
        assert evaluate(pi, ENV) == (Record(id=1), Record(id=2), Record(id=3))

    def test_projection_replicates_fields(self):
        pi = T.Pi((T.FieldSpec("id", "a"), T.FieldSpec("id", "b")), users())
        assert evaluate(pi, ENV)[0] == Record(a=1, b=1)

    def test_projection_of_pair_side(self):
        join = T.Join(
            T.JoinFunc((T.JoinFieldCmp("role_id", "=", "role_id"),)),
            users(), roles(),
        )
        pi = T.Pi((T.FieldSpec("left", "u"),), join)
        assert evaluate(pi, ENV) == USERS  # every user matches some role


class TestSelection:
    def test_field_const_selection(self):
        sel = T.Sigma(
            T.SelectFunc((T.FieldCmpConst("role_id", "=", T.Const(10)),)),
            users(),
        )
        assert evaluate(sel, ENV) == (USERS[0], USERS[2])

    def test_selection_preserves_order(self):
        sel = T.Sigma(
            T.SelectFunc((T.FieldCmpConst("id", ">", T.Const(1)),)), users()
        )
        assert evaluate(sel, ENV) == (USERS[1], USERS[2])

    def test_conjunction_of_predicates(self):
        sel = T.Sigma(
            T.SelectFunc(
                (
                    T.FieldCmpConst("role_id", "=", T.Const(10)),
                    T.FieldCmpConst("id", ">", T.Const(1)),
                )
            ),
            users(),
        )
        assert evaluate(sel, ENV) == (USERS[2],)

    def test_field_field_predicate(self):
        rel = (Record(a=1, b=1), Record(a=1, b=2))
        sel = T.Sigma(T.SelectFunc((T.FieldCmpField("a", "=", "b"),)), T.Var("r"))
        assert evaluate(sel, {"r": rel}) == (Record(a=1, b=1),)

    def test_contains_predicate(self):
        sel = T.Sigma(
            T.SelectFunc((T.RecordIn(T.Var("allowed"), field="role_id"),)),
            users(),
        )
        env = dict(ENV, allowed=(Record(role_id=20),))
        assert evaluate(sel, env) == (USERS[1],)

    def test_const_in_predicate_reads_program_vars(self):
        sel = T.Sigma(
            T.SelectFunc((T.FieldCmpConst("id", "=", T.Var("wanted")),)),
            users(),
        )
        assert evaluate(sel, dict(ENV, wanted=2)) == (USERS[1],)


class TestJoin:
    def test_join_orders_left_major(self):
        join = T.Join(
            T.JoinFunc((T.JoinFieldCmp("role_id", "=", "role_id"),)),
            users(), roles(),
        )
        out = evaluate(join, ENV)
        assert out == (
            PairRow(USERS[0], ROLES[0]),
            PairRow(USERS[1], ROLES[1]),
            PairRow(USERS[2], ROLES[0]),
        )

    def test_cross_product(self):
        join = T.Join(T.JoinFunc(()), users(), roles())
        out = evaluate(join, ENV)
        assert len(out) == 6
        assert out[0] == PairRow(USERS[0], ROLES[0])
        assert out[1] == PairRow(USERS[0], ROLES[1])

    def test_join_empty_either_side(self):
        join = T.Join(T.JoinFunc(()), users(), T.EmptyRelation())
        assert evaluate(join, ENV) == ()
        join = T.Join(T.JoinFunc(()), T.EmptyRelation(), roles())
        assert evaluate(join, ENV) == ()


class TestAggregates:
    def test_sum(self):
        rel = (Record(v=1), Record(v=2), Record(v=3))
        assert evaluate(T.SumOp(T.Var("r")), {"r": rel}) == 6

    def test_sum_empty_is_zero(self):
        assert evaluate(T.SumOp(T.EmptyRelation())) == 0

    def test_max_min(self):
        rel = (3, 1, 2)
        assert evaluate(T.MaxOp(T.Var("r")), {"r": rel}) == 3
        assert evaluate(T.MinOp(T.Var("r")), {"r": rel}) == 1

    def test_max_min_empty_identities(self):
        assert evaluate(T.MaxOp(T.EmptyRelation())) == NEG_INF
        assert evaluate(T.MinOp(T.EmptyRelation())) == POS_INF

    def test_aggregate_rejects_wide_records(self):
        rel = (Record(a=1, b=2),)
        with pytest.raises(ValueError):
            evaluate(T.SumOp(T.Var("r")), {"r": rel})


class TestContainsExpression:
    def test_contains_record(self):
        assert evaluate(T.Contains(T.Const(USERS[0]), users()), ENV) is True

    def test_contains_scalar_in_projected_column(self):
        pi = T.Pi((T.FieldSpec("id", "id"),), users())
        assert evaluate(T.Contains(T.Const(2), pi), ENV) is True
        assert evaluate(T.Contains(T.Const(9), pi), ENV) is False


class TestQueryOp:
    def test_query_resolves_through_db(self):
        q = T.QueryOp(sql="SELECT * FROM users", table="users",
                      schema=("id", "name", "role_id"))

        def db(node):
            assert node.table == "users"
            return USERS

        assert evaluate(q, {}, db) == USERS

    def test_query_without_db_raises(self):
        with pytest.raises(EvalError):
            evaluate(T.QueryOp(sql="SELECT 1"))


class TestTreeUtilities:
    def test_substitute(self):
        expr = T.Size(T.Var("xs"))
        out = T.substitute(expr, {"xs": T.Var("ys")})
        assert out == T.Size(T.Var("ys"))

    def test_substitute_inside_predicates(self):
        sel = T.Sigma(
            T.SelectFunc((T.FieldCmpConst("id", "=", T.Var("w")),)), T.Var("r")
        )
        out = T.substitute(sel, {"w": T.Const(3)})
        assert out.pred.preds[0].const == T.Const(3)

    def test_free_vars(self):
        expr = T.Join(T.JoinFunc(()), T.Var("a"), T.Top(T.Var("b"), T.Var("i")))
        assert T.free_vars(expr) == {"a", "b", "i"}

    def test_size_metric(self):
        assert T.Var("x").size() == 1
        assert T.Size(T.Var("x")).size() == 2

    def test_uses_operator(self):
        expr = T.Append(T.Var("r"), T.Const(1))
        assert T.uses_operator(expr, T.Append)
        assert not T.uses_operator(expr, T.Unique)
