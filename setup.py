"""Setuptools shim for environments without PEP 660 editable support."""

from setuptools import find_packages, setup

setup(
    name="repro-qbs",
    version="0.2.0",
    description="QBS (PLDI'13) reproduction: ORM loops to SQL by "
                "invariant synthesis, servable corpus pipeline included",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro-qbs=repro.service.cli:main",
        ],
    },
)
