"""DAO base class and the ``@query_method`` marker.

A persistent-data method (paper Sec. 6.1) is one that fetches rows via
the ORM.  ``@query_method`` serves both worlds:

* **runtime** — calling the method executes its SQL through the DAO's
  session and returns hydrated entities (the decorated body is never
  executed; it exists only as documentation, like a Hibernate named
  query);
* **analysis** — the QBS frontend recognises calls to decorated methods
  and replaces them with ``Query(...)`` kernel expressions carrying the
  SQL, table and schema.
"""

from __future__ import annotations

import functools
from typing import Optional, Tuple


class QuerySpec:
    """Metadata attached to a persistent-data method."""

    def __init__(self, sql: str, table: Optional[str],
                 schema: Tuple[str, ...], entity: Optional[str]):
        self.sql = sql
        self.table = table
        self.schema = schema
        self.entity = entity


def query_method(sql: str, table: Optional[str] = None,
                 schema: Tuple[str, ...] = (), entity: Optional[str] = None):
    """Declare a DAO method as a persistent-data query."""

    def decorate(func):
        spec = QuerySpec(sql=sql, table=table, schema=tuple(schema),
                         entity=entity)

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            params = dict(kwargs)
            if args:
                # Positional parameters bind in declaration order after
                # self; named binding is preferred in the corpus.
                names = [n for n in func.__code__.co_varnames[1:len(args) + 1]]
                params.update(zip(names, args))
            return self.session.query(spec.sql, spec.entity, params or None)

        wrapper.__query_spec__ = spec
        return wrapper

    return decorate


class Dao:
    """Base class: a DAO is a bag of query methods bound to a session."""

    def __init__(self, session):
        self.session = session
