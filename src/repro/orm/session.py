"""The ORM session: loading and hydration.

``Session.load_all(entity)`` issues ``SELECT *`` over the entity's
table and hydrates each row into an :class:`Entity` object.  Fetch
modes (paper Sec. 7.2):

* ``lazy`` — associations become proxy attributes that run their lookup
  query on first access;
* ``eager`` — associations are resolved during hydration, one indexed
  lookup per row (Hibernate's default join/select fetching; the extra
  per-row work is why the paper's eager curves are uniformly slower).

Hydration statistics (``objects_hydrated``) let benchmarks report how
many entity objects each code version materialised — the quantity QBS
reduces by pushing work into the database.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.orm.mapping import Association, EntityType, MappingRegistry
from repro.sql.database import Database
from repro.tor.values import Record


class Entity:
    """A hydrated row: attribute access over columns and associations."""

    __slots__ = ("_type", "_session", "_data", "_assoc_cache")

    def __init__(self, entity_type: EntityType, session: "Session",
                 data: Record):
        object.__setattr__(self, "_type", entity_type)
        object.__setattr__(self, "_session", session)
        object.__setattr__(self, "_data", data)
        object.__setattr__(self, "_assoc_cache", {})

    def __getattr__(self, name: str) -> Any:
        data = object.__getattribute__(self, "_data")
        if name in data.fields:
            return data[name]
        entity_type = object.__getattribute__(self, "_type")
        assoc = entity_type.association(name)
        if assoc is not None:
            cache = object.__getattribute__(self, "_assoc_cache")
            if name not in cache:
                session = object.__getattribute__(self, "_session")
                cache[name] = session._resolve_association(self, assoc)
            return cache[name]
        raise AttributeError("%s has no column or association %r"
                             % (entity_type.name, name))

    def __setattr__(self, name: str, value: Any):
        raise AttributeError("entities are read-only in this reproduction")

    @property
    def record(self) -> Record:
        """The underlying row record (used by equivalence checks)."""
        return object.__getattribute__(self, "_data")

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Entity):
            return self.record == other.record
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.record)

    def __repr__(self) -> str:
        entity_type = object.__getattribute__(self, "_type")
        return "%s(%r)" % (entity_type.name, dict(self.record))


class Session:
    """A unit of database access with a fixed association fetch mode."""

    def __init__(self, db: Database, registry: MappingRegistry,
                 fetch: str = "lazy"):
        if fetch not in ("lazy", "eager"):
            raise ValueError("fetch mode must be 'lazy' or 'eager'")
        self.db = db
        self.registry = registry
        self.fetch = fetch
        #: number of entity objects created — the hydration cost proxy.
        self.objects_hydrated = 0
        #: number of SQL statements issued.
        self.queries_issued = 0

    # -- loading ------------------------------------------------------------

    def load_all(self, entity_name: str) -> List[Entity]:
        """``SELECT *`` over the entity's table, hydrated."""
        entity_type = self.registry.entity(entity_name)
        result = self.db.execute("SELECT * FROM %s" % entity_type.table)
        self.queries_issued += 1
        return [self._hydrate(entity_type, row) for row in result.rows]

    def query(self, sql: str, entity_name: Optional[str] = None,
              params: Optional[Dict[str, Any]] = None) -> List[Entity]:
        """Run arbitrary SQL, hydrating rows as ``entity_name`` if given.

        Entity-less single-column queries return bare scalars, matching
        Hibernate's ``List<Long>`` projections — application code
        membership tests (``id in manager_ids``) rely on this.
        """
        result = self.db.execute(sql, params)
        self.queries_issued += 1
        if entity_name is None:
            if len(result.columns) == 1:
                column = result.columns[0]
                return [row[column] for row in result.rows]
            return list(result.rows)
        entity_type = self.registry.entity(entity_name)
        return [self._hydrate(entity_type, row) for row in result.rows]

    def _hydrate(self, entity_type: EntityType, row: Record,
                 shallow: bool = False) -> Entity:
        self.objects_hydrated += 1
        entity = Entity(entity_type, self, row)
        if self.fetch == "eager" and not shallow:
            cache = object.__getattribute__(entity, "_assoc_cache")
            for assoc in entity_type.associations:
                cache[assoc.name] = self._resolve_association(entity, assoc)
        return entity

    # -- associations -----------------------------------------------------------

    def _resolve_association(self, entity: Entity, assoc: Association):
        """Resolve one association by key lookup.

        Associated entities are hydrated *shallowly* (their own
        associations stay lazy) so that cyclic mappings — participant ->
        project -> creator -> ... — terminate, matching Hibernate's
        bounded eager-fetch depth.
        """
        target = self.registry.entity(assoc.target)
        key = getattr(entity, assoc.local_column)
        sql = ("SELECT * FROM %s AS t0 WHERE t0.%s = :key"
               % (target.table, assoc.remote_column))
        result = self.db.execute(sql, {"key": key})
        self.queries_issued += 1
        hydrated = [self._hydrate(target, row, shallow=True)
                    for row in result.rows]
        if assoc.many:
            return hydrated
        return hydrated[0] if hydrated else None
