"""A Hibernate-like object-relational mapping layer.

The paper's subject programs access the database exclusively through
ORM calls (Hibernate).  This package provides the analogous substrate:

* :mod:`repro.orm.mapping` — entity declarations: table, columns and
  associations between entities;
* :mod:`repro.orm.session` — the session: loads entities, hydrates row
  records into Python objects, and implements the two association
  fetch modes the paper benchmarks (``lazy`` proxies that query on
  first access vs ``eager`` loading at hydration time);
* :mod:`repro.orm.dao` — DAO base class and the ``@query_method``
  decorator that both *implements* a persistent-data method at runtime
  and *marks* it for the QBS frontend (the paper's "persistent data
  methods", Sec. 6.1).

The ORM deliberately mirrors the performance characteristics that make
Fig. 14 interesting: every loaded row becomes a Python object (so
fetching fewer rows is proportionally cheaper), and eager mode issues
one association lookup per row (the classic N+1 pattern, which is why
the paper's eager curves sit above the lazy ones).
"""

from repro.orm.mapping import Association, EntityType
from repro.orm.session import Entity, Session
from repro.orm.dao import Dao, query_method

__all__ = [
    "Association",
    "EntityType",
    "Entity",
    "Session",
    "Dao",
    "query_method",
]
