"""Entity declarations: tables, columns, associations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Association:
    """A reference from one entity to another, resolved by key equality.

    ``local_column`` on the owning entity matches ``remote_column`` on
    the target; ``many`` selects between a single object (many-to-one)
    and a list (one-to-many).
    """

    name: str
    target: str            # target EntityType name
    local_column: str
    remote_column: str
    many: bool = False


@dataclass
class EntityType:
    """One mapped entity: table, columns and associations."""

    name: str
    table: str
    columns: Tuple[str, ...]
    associations: Tuple[Association, ...] = ()

    def association(self, name: str) -> Optional[Association]:
        for assoc in self.associations:
            if assoc.name == name:
                return assoc
        return None


class MappingRegistry:
    """All entity types of one application."""

    def __init__(self):
        self.entities: Dict[str, EntityType] = {}

    def register(self, entity: EntityType) -> EntityType:
        self.entities[entity.name] = entity
        return entity

    def entity(self, name: str) -> EntityType:
        try:
            return self.entities[name]
        except KeyError:
            raise KeyError("unmapped entity %r" % name) from None
