"""Fan QBS jobs out over a multiprocessing worker pool.

Fragments are independent jobs (the engine is deterministic per
fragment), so the scheduler's only obligations are

* **outcome identity** — a parallel run must produce, fragment for
  fragment, the same status / SQL / marker a sequential run produces.
  Workers return JSON payloads (no AST crosses the process boundary)
  and the sequential path round-trips through the same serialization,
  so both modes yield results of identical shape and content;
* **order stability** — outcomes are delivered in submission order
  regardless of completion order;
* **fault tolerance** — failures are classified into the
  ``repro.service.faults`` taxonomy (``timeout | crash |
  corrupt_payload | transient_exhausted | permanent``) and carried on
  :class:`JobOutcome`.  Retryable failures are retried under a
  :class:`~repro.service.faults.RetryPolicy` with deterministic
  backoff; the attempt bound is the per-job circuit breaker, so a
  poison job fails permanently after K attempts instead of
  respawn-looping.  Crashed / timed-out / desynced workers are
  terminated and replaced while the rest of the batch completes, and
  an optional whole-run deadline abandons unfinished work with a
  classified timeout instead of blocking;
* **graceful degradation** — ``workers=1`` runs in-process with no
  multiprocessing machinery at all.

Results are read through / written to a :class:`ResultCache` when one
is attached, which is what makes corpus re-runs incremental.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, Iterator, List, Optional

from repro.core.qbs import QBSOptions, QBSResult
from repro.corpus.registry import CorpusFragment
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service import faults
from repro.service.cache import ResultCache
from repro.service.faults import (
    CRASH,
    CORRUPT_PAYLOAD,
    PERMANENT,
    TIMEOUT,
    CorruptPayload,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    SubstrateUnavailable,
    WorkerCrash,
    classify_exception,
    final_failure_kind,
)
from repro.service.jobs import (
    QBSJob,
    execute_job,
    job_for,
    options_payload,
    result_from_payload,
)

#: worker entry indirection: tests (and embedders) can swap the runner;
#: fork-started workers inherit the swap.
_JOB_RUNNER = execute_job

# Scheduler metrics, recorded parent-side from each JobOutcome (pool
# workers are separate processes; everything observable already rides
# home on the outcome).  Job *spans* are likewise built parent-side
# when the run happens under an ambient trace — see
# :meth:`Scheduler._observe`.
_JOBS = obs_metrics.counter(
    "repro_jobs_total", "scheduler job outcomes by state")
_JOB_ATTEMPTS = obs_metrics.counter(
    "repro_job_attempts_total", "attempts consumed across all jobs")
_JOB_RETRIES = obs_metrics.counter(
    "repro_job_retries_total", "jobs that needed more than one attempt")
_JOB_FAILURES = obs_metrics.counter(
    "repro_job_failures_total", "failed jobs by classified kind")
_JOB_SECONDS = obs_metrics.histogram(
    "repro_job_seconds", "per-job wall clock (cache hits excluded)")
_BACKOFF_WAITS = obs_metrics.counter(
    "repro_backoff_waits_total", "retry backoff waits")
_BACKOFF_SECONDS = obs_metrics.counter(
    "repro_backoff_seconds_total", "seconds committed to retry backoff")
_DEADLINE_MARGIN = obs_metrics.gauge(
    "repro_deadline_margin_seconds",
    "whole-run deadline margin when the last outcome was delivered")
_JOBS_INFLIGHT = obs_metrics.gauge(
    "repro_jobs_inflight",
    "jobs executing right now (the live-ops view a /metrics scrape "
    "sees mid-run)")


def _fork_child(conn, fn, item):
    """fork_map worker: one tagged reply per pipe.

    Replies are ``("ok", result)``, ``("exc", exception)``, or — when
    the result / exception itself refuses to pickle — a structured
    ``("error", payload)`` built from plain data, so the parent always
    learns *why* instead of seeing a bare EOF.
    """
    faults.mark_child_process()
    try:
        reply = ("ok", fn(item))
    except BaseException as exc:
        reply = ("exc", exc)
    try:
        conn.send(reply)
    except Exception as send_exc:
        # The payload would not pickle; ship a classified description
        # (a successful-but-unpicklable result is a corrupt payload,
        # not a job failure with its own repr).
        tag, value = reply
        if tag == "ok":
            payload = faults.error_payload(
                CORRUPT_PAYLOAD,
                "fork_map: result %r is not picklable (%s: %s)"
                % (value, type(send_exc).__name__, send_exc))
        else:
            payload = faults.error_payload(
                PERMANENT,
                "fork_map: %s: %s (exception did not pickle: %s)"
                % (type(value).__name__, value, send_exc))
        try:
            conn.send(("error", payload))
        except Exception:   # pragma: no cover - pipe gone; parent sees EOF
            pass
    finally:
        conn.close()
    # Skip interpreter finalization: tearing down a forked child decrefs
    # the entire inherited heap, copy-on-write-copying it page by page —
    # for a large parent (the whole point of fork workers) that costs
    # more than the job itself.  The result is already on the pipe and
    # the child owns no other resources.
    os._exit(0)


def _reap_fork_workers(workers) -> None:
    """Close pipes and make every child exit — escalating terminate →
    kill — so an abandoned fan-out never leaks zombies.  ``None``
    entries are workers already collected (and fully released) by the
    bounded dispatch loop."""
    for entry in workers:
        if entry is None:
            continue
        process, receiver = entry
        try:
            receiver.close()
        except OSError:
            pass
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
        process.join()


def fork_map(fn, items, deadline: Optional[Deadline] = None):
    """Apply ``fn`` to each item in its own forked child process.

    The generic fan-out primitive underneath the scheduler's pool,
    exposed for other CPU-bound batch work — the SQL engine's
    partition-parallel aggregates run their per-partition tasks through
    it.  Fork semantics are the point: children inherit the parent's
    memory image, so ``fn`` and ``items`` never pickle; only each
    *result* crosses the process boundary, over the scheduler's
    one-pipe-per-worker convention (no channel is shared, so one
    worker's death cannot corrupt another's result).

    Results come back in item order.  A child that raises has its
    exception re-raised here; substrate failures raise typed faults
    from the shared taxonomy instead of hangs or raw ``EOFError``:

    * child died without replying → :class:`WorkerCrash` (exit code
      included);
    * reply would not decode (unpicklable / truncated payload) →
      :class:`CorruptPayload`;
    * a worker process could not start → :class:`SubstrateUnavailable`;
    * ``deadline`` expired with results outstanding →
      :class:`DeadlineExceeded` (remaining children are reaped).

    Falls back to an inline map when fork is unavailable (non-POSIX)
    or when there is at most one item.

    Concurrency is bounded: at most
    :func:`repro.sql.plan.parallel.usable_cores` children are in
    flight at once, in a dispatch loop that spawns item ``i + limit``
    only after item ``i``'s result is collected.  More children than
    cores buy no CPU parallelism, and an unbounded fan-out holds one
    pipe pair (two file descriptors) per *item* open simultaneously —
    a large K exhausts ``RLIMIT_NOFILE`` before any work fails.
    Results still come back in item order (collection order is the
    spawn order, so the bound changes scheduling, never results).
    """
    items = list(items)
    if len(items) <= 1:
        if deadline is not None:
            deadline.check("fork_map")
        return [fn(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [fn(item) for item in items]
    from repro.sql.plan.parallel import usable_cores

    limit = max(1, usable_cores())
    workers = []

    def spawn_next() -> None:
        item = items[len(workers)]
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(target=_fork_child,
                                  args=(sender, fn, item), daemon=True)
        try:
            process.start()
        except OSError as exc:
            receiver.close()
            sender.close()
            raise SubstrateUnavailable(
                "fork_map could not start a worker: %s" % exc)
        sender.close()
        workers.append((process, receiver))

    try:
        while len(workers) < min(limit, len(items)):
            spawn_next()
        results = []
        for index in range(len(items)):
            process, receiver = workers[index]
            if deadline is not None and \
                    not receiver.poll(deadline.remaining()):
                raise DeadlineExceeded(
                    "fork_map deadline expired with %d/%d results collected"
                    % (len(results), len(items)))
            try:
                tag, payload = receiver.recv()
            except (EOFError, OSError):
                process.join()
                raise WorkerCrash(
                    "fork_map worker died without replying "
                    "(exit code %s)" % process.exitcode)
            except Exception as exc:
                raise CorruptPayload(
                    "fork_map reply failed to decode (%s: %s)"
                    % (type(exc).__name__, exc))
            if tag == "ok":
                results.append(payload)
            elif tag == "exc":
                raise payload
            else:
                raise faults.fault_from_payload(payload)
            # This child replied and is exiting; release its pipe, its
            # process handle (join alone keeps the sentinel fd open)
            # and its slot before starting the next item, so no more
            # than ``limit`` of any resource are ever held.
            receiver.close()
            process.join()
            process.close()
            workers[index] = None
            if len(workers) < len(items):
                spawn_next()
        return results
    finally:
        _reap_fork_workers(workers)


def _worker_main(conn, options_dict):
    """Worker process: serve explicitly-assigned jobs until the parent
    sends the ``None`` shutdown sentinel (or terminates us).

    Jobs arrive and results return over this worker's own duplex pipe —
    no channel is shared between workers, so terminating one worker
    can never corrupt another's results.  The sentinel, not pipe EOF,
    ends the loop: under fork, sibling workers inherit copies of each
    other's pipe fds, so the parent closing its end does not reliably
    produce EOF here.

    Failed jobs reply ``(index, False, (kind, message))`` so the parent
    can classify without parsing text; a reply whose payload will not
    pickle is downgraded to a structured corrupt-payload report rather
    than killing the worker.
    """
    faults.mark_child_process()
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, fragment_id, attempt = item
        faults.set_current_attempt(attempt)
        try:
            payload = _JOB_RUNNER(fragment_id, options_dict)
        except Exception as exc:
            reply = (index, False, (classify_exception(exc),
                                    "%s: %s" % (type(exc).__name__, exc)))
        else:
            reply = (index, True, payload)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:
            try:
                conn.send((index, False, (
                    CORRUPT_PAYLOAD,
                    "result for %s failed to serialize (%s: %s)"
                    % (fragment_id, type(exc).__name__, exc))))
            except Exception:   # pragma: no cover - pipe gone
                return


class _WorkerHandle:
    """Parent-side view of one worker and the job it currently holds."""

    #: grace given at each escalation step (sentinel/SIGTERM → SIGKILL)
    #: before moving to the next; tests shrink this.
    _JOIN_GRACE = 5.0

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.index: Optional[int] = None   # assigned job, None when idle
        self.assigned_at = 0.0

    def assign(self, index: int, fragment_id: str, attempt: int) -> None:
        self.index = index
        self.assigned_at = time.perf_counter()
        self.conn.send((index, fragment_id, attempt))

    def shutdown(self, kill: bool) -> None:
        """Wind the worker down, escalating until it is actually
        reaped: cooperative sentinel (or SIGTERM when ``kill``), then
        SIGTERM, then SIGKILL.  A worker stuck in uninterruptible work
        or ignoring SIGTERM must not leak as a zombie."""
        if kill:
            self.process.terminate()
        else:
            try:
                self.conn.send(None)    # shutdown sentinel
            except (BrokenPipeError, OSError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=self._JOIN_GRACE)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=self._JOIN_GRACE)
            if self.process.is_alive():
                self.process.kill()
        self.process.join()


@dataclass
class JobOutcome:
    """What the scheduler reports for one job."""

    job: QBSJob
    state: str                        # "done" | "failed"
    result: Optional[QBSResult] = None
    from_cache: bool = False
    elapsed_seconds: float = 0.0
    error: str = ""
    #: final taxonomy code when failed (``faults.FAILURE_KINDS``);
    #: ``None`` on success.
    failure_kind: Optional[str] = None
    #: attempts consumed (0 = never started, e.g. deadline hit first).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.state == "done"


def outcome_fingerprint(outcomes: List["JobOutcome"]) -> List[tuple]:
    """The identity contract runs are judged on, one tuple per job:
    (fragment id, QBS status, Appendix-A marker, SQL text).

    Parallel, sequential and cache-served runs of the same batch must
    produce equal fingerprints; the benchmark and the test suite both
    assert through this single definition.
    """
    out = []
    for outcome in outcomes:
        result = outcome.result
        out.append((outcome.job.fragment_id,
                    result.status.value if result else "job-failed",
                    result.status.marker if result else "!",
                    result.sql.sql if result and result.sql else None))
    return out


@dataclass
class RunReport:
    """Aggregate accounting for one scheduler run."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.ok and not o.from_cache)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def retried(self) -> int:
        """Jobs that needed more than one attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)


class Scheduler:
    """Run corpus fragments through QBS, optionally in parallel."""

    def __init__(self, workers: int = 1,
                 job_timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None,
                 options: Optional[QBSOptions] = None,
                 refresh: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.job_timeout = job_timeout
        self.cache = cache
        self.options = options or QBSOptions()
        #: recompute even on cache hit (results are re-stored).
        self.refresh = refresh
        #: retry/backoff/circuit-breaker policy; the default keeps the
        #: seed behaviour (one attempt, no retries).
        self.retry = retry if retry is not None else faults.NO_RETRY
        #: whole-run budget in seconds; unfinished work past it fails
        #: with a classified timeout instead of blocking.
        self.deadline_seconds = deadline

    # -- public API --------------------------------------------------------

    def run(self, fragments: List[CorpusFragment]) -> RunReport:
        """Run a batch; outcomes come back in submission order."""
        start = time.perf_counter()
        outcomes = list(self.run_iter(fragments))
        return RunReport(outcomes=outcomes,
                         wall_seconds=time.perf_counter() - start)

    def run_iter(self, fragments: List[CorpusFragment],
                 stop_event: Optional[threading.Event] = None
                 ) -> Iterator[JobOutcome]:
        """Yield outcomes in submission order as they become available.

        ``stop_event`` (settable from another thread, e.g. the async
        facade's cancelled stream) makes the run wind down early: no
        new jobs start, workers are reclaimed, and the iterator ends
        without yielding the remaining outcomes.

        Every outcome is observed on its way out (:meth:`_observe`):
        metrics counters always, and — when the run happens under an
        ambient trace — one ``job`` span per outcome, parented into
        the caller's tree in submission order and closed with the
        outcome's authoritative elapsed time.
        """
        parent_span = obs_trace.current_span()
        run_started = time.perf_counter()
        jobs = [job_for(cf, self.options) for cf in fragments]
        cached: Dict[int, JobOutcome] = {}
        pending: List[int] = []
        for index, job in enumerate(jobs):
            payload = None
            if self.cache is not None and not self.refresh:
                payload = self.cache.load(job)
            if payload is not None:
                cached[index] = JobOutcome(
                    job=job, state="done",
                    result=result_from_payload(payload),
                    from_cache=True,
                    elapsed_seconds=payload.get("elapsed_seconds", 0.0))
            else:
                pending.append(index)

        if not pending:
            for i in range(len(jobs)):
                self._observe(cached[i], parent_span, run_started)
                yield cached[i]
            return

        if self.workers == 1:
            compute = self._run_inline(jobs, pending, stop_event)
        else:
            compute = self._run_pool(jobs, pending, stop_event)

        # Interleave back into submission order.  The pool path computes
        # lazily, so streaming consumers see outcomes as soon as the
        # next in-order job finishes.
        try:
            for index in range(len(jobs)):
                outcome = cached[index] if index in cached \
                    else next(compute)
                self._observe(outcome, parent_span, run_started)
                yield outcome
        except StopIteration:   # compute wound down early (stop_event)
            return

    def _observe(self, outcome: JobOutcome, parent_span,
                 run_started: float) -> None:
        """Record one outcome's metrics and (if tracing) its span.

        Runs parent-side for both execution strategies — the pool's
        workers are separate processes, but everything worth recording
        already crosses the pipe on the outcome: state, cache
        provenance, attempts, the classified failure kind and the
        honest per-job elapsed time (used via :meth:`Span.finish`
        rather than re-timing).
        """
        _JOBS.inc(state=outcome.state)
        _JOB_ATTEMPTS.inc(outcome.attempts)
        if outcome.attempts > 1:
            _JOB_RETRIES.inc()
        if outcome.failure_kind is not None:
            _JOB_FAILURES.inc(kind=outcome.failure_kind)
        if not outcome.from_cache:
            _JOB_SECONDS.observe(outcome.elapsed_seconds)
        margin = None
        if self.deadline_seconds is not None:
            margin = self.deadline_seconds \
                - (time.perf_counter() - run_started)
            _DEADLINE_MARGIN.set(margin)
        if parent_span is not None:
            span = parent_span.child(
                "job", fragment=outcome.job.fragment_id,
                state=outcome.state, from_cache=outcome.from_cache,
                attempts=outcome.attempts)
            if outcome.failure_kind is not None:
                span.tag(failure_kind=outcome.failure_kind)
            if margin is not None:
                span.tag(deadline_margin_seconds=round(margin, 6))
            span.finish(outcome.elapsed_seconds)

    # -- execution strategies ---------------------------------------------

    def _run_inline(self, jobs: List[QBSJob], pending: List[int],
                    stop_event: Optional[threading.Event]
                    ) -> Iterator[JobOutcome]:
        """In-process fallback: no pool, no pickling overhead — but the
        same retry/backoff/deadline semantics as the pool path."""
        opts = options_payload(self.options)
        retry = self.retry
        deadline = Deadline.after(self.deadline_seconds)
        for index in pending:
            if stop_event is not None and stop_event.is_set():
                return
            job = jobs[index]
            if deadline is not None and deadline.expired():
                yield JobOutcome(
                    job=job, state="failed",
                    error="deadline exceeded before start",
                    failure_kind=TIMEOUT, attempts=0)
                continue
            attempt = 0
            start = time.perf_counter()
            _JOBS_INFLIGHT.set(1)
            while True:
                attempt += 1
                faults.set_current_attempt(attempt)
                try:
                    payload = _JOB_RUNNER(job.fragment_id, opts)
                except Exception as exc:  # job bugs become failed jobs
                    kind = classify_exception(exc)
                    if retry.allows_retry(kind, attempt) and \
                            (deadline is None or not deadline.expired()):
                        backoff = retry.backoff(attempt)
                        _BACKOFF_WAITS.inc()
                        _BACKOFF_SECONDS.inc(backoff)
                        time.sleep(backoff)
                        continue
                    yield JobOutcome(
                        job=job, state="failed",
                        elapsed_seconds=time.perf_counter() - start,
                        error="%s: %s" % (type(exc).__name__, exc),
                        failure_kind=final_failure_kind(kind),
                        attempts=attempt)
                    break
                yield self._finish(job, payload,
                                   time.perf_counter() - start,
                                   attempts=attempt)
                break
            _JOBS_INFLIGHT.set(0)

    #: parent poll interval while waiting on workers.
    _POLL_SECONDS = 0.02

    def _run_pool(self, jobs: List[QBSJob], pending: List[int],
                  stop_event: Optional[threading.Event]
                  ) -> Iterator[JobOutcome]:
        """Worker processes with explicit job assignment.

        The parent hands each idle worker one job at a time over that
        worker's own duplex pipe, so it always knows which job a worker
        holds and when that job *actually started*.  That is what makes
        per-job timeouts honest: a job is only reported as timed out if
        it ran past the budget, never because it sat queued behind
        someone else's hung job.  Timed-out / crashed / desynced
        workers are terminated and replaced, so the rest of the batch
        always completes — and because no channel is shared, reclaiming
        one worker cannot disturb another's results.

        Failures are classified and fed through the retry policy: a
        retryable failure requeues the job (after its deterministic
        backoff) until the attempt budget — the per-job circuit
        breaker — is spent.  A whole-run deadline fails everything
        still unfinished with a classified timeout.
        """
        opts = options_payload(self.options)
        context = self._context()
        retry = self.retry
        deadline = Deadline.after(self.deadline_seconds)

        def spawn() -> _WorkerHandle:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_conn, opts), daemon=True)
            process.start()
            child_conn.close()
            return _WorkerHandle(process, parent_conn)

        remaining = deque(pending)
        delayed: List[tuple] = []       # (ready_at, index) backoff queue
        attempts = {index: 0 for index in pending}
        outcomes: Dict[int, JobOutcome] = {}
        next_pos = 0

        def register_failure(index: int, kind: str, message: str,
                             elapsed: float) -> None:
            """Retry under policy, or record the final classified
            outcome once the circuit breaker trips."""
            attempt = attempts[index]
            if retry.allows_retry(kind, attempt) and \
                    (deadline is None or not deadline.expired()):
                backoff = retry.backoff(attempt)
                _BACKOFF_WAITS.inc()
                _BACKOFF_SECONDS.inc(backoff)
                delayed.append(
                    (time.perf_counter() + backoff, index))
                return
            outcomes[index] = JobOutcome(
                job=jobs[index], state="failed",
                elapsed_seconds=elapsed, error=message,
                failure_kind=final_failure_kind(kind), attempts=attempt)

        workers = [spawn() for _ in range(min(self.workers, len(pending)))]
        try:
            while next_pos < len(pending):
                if stop_event is not None and stop_event.is_set():
                    return
                # Promote backed-off jobs whose wait is over.
                if delayed:
                    now = time.perf_counter()
                    due = sorted(e for e in delayed if e[0] <= now)
                    if due:
                        delayed = [e for e in delayed if e[0] > now]
                        for _, index in due:
                            remaining.append(index)
                # Whole-run deadline: fail everything unfinished with a
                # classified timeout and wind down.
                if deadline is not None and deadline.expired():
                    now = time.perf_counter()
                    for worker in workers:
                        if worker.index is None:
                            continue
                        index = worker.index
                        worker.index = None
                        outcomes[index] = JobOutcome(
                            job=jobs[index], state="failed",
                            elapsed_seconds=now - worker.assigned_at,
                            error="deadline exceeded after %.3gs"
                                  % self.deadline_seconds,
                            failure_kind=TIMEOUT,
                            attempts=attempts[index])
                        worker.shutdown(kill=True)
                    for index in list(remaining) + [e[1] for e in delayed]:
                        outcomes[index] = JobOutcome(
                            job=jobs[index], state="failed",
                            error="deadline exceeded before start",
                            failure_kind=TIMEOUT,
                            attempts=attempts[index])
                    remaining.clear()
                    delayed = []
                    while next_pos < len(pending):
                        yield outcomes.pop(pending[next_pos])
                        next_pos += 1
                    return
                # Hand jobs to idle workers; a worker that died while
                # idle shows up as a broken pipe and is replaced, with
                # the job going back to the front of the queue.
                for position, worker in enumerate(workers):
                    if worker.index is None and remaining:
                        index = remaining.popleft()
                        attempts[index] += 1
                        try:
                            worker.assign(index, jobs[index].fragment_id,
                                          attempts[index])
                        except (BrokenPipeError, OSError):
                            attempts[index] -= 1
                            remaining.appendleft(index)
                            worker.shutdown(kill=False)
                            workers[position] = spawn()
                # Collect results from whichever workers have them.
                busy = [w for w in workers if w.index is not None]
                _JOBS_INFLIGHT.set(len(busy))
                ready = _connection_wait([w.conn for w in busy],
                                         timeout=self._POLL_SECONDS) \
                    if busy else ()
                for conn in ready:
                    position, worker = next(
                        (p, w) for p, w in enumerate(workers)
                        if w.conn is conn)
                    elapsed = time.perf_counter() - worker.assigned_at
                    index = worker.index
                    try:
                        reply_index, ok, payload = conn.recv()
                    except (EOFError, OSError):
                        # EOF/partial message: the worker died mid-job.
                        worker.index = None
                        worker.shutdown(kill=False)
                        register_failure(
                            index, CRASH,
                            "worker died (exit code %s)"
                            % worker.process.exitcode, elapsed)
                        if remaining or delayed:
                            workers[position] = spawn()
                        continue
                    except Exception as exc:
                        # The reply arrived but would not decode; the
                        # pipe stream may be desynced, so replace the
                        # worker rather than trust its next frame.
                        worker.index = None
                        worker.shutdown(kill=True)
                        register_failure(
                            index, CORRUPT_PAYLOAD,
                            "undecodable worker reply (%s: %s)"
                            % (type(exc).__name__, exc), elapsed)
                        if remaining or delayed:
                            workers[position] = spawn()
                        continue
                    worker.index = None
                    if ok:
                        outcomes[reply_index] = self._finish(
                            jobs[reply_index], payload, elapsed,
                            attempts=attempts[reply_index])
                    else:
                        kind, message = payload \
                            if isinstance(payload, tuple) \
                            else (PERMANENT, payload)
                        register_failure(reply_index, kind, message,
                                         elapsed)
                # Reclaim workers whose job ran past the budget.
                if self.job_timeout is not None:
                    now = time.perf_counter()
                    for position, worker in enumerate(workers):
                        if worker.index is None:
                            continue
                        busy_for = now - worker.assigned_at
                        if busy_for > self.job_timeout:
                            index = worker.index
                            worker.index = None
                            worker.shutdown(kill=True)
                            register_failure(
                                index, TIMEOUT,
                                "timeout after %.3gs" % self.job_timeout,
                                busy_for)
                            if remaining or delayed:
                                workers[position] = spawn()
                # Yield the finished in-order prefix.
                while next_pos < len(pending) \
                        and pending[next_pos] in outcomes:
                    yield outcomes.pop(pending[next_pos])
                    next_pos += 1
        finally:
            _JOBS_INFLIGHT.set(0)
            for worker in workers:
                worker.shutdown(kill=worker.index is not None)

    @staticmethod
    def _context():
        """Fork where available: workers inherit warm module state."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def _finish(self, job: QBSJob, payload: Dict[str, Any],
                elapsed: float, attempts: int = 1) -> JobOutcome:
        if self.cache is not None:
            self.cache.store(job, payload)
        return JobOutcome(job=job, state="done",
                          result=result_from_payload(payload),
                          elapsed_seconds=elapsed, attempts=attempts)
