"""Fan QBS jobs out over a multiprocessing worker pool.

Fragments are independent jobs (the engine is deterministic per
fragment), so the scheduler's only obligations are

* **outcome identity** — a parallel run must produce, fragment for
  fragment, the same status / SQL / marker a sequential run produces.
  Workers return JSON payloads (no AST crosses the process boundary)
  and the sequential path round-trips through the same serialization,
  so both modes yield results of identical shape and content;
* **order stability** — outcomes are delivered in submission order
  regardless of completion order;
* **graceful degradation** — ``workers=1`` runs in-process with no
  multiprocessing machinery at all, and a worker that exceeds the
  per-job timeout surfaces as a *failed job* while the rest of the
  batch completes.

Results are read through / written to a :class:`ResultCache` when one
is attached, which is what makes corpus re-runs incremental.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, Iterator, List, Optional

from repro.core.qbs import QBSOptions, QBSResult
from repro.corpus.registry import CorpusFragment
from repro.service.cache import ResultCache
from repro.service.jobs import (
    QBSJob,
    execute_job,
    job_for,
    options_payload,
    result_from_payload,
)

#: worker entry indirection: tests (and embedders) can swap the runner;
#: fork-started workers inherit the swap.
_JOB_RUNNER = execute_job


def _fork_child(conn, fn, item):
    """fork_map worker: one result (or one pickled exception) per pipe."""
    try:
        payload = (True, fn(item))
    except BaseException as exc:
        payload = (False, exc)
    try:
        conn.send(payload)
    except Exception as send_exc:
        # The payload would not pickle; degrade to a description that
        # says so (a successful-but-unpicklable result must not read
        # like the job failed with its own repr).
        ok, value = payload
        detail = ("result %r is not picklable" % (value,)) if ok \
            else ("exception %s: %s did not pickle"
                  % (type(value).__name__, value))
        try:
            conn.send((False, RuntimeError(
                "fork_map: %s (%s: %s)"
                % (detail, type(send_exc).__name__, send_exc))))
        except Exception:   # pragma: no cover - pipe gone; parent sees EOF
            pass
    finally:
        conn.close()
    # Skip interpreter finalization: tearing down a forked child decrefs
    # the entire inherited heap, copy-on-write-copying it page by page —
    # for a large parent (the whole point of fork workers) that costs
    # more than the job itself.  The result is already on the pipe and
    # the child owns no other resources.
    os._exit(0)


def fork_map(fn, items):
    """Apply ``fn`` to each item in its own forked child process.

    The generic fan-out primitive underneath the scheduler's pool,
    exposed for other CPU-bound batch work — the SQL engine's
    partition-parallel aggregates run their per-partition tasks through
    it.  Fork semantics are the point: children inherit the parent's
    memory image, so ``fn`` and ``items`` never pickle; only each
    *result* crosses the process boundary, over the scheduler's
    one-pipe-per-worker convention (no channel is shared, so one
    worker's death cannot corrupt another's result).

    Results come back in item order.  A child that raises has its
    exception re-raised here; a child that dies without replying raises
    ``RuntimeError``.  Falls back to an inline map when fork is
    unavailable (non-POSIX) or when there is at most one item.
    """
    items = list(items)
    if len(items) <= 1:
        return [fn(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [fn(item) for item in items]

    workers = []
    for item in items:
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(target=_fork_child,
                                  args=(sender, fn, item), daemon=True)
        process.start()
        sender.close()
        workers.append((process, receiver))

    results = []
    failure = None
    for process, receiver in workers:
        try:
            ok, payload = receiver.recv()
        except (EOFError, OSError):
            ok, payload = False, RuntimeError(
                "fork_map worker died without replying")
        receiver.close()
        process.join()
        if not ok and failure is None:
            failure = payload
        results.append(payload if ok else None)
    if failure is not None:
        raise failure
    return results


def _worker_main(conn, options_dict):
    """Worker process: serve explicitly-assigned jobs until the parent
    sends the ``None`` shutdown sentinel (or terminates us).

    Jobs arrive and results return over this worker's own duplex pipe —
    no channel is shared between workers, so terminating one worker
    can never corrupt another's results.  The sentinel, not pipe EOF,
    ends the loop: under fork, sibling workers inherit copies of each
    other's pipe fds, so the parent closing its end does not reliably
    produce EOF here.
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, fragment_id = item
        try:
            payload = _JOB_RUNNER(fragment_id, options_dict)
        except Exception as exc:
            reply = (index, False, "%s: %s" % (type(exc).__name__, exc))
        else:
            reply = (index, True, payload)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _WorkerHandle:
    """Parent-side view of one worker and the job it currently holds."""

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.index: Optional[int] = None   # assigned job, None when idle
        self.assigned_at = 0.0

    def assign(self, index: int, fragment_id: str) -> None:
        self.index = index
        self.assigned_at = time.perf_counter()
        self.conn.send((index, fragment_id))

    def shutdown(self, kill: bool) -> None:
        if kill:
            self.process.terminate()
        else:
            try:
                self.conn.send(None)    # shutdown sentinel
            except (BrokenPipeError, OSError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join()


@dataclass
class JobOutcome:
    """What the scheduler reports for one job."""

    job: QBSJob
    state: str                        # "done" | "failed"
    result: Optional[QBSResult] = None
    from_cache: bool = False
    elapsed_seconds: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.state == "done"


def outcome_fingerprint(outcomes: List["JobOutcome"]) -> List[tuple]:
    """The identity contract runs are judged on, one tuple per job:
    (fragment id, QBS status, Appendix-A marker, SQL text).

    Parallel, sequential and cache-served runs of the same batch must
    produce equal fingerprints; the benchmark and the test suite both
    assert through this single definition.
    """
    out = []
    for outcome in outcomes:
        result = outcome.result
        out.append((outcome.job.fragment_id,
                    result.status.value if result else "job-failed",
                    result.status.marker if result else "!",
                    result.sql.sql if result and result.sql else None))
    return out


@dataclass
class RunReport:
    """Aggregate accounting for one scheduler run."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.ok and not o.from_cache)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)


class Scheduler:
    """Run corpus fragments through QBS, optionally in parallel."""

    def __init__(self, workers: int = 1,
                 job_timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None,
                 options: Optional[QBSOptions] = None,
                 refresh: bool = False):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.job_timeout = job_timeout
        self.cache = cache
        self.options = options or QBSOptions()
        #: recompute even on cache hit (results are re-stored).
        self.refresh = refresh

    # -- public API --------------------------------------------------------

    def run(self, fragments: List[CorpusFragment]) -> RunReport:
        """Run a batch; outcomes come back in submission order."""
        start = time.perf_counter()
        outcomes = list(self.run_iter(fragments))
        return RunReport(outcomes=outcomes,
                         wall_seconds=time.perf_counter() - start)

    def run_iter(self, fragments: List[CorpusFragment],
                 stop_event: Optional[threading.Event] = None
                 ) -> Iterator[JobOutcome]:
        """Yield outcomes in submission order as they become available.

        ``stop_event`` (settable from another thread, e.g. the async
        facade's cancelled stream) makes the run wind down early: no
        new jobs start, workers are reclaimed, and the iterator ends
        without yielding the remaining outcomes.
        """
        jobs = [job_for(cf, self.options) for cf in fragments]
        cached: Dict[int, JobOutcome] = {}
        pending: List[int] = []
        for index, job in enumerate(jobs):
            payload = None
            if self.cache is not None and not self.refresh:
                payload = self.cache.load(job)
            if payload is not None:
                cached[index] = JobOutcome(
                    job=job, state="done",
                    result=result_from_payload(payload),
                    from_cache=True,
                    elapsed_seconds=payload.get("elapsed_seconds", 0.0))
            else:
                pending.append(index)

        if not pending:
            yield from (cached[i] for i in range(len(jobs)))
            return

        if self.workers == 1:
            compute = self._run_inline(jobs, pending, stop_event)
        else:
            compute = self._run_pool(jobs, pending, stop_event)

        # Interleave back into submission order.  The pool path computes
        # lazily, so streaming consumers see outcomes as soon as the
        # next in-order job finishes.
        try:
            for index in range(len(jobs)):
                if index in cached:
                    yield cached[index]
                else:
                    yield next(compute)
        except StopIteration:   # compute wound down early (stop_event)
            return

    # -- execution strategies ---------------------------------------------

    def _run_inline(self, jobs: List[QBSJob], pending: List[int],
                    stop_event: Optional[threading.Event]
                    ) -> Iterator[JobOutcome]:
        """In-process fallback: no pool, no pickling overhead."""
        opts = options_payload(self.options)
        for index in pending:
            if stop_event is not None and stop_event.is_set():
                return
            job = jobs[index]
            start = time.perf_counter()
            try:
                payload = _JOB_RUNNER(job.fragment_id, opts)
            except Exception as exc:  # job bugs become failed jobs
                yield JobOutcome(job=job, state="failed",
                                 elapsed_seconds=time.perf_counter() - start,
                                 error="%s: %s" % (type(exc).__name__, exc))
                continue
            yield self._finish(job, payload,
                               time.perf_counter() - start)

    #: parent poll interval while waiting on workers.
    _POLL_SECONDS = 0.02

    def _run_pool(self, jobs: List[QBSJob], pending: List[int],
                  stop_event: Optional[threading.Event]
                  ) -> Iterator[JobOutcome]:
        """Worker processes with explicit job assignment.

        The parent hands each idle worker one job at a time over that
        worker's own duplex pipe, so it always knows which job a worker
        holds and when that job *actually started*.  That is what makes
        per-job timeouts honest: a job is only reported as timed out if
        it ran past the budget, never because it sat queued behind
        someone else's hung job.  Timed-out (or crashed) workers are
        terminated and replaced, so the rest of the batch always
        completes — and because no channel is shared, reclaiming one
        worker cannot disturb another's results.
        """
        opts = options_payload(self.options)
        context = self._context()

        def spawn() -> _WorkerHandle:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_conn, opts), daemon=True)
            process.start()
            child_conn.close()
            return _WorkerHandle(process, parent_conn)

        remaining = deque(pending)
        outcomes: Dict[int, JobOutcome] = {}
        next_pos = 0
        workers = [spawn() for _ in range(min(self.workers, len(pending)))]
        try:
            while next_pos < len(pending):
                if stop_event is not None and stop_event.is_set():
                    return
                # Hand jobs to idle workers; a worker that died while
                # idle shows up as a broken pipe and is replaced, with
                # the job going back to the front of the queue.
                for position, worker in enumerate(workers):
                    if worker.index is None and remaining:
                        index = remaining.popleft()
                        try:
                            worker.assign(index, jobs[index].fragment_id)
                        except (BrokenPipeError, OSError):
                            remaining.appendleft(index)
                            worker.shutdown(kill=False)
                            workers[position] = spawn()
                # Collect results from whichever workers have them.
                busy = [w for w in workers if w.index is not None]
                ready = _connection_wait([w.conn for w in busy],
                                         timeout=self._POLL_SECONDS) \
                    if busy else ()
                for conn in ready:
                    position, worker = next(
                        (p, w) for p, w in enumerate(workers)
                        if w.conn is conn)
                    elapsed = time.perf_counter() - worker.assigned_at
                    try:
                        index, ok, payload = conn.recv()
                    except Exception:
                        # EOF/partial message: the worker died mid-job.
                        worker.shutdown(kill=False)
                        outcomes[worker.index] = JobOutcome(
                            job=jobs[worker.index], state="failed",
                            elapsed_seconds=elapsed,
                            error="worker died (exit code %s)"
                                  % worker.process.exitcode)
                        worker.index = None
                        if remaining:
                            workers[position] = spawn()
                        continue
                    worker.index = None
                    if ok:
                        outcomes[index] = self._finish(jobs[index],
                                                       payload, elapsed)
                    else:
                        outcomes[index] = JobOutcome(
                            job=jobs[index], state="failed",
                            elapsed_seconds=elapsed, error=payload)
                # Reclaim workers whose job ran past the budget.
                if self.job_timeout is not None:
                    now = time.perf_counter()
                    for position, worker in enumerate(workers):
                        if worker.index is None:
                            continue
                        busy_for = now - worker.assigned_at
                        if busy_for > self.job_timeout:
                            outcomes[worker.index] = JobOutcome(
                                job=jobs[worker.index], state="failed",
                                elapsed_seconds=busy_for,
                                error="timeout after %.3gs"
                                      % self.job_timeout)
                            worker.index = None
                            worker.shutdown(kill=True)
                            if remaining:
                                workers[position] = spawn()
                # Yield the finished in-order prefix.
                while next_pos < len(pending) \
                        and pending[next_pos] in outcomes:
                    yield outcomes.pop(pending[next_pos])
                    next_pos += 1
        finally:
            for worker in workers:
                worker.shutdown(kill=worker.index is not None)

    @staticmethod
    def _context():
        """Fork where available: workers inherit warm module state."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def _finish(self, job: QBSJob, payload: Dict[str, Any],
                elapsed: float) -> JobOutcome:
        if self.cache is not None:
            self.cache.store(job, payload)
        return JobOutcome(job=job, state="done",
                          result=result_from_payload(payload),
                          elapsed_seconds=elapsed)
