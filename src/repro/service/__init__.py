"""The QBS service layer: parallel, cached, async-facing corpus runs.

Modules:

* :mod:`repro.service.jobs` — content-addressed job model and JSON
  result transport;
* :mod:`repro.service.cache` — persistent on-disk result store;
* :mod:`repro.service.scheduler` — worker-pool fan-out with per-job
  timeouts and an in-process fallback, plus ``fork_map``, the generic
  fork primitive the SQL engine's partial aggregation reuses;
* :mod:`repro.service.faults` — the resilience layer both substrates
  share: the failure taxonomy, :class:`RetryPolicy`,
  :class:`Deadline`, and the deterministic fault-injection harness
  (:class:`FaultPlan`) the chaos suites drive;
* :mod:`repro.service.facade` — ``submit``/``gather``/``stream``
  coroutines for event-loop callers;
* :mod:`repro.service.cli` — the ``repro-qbs`` command.

Invariants every scheduler/cache change must preserve (pinned by
``tests/service/`` and ``benchmarks/bench_qbs_parallel.py``):

* **outcome identity** — parallel, sequential and cache-served runs of
  the same batch produce equal outcome fingerprints (per-fragment
  status, Appendix-A marker, SQL text; see
  ``scheduler.outcome_fingerprint``).  Workers return JSON payloads
  and the sequential path round-trips the same serialization, so no
  mode ever sees richer data than another.
* **submission-order delivery** — outcomes are yielded in the order
  jobs were submitted, regardless of completion order; streaming
  consumers see the next in-order outcome as soon as it exists.
* **honest timeouts** — a job is reported timed out only if it ran
  past its budget, never because it queued behind someone else's hung
  job; timed-out and crashed workers become *failed jobs* while the
  rest of the batch completes.
* **content-hash invalidation** — cache keys hash the compiled kernel
  fragment plus the full ``QBSOptions`` fingerprint, so edits
  invalidate exactly the affected entries and corrupt entries read as
  misses.
* **classified failure** — every failed job carries a final taxonomy
  code (``timeout | crash | corrupt_payload | transient_exhausted |
  permanent``); retryable failures retry under the attached
  :class:`RetryPolicy` (deterministic backoff, per-job circuit
  breaker) and fault-injected runs converge to the fault-free outcome
  fingerprint (``tests/service/test_faults.py``).
"""

from repro.service.cache import ResultCache, default_cache_dir
from repro.service.facade import QBSService
from repro.service.faults import Deadline, FaultPlan, RetryPolicy
from repro.service.jobs import QBSJob, job_for, jobs_for
from repro.service.scheduler import JobOutcome, RunReport, Scheduler

__all__ = [
    "Deadline",
    "FaultPlan",
    "JobOutcome",
    "QBSJob",
    "QBSService",
    "ResultCache",
    "RetryPolicy",
    "RunReport",
    "Scheduler",
    "default_cache_dir",
    "job_for",
    "jobs_for",
]
