"""The QBS service layer: parallel, cached, async-facing corpus runs.

Modules:

* :mod:`repro.service.jobs` — content-addressed job model and JSON
  result transport;
* :mod:`repro.service.cache` — persistent on-disk result store;
* :mod:`repro.service.scheduler` — worker-pool fan-out with per-job
  timeouts and an in-process fallback;
* :mod:`repro.service.facade` — ``submit``/``gather``/``stream``
  coroutines for event-loop callers;
* :mod:`repro.service.cli` — the ``repro-qbs`` command.
"""

from repro.service.cache import ResultCache, default_cache_dir
from repro.service.facade import QBSService
from repro.service.jobs import QBSJob, job_for, jobs_for
from repro.service.scheduler import JobOutcome, RunReport, Scheduler

__all__ = [
    "JobOutcome",
    "QBSJob",
    "QBSService",
    "ResultCache",
    "RunReport",
    "Scheduler",
    "default_cache_dir",
    "job_for",
    "jobs_for",
]
