"""The service job model: content-addressed QBS work units.

A *job* is one synthesize-prove-translate run over one corpus fragment
under one driver configuration.  Jobs are identified by a content hash
over the compiled kernel fragment (the code QBS actually reasons
about) and the full :class:`~repro.core.qbs.QBSOptions` fingerprint, so

* editing a fragment's source changes its key (stale cache entries are
  never served),
* changing any driver or synthesis knob changes every key (results are
  only reused under the exact configuration that produced them),
* re-running an unchanged corpus maps onto the exact same key set,
  which is what makes the persistent cache incremental.

Results cross process and disk boundaries as JSON via
:meth:`QBSResult.to_json_dict` / :meth:`QBSResult.from_json_dict`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.qbs import QBS, QBSOptions, QBSResult
from repro.core.synthesizer import SynthesisOptions
from repro.corpus.registry import (
    CorpusFragment,
    compile_fragment,
    fragment_by_id,
    run_fragment_through_qbs,
)
from repro.frontend import FrontendRejection
from repro.kernel.pretty import pretty_fragment

#: bump when the serialized result layout changes incompatibly.
JOB_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class QBSJob:
    """One schedulable unit: a fragment id plus its content-hash key."""

    fragment_id: str
    app: str
    key: str                 # sha256 over kernel text + options
    kernel_sha: str          # sha256 over the kernel text alone
    options_json: str        # canonical QBSOptions fingerprint


def options_payload(options: QBSOptions) -> Dict[str, Any]:
    """The complete, JSON-safe option fingerprint (nested dataclasses)."""
    return dataclasses.asdict(options)


def options_from_payload(payload: Dict[str, Any]) -> QBSOptions:
    """Rebuild driver options in a worker process."""
    synthesis = SynthesisOptions(**payload["synthesis"])
    rest = {k: v for k, v in payload.items() if k != "synthesis"}
    return QBSOptions(synthesis=synthesis, **rest)


def _canonical_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: fragment_id -> kernel rendering.  Corpus fragments are static per
#: process, but job hashing happens on every run/submit/status call —
#: the memo keeps repeated hashing from re-running the frontend
#: (mirrors registry._REGISTRY_CACHE).
_KERNEL_TEXT_CACHE: Dict[str, str] = {}


def kernel_text(corpus_fragment: CorpusFragment) -> str:
    """The canonical content of a fragment: its kernel-language form.

    Frontend-rejected fragments have no kernel form; their content is
    the rejection itself, which still changes when the source (and
    hence the rejection reason) does.
    """
    cached = _KERNEL_TEXT_CACHE.get(corpus_fragment.fragment_id)
    if cached is None:
        try:
            cached = pretty_fragment(compile_fragment(corpus_fragment))
        except FrontendRejection as exc:
            cached = "// frontend rejection: %s" % exc.reason
        _KERNEL_TEXT_CACHE[corpus_fragment.fragment_id] = cached
    return cached


def job_for(corpus_fragment: CorpusFragment,
            options: Optional[QBSOptions] = None) -> QBSJob:
    """Content-hash one fragment + configuration into a stable job."""
    options = options or QBSOptions()
    text = kernel_text(corpus_fragment)
    options_json = _canonical_json(options_payload(options))
    kernel_sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
    key = hashlib.sha256(
        ("v%d\n%s\n%s\n%s" % (JOB_SCHEMA_VERSION,
                              corpus_fragment.fragment_id,
                              kernel_sha,
                              options_json)).encode("utf-8")).hexdigest()
    return QBSJob(fragment_id=corpus_fragment.fragment_id,
                  app=corpus_fragment.app, key=key, kernel_sha=kernel_sha,
                  options_json=options_json)


def jobs_for(fragments: List[CorpusFragment],
             options: Optional[QBSOptions] = None) -> List[QBSJob]:
    options = options or QBSOptions()
    return [job_for(cf, options) for cf in fragments]


def execute_job(fragment_id: str,
                options_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job to a JSON result payload.

    This is the function worker processes execute; everything it takes
    and returns is picklable-by-value, so no AST ever crosses the
    process boundary.
    """
    corpus_fragment = fragment_by_id(fragment_id)
    qbs = QBS(options_from_payload(options_dict))
    result = run_fragment_through_qbs(corpus_fragment, qbs)
    return result.to_json_dict()


def result_from_payload(payload: Dict[str, Any]) -> QBSResult:
    return QBSResult.from_json_dict(payload)
