"""The resilience layer: failure taxonomy, retries, deadlines, chaos.

Both execution substrates — the service scheduler's worker pool and the
SQL engine's partition-parallel fan-out — fail in the same small set of
ways, so this module gives them one shared vocabulary and one set of
policies:

* a **failure taxonomy** (`TIMEOUT | CRASH | CORRUPT_PAYLOAD |
  TRANSIENT_EXHAUSTED | PERMANENT`) with typed exceptions
  (:class:`TaskFault` and subclasses) that carry their classification;
* a :class:`RetryPolicy` — bounded attempts with deterministic
  exponential backoff and a retryable-vs-permanent split.  The attempt
  bound doubles as the per-job **circuit breaker**: a poison job stops
  consuming workers after ``max_attempts`` instead of respawn-looping;
* a :class:`Deadline` — a monotonic-clock budget threaded from the
  facade / scheduler / executor down into partition tasks, so a hung
  substrate surfaces a *classified timeout* instead of blocking;
* a :class:`FaultPlan` — a **deterministic fault-injection harness**.
  Faults are decided by a seeded hash over the job id / partition
  index, never by wall-clock randomness, so a chaos run is exactly
  reproducible: the same plan injects the same crash into the same
  job on the same attempt, every time.

Everything here is stdlib-only; both ``repro.service.scheduler`` and
``repro.sql.plan.parallel`` import it without creating cycles.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

# -- failure taxonomy ----------------------------------------------------------

#: The job/partition ran past its per-attempt or whole-run budget.
TIMEOUT = "timeout"
#: The worker process died (nonzero exit, signal, EOF before replying).
CRASH = "crash"
#: A result crossed the process boundary but could not be decoded
#: (unpicklable value, truncated or garbage pipe payload).
CORRUPT_PAYLOAD = "corrupt_payload"
#: In-flight classification of a retryable application error
#: (:class:`TransientFault`); never final — exhausting the attempt
#: budget converts it to :data:`TRANSIENT_EXHAUSTED`.
TRANSIENT = "transient"
#: A transient error survived every allowed attempt.
TRANSIENT_EXHAUSTED = "transient_exhausted"
#: A deterministic application error: retrying cannot help.
PERMANENT = "permanent"

#: Kinds worth retrying: environmental failures, not logic errors.
RETRYABLE_KINDS = frozenset((TIMEOUT, CRASH, CORRUPT_PAYLOAD, TRANSIENT))

#: The codes a *final* failure classification can carry.
FAILURE_KINDS = (TIMEOUT, CRASH, CORRUPT_PAYLOAD, TRANSIENT_EXHAUSTED,
                 PERMANENT)

#: Injection-only kind: the task stalls (surfaces as TIMEOUT when a
#: timeout or deadline is watching, as slowness otherwise).
HANG = "hang"

#: What a :class:`FaultPlan` may inject.
INJECTABLE_KINDS = (CRASH, HANG, TRANSIENT, CORRUPT_PAYLOAD)


def final_failure_kind(kind: str) -> str:
    """The taxonomy code a failure reports once retries are exhausted."""
    return TRANSIENT_EXHAUSTED if kind == TRANSIENT else kind


# -- typed faults --------------------------------------------------------------


class TaskFault(RuntimeError):
    """Base class for classified execution failures.

    Subclassing ``RuntimeError`` keeps pre-taxonomy callers working:
    code that caught the scheduler's old bare ``RuntimeError`` still
    catches the typed replacements.
    """

    kind = PERMANENT


class TransientFault(TaskFault):
    """A retryable application error: raise it from a job to request a
    retry under the active :class:`RetryPolicy`."""

    kind = TRANSIENT


class WorkerCrash(TaskFault):
    """A worker process died before delivering its result."""

    kind = CRASH


class CorruptPayload(TaskFault):
    """A result crossed the pipe but could not be decoded."""

    kind = CORRUPT_PAYLOAD


class TaskTimeout(TaskFault):
    """A job or partition ran past its budget."""

    kind = TIMEOUT


class DeadlineExceeded(TaskTimeout):
    """A whole-run :class:`Deadline` expired with work unfinished."""


class PermanentFault(TaskFault):
    """A deterministic failure transported across a process boundary
    (e.g. a child exception that could not itself be pickled)."""

    kind = PERMANENT


class SubstrateUnavailable(TaskFault):
    """A parallel substrate could not start (fork refused, thread
    limit) — the degradation ladder's cue to fall back, never a final
    classification by itself."""

    kind = CRASH


def classify_exception(exc: BaseException) -> str:
    """Map an exception to its taxonomy kind (PERMANENT by default)."""
    if isinstance(exc, TaskFault):
        return exc.kind
    return PERMANENT


# -- deadlines -----------------------------------------------------------------


class Deadline:
    """A monotonic-clock budget shared down a call tree.

    >>> Deadline.after(0).expired()
    True
    >>> Deadline.after(None) is None
    True
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline ``seconds`` from now; ``None`` stays ``None``."""
        if seconds is None:
            return None
        return cls(time.perf_counter() + seconds)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - time.perf_counter())

    def expired(self) -> bool:
        return time.perf_counter() >= self.expires_at

    def check(self, what: str = "work") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded("deadline expired before %s finished"
                                   % what)


# -- retry policy --------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts *total* attempts (1 = never retry) and is
    the circuit breaker: once a job has consumed its budget it fails
    permanently with its final taxonomy code instead of cycling
    through fresh workers forever.  Backoff is a pure function of the
    attempt number — no jitter, no wall-clock state — so retry
    schedules are exactly reproducible:

    >>> policy = RetryPolicy(max_attempts=4)
    >>> [policy.backoff(attempt) for attempt in (1, 2, 3)]
    [0.05, 0.1, 0.2]
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        return min(self.backoff_base
                   * self.backoff_multiplier ** (attempt - 1),
                   self.backoff_cap)

    def retryable(self, kind: str) -> bool:
        return kind in RETRYABLE_KINDS

    def allows_retry(self, kind: str, attempt: int) -> bool:
        """Whether a failure of ``kind`` on attempt ``attempt`` may
        try again under this policy."""
        return self.retryable(kind) and attempt < self.max_attempts


#: The seed behaviour: one attempt, no retries (mode flags, not forks).
NO_RETRY = RetryPolicy(max_attempts=1)


# -- per-process / per-attempt bookkeeping -------------------------------------

#: True in forked worker/child processes, where injected crashes are
#: real ``os._exit`` calls; False in the parent, where a crash is
#: simulated by raising :class:`WorkerCrash` (exiting would take the
#: whole engine down, not one worker).
_IN_CHILD_PROCESS = False

_ATTEMPT = threading.local()


def mark_child_process() -> None:
    """Record that this process is a forked worker (set by the
    scheduler's worker main and by ``fork_map`` children)."""
    global _IN_CHILD_PROCESS
    _IN_CHILD_PROCESS = True


def in_child_process() -> bool:
    return _IN_CHILD_PROCESS


def set_current_attempt(attempt: int) -> None:
    """Publish the attempt number before invoking a job runner, so
    fault plans can decide per (job, attempt) inside the worker."""
    _ATTEMPT.value = attempt


def current_attempt() -> int:
    return getattr(_ATTEMPT, "value", 1)


# -- deterministic fault injection ---------------------------------------------


def _fraction(seed: int, key: str) -> float:
    """A stable draw in [0, 1) from (seed, key) — sha256, no clocks."""
    digest = hashlib.sha256(("%s:%s" % (seed, key)).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") / float(1 << 64)


@dataclass
class FaultPlan:
    """Deterministic fault injection, seeded per job-id / partition key.

    Rate-based faults draw once per key from a seeded hash (the same
    key always draws the same fault under the same seed) and *heal*
    after ``faulty_attempts`` attempts — the shape retries must
    converge on.  ``faults`` pins specific keys to specific kinds with
    the same healing rule; ``poison`` entries never heal, which is how
    chaos suites model jobs the circuit breaker must give up on.

    >>> plan = FaultPlan(seed=11, crash=0.3, transient=0.2)
    >>> draws = [plan.decide("job-%d" % i) for i in range(6)]
    >>> draws == [plan.decide("job-%d" % i) for i in range(6)]
    True
    >>> FaultPlan(poison={"j": "crash"}).decide("j", attempt=99)
    'crash'
    >>> FaultPlan(faults={"j": "crash"}).decide("j", attempt=2) is None
    True
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    transient: float = 0.0
    corrupt: float = 0.0
    #: rate-based and ``faults`` injections fire on attempts
    #: ``1..faulty_attempts``, then heal.
    faulty_attempts: int = 1
    #: how long an injected hang stalls (keep small in tests).
    hang_seconds: float = 30.0
    #: exit code injected crashes die with.
    crash_exit_code: int = 23
    #: key -> kind, healing like rate-based faults.
    faults: Mapping[str, str] = field(default_factory=dict)
    #: key -> kind, never healing (poison jobs).
    poison: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self):
        for rate in (self.crash, self.hang, self.transient, self.corrupt):
            if rate < 0:
                raise ValueError("fault rates must be >= 0")
        if self.crash + self.hang + self.transient + self.corrupt > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        for mapping in (self.faults, self.poison):
            for key, kind in mapping.items():
                if kind not in INJECTABLE_KINDS:
                    raise ValueError(
                        "cannot inject %r for %r (one of %s)"
                        % (kind, key, ", ".join(INJECTABLE_KINDS)))

    def decide(self, key: str, attempt: int = 1) -> Optional[str]:
        """The fault (if any) this plan injects for ``key`` on
        ``attempt`` — a pure function of (plan, key, attempt)."""
        kind = self.poison.get(key)
        if kind is not None:
            return kind
        if attempt > self.faulty_attempts:
            return None
        kind = self.faults.get(key)
        if kind is not None:
            return kind
        if self.crash + self.hang + self.transient + self.corrupt <= 0:
            return None
        draw = _fraction(self.seed, key)
        threshold = 0.0
        for kind, rate in ((CRASH, self.crash), (HANG, self.hang),
                           (TRANSIENT, self.transient),
                           (CORRUPT_PAYLOAD, self.corrupt)):
            threshold += rate
            if draw < threshold:
                return kind
        return None


def _refuse_unpickle(key: str) -> None:
    raise RuntimeError("injected corrupt payload for %r" % (key,))


class CorruptResult:
    """A payload that pickles cleanly but explodes when unpickled —
    the reproducible stand-in for a truncated/garbage pipe message.
    On a by-reference substrate (threads, serial) it never occurs;
    corruption is a transport property, so :func:`perturb` raises
    :class:`CorruptPayload` directly there instead."""

    def __init__(self, key: str = "?"):
        self.key = key

    def __reduce__(self):
        return (_refuse_unpickle, (self.key,))


def perturb(plan: Optional[FaultPlan], key: str,
            attempt: Optional[int] = None) -> Optional[Any]:
    """Execute the plan's fault for (key, attempt), if any.

    Call at the top of a job runner or partition task.  Returns a
    poison payload to send in place of the real result (corrupt
    injection inside a forked child), or ``None`` when the caller
    should proceed normally.  Crash injection is a real ``os._exit``
    inside forked children and a raised :class:`WorkerCrash` in the
    parent (threads / serial substrates).
    """
    if plan is None:
        return None
    if attempt is None:
        attempt = current_attempt()
    kind = plan.decide(key, attempt)
    if kind is None:
        return None
    if kind == CRASH:
        if in_child_process():
            os._exit(plan.crash_exit_code)
        raise WorkerCrash("injected crash for %r (attempt %d)"
                          % (key, attempt))
    if kind == HANG:
        time.sleep(plan.hang_seconds)
        return None
    if kind == TRANSIENT:
        raise TransientFault("injected transient fault for %r (attempt %d)"
                             % (key, attempt))
    # CORRUPT_PAYLOAD
    if in_child_process():
        return CorruptResult(key)
    raise CorruptPayload("injected corrupt payload for %r (attempt %d)"
                         % (key, attempt))


# -- installed plan (consulted by the parallel substrates) ---------------------

_INSTALLED_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install a process-wide plan; returns the previous one.  Forked
    children inherit the installed plan, which is what lets one plan
    drive faults on both sides of the pipe."""
    global _INSTALLED_PLAN
    previous = _INSTALLED_PLAN
    _INSTALLED_PLAN = plan
    return previous


def installed_plan() -> Optional[FaultPlan]:
    return _INSTALLED_PLAN


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(plan): ...`` — scoped chaos for tests."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


# -- transported error payloads ------------------------------------------------


def error_payload(kind: str, detail: str) -> Dict[str, str]:
    """A structured, always-picklable error to ship over a pipe when
    the real exception (or result) cannot be."""
    return {"kind": kind, "detail": detail}


def fault_from_payload(payload: Mapping[str, str]) -> TaskFault:
    """Rebuild the typed fault a child shipped as plain data."""
    kind = payload.get("kind", PERMANENT)
    detail = payload.get("detail", "unknown child failure")
    if kind == CORRUPT_PAYLOAD:
        return CorruptPayload(detail)
    if kind == TRANSIENT:
        return TransientFault(detail)
    return PermanentFault(detail)
