"""``repro-qbs`` — drive the QBS corpus as a service.

Subcommands::

    repro-qbs run            # run fragments through the scheduler + cache
    repro-qbs status         # corpus coverage of the current cache
    repro-qbs cache          # cache maintenance: info | list | clear | gc
    repro-qbs metrics        # corpus run + metrics registry snapshot
    repro-qbs bench-report   # perf-trajectory trend report
    repro-qbs serve-metrics  # live ops endpoint (/metrics, /healthz, ...)

``run`` prints the Appendix-A style marker table (X translated,
* failed, † rejected) with per-fragment timing, cache provenance and
the inferred SQL, then the Fig. 13 summary counts.  ``--check`` makes
mismatches against the paper's expected outcomes (and failed jobs)
exit non-zero, which is what ``make serve-smoke`` relies on.
``--json`` swaps the table for a machine-consumable JSON document (one
entry per fragment, carrying the ``QBSResult.to_json_dict`` payload).

``cache gc --max-bytes N`` evicts oldest-modification-time entries
until the store fits the budget — the persistent cache otherwise grows
without bound across corpus versions.

Observability (``docs/observability.md``): ``run --trace out.json``
executes the batch under a trace and writes the stitched span tree as
JSON; ``run --profile out.txt`` additionally samples the run and
writes a collapsed-stack profile (``.json`` for the JSON summary);
``run --metrics`` appends the metrics registry's Prometheus text
exposition (or a ``"metrics"`` key under ``--json``).  ``metrics`` is
the standalone form: a corpus run followed by the registry snapshot
with derived cache-hit-ratio / retry / degradation summary lines.
``bench-report`` reads ``BENCH_HISTORY.jsonl`` (appended by every
bench artifact write) and classifies each measurement's latest run
against its rolling baseline; ``serve-metrics`` serves the live ops
endpoint until interrupted.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from collections import Counter
from typing import List, Optional

from repro.core.qbs import QBSOptions
from repro.corpus.registry import select_fragments
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.cache import ResultCache, default_cache_dir
from repro.service.faults import RetryPolicy
from repro.service.jobs import job_for
from repro.service.scheduler import Scheduler


def _add_selection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", default="all",
                        choices=("all", "wilos", "itracker", "advanced"),
                        help="restrict to one application's fragments")
    parser.add_argument("--fragments", default=None, metavar="ID[,ID...]",
                        help="comma-separated fragment ids (e.g. w46,i2)")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return number


def _nonnegative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return number


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="result cache location (default: %s, or "
                             "$REPRO_QBS_CACHE_DIR)" % default_cache_dir())
    parser.add_argument("--no-cache", action="store_true",
                        help="run without reading or writing the cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qbs",
        description="Run the QBS corpus pipeline as a parallel, "
                    "cached service.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run fragments through QBS")
    _add_selection_args(run)
    _add_cache_args(run)
    run.add_argument("--workers", type=_positive_int, default=1,
                     metavar="N",
                     help="worker processes (1 = in-process, no pool)")
    run.add_argument("--timeout", type=float, default=None, metavar="SEC",
                     help="per-job timeout; timed-out jobs fail, the "
                          "batch continues (needs --workers >= 2)")
    run.add_argument("--retries", type=_nonnegative_int, default=0,
                     metavar="N",
                     help="retry retryable failures (crash/timeout/"
                          "corrupt/transient) up to N times per job "
                          "with deterministic backoff; 0 = seed "
                          "behaviour, fail on the first attempt")
    run.add_argument("--deadline", type=float, default=None,
                     metavar="SEC",
                     help="whole-run budget; jobs unfinished at the "
                          "deadline fail with a classified timeout "
                          "instead of blocking the run")
    run.add_argument("--refresh", action="store_true",
                     help="recompute even on cache hit")
    run.add_argument("--check", action="store_true",
                     help="exit non-zero on failed jobs or outcomes "
                          "that disagree with the paper's table")
    run.add_argument("--expect-cached", action="store_true",
                     help="exit non-zero if anything had to be "
                          "computed (cache-regression canary)")
    run.add_argument("--quiet", action="store_true",
                     help="summary only, no per-fragment table")
    run.add_argument("--json", action="store_true", dest="json_output",
                     help="emit one JSON document (per-fragment results "
                          "+ summary) instead of the table")
    run.add_argument("--trace", default=None, metavar="PATH",
                     dest="trace_path",
                     help="run under a trace and write the span tree "
                          "as JSON to PATH (job spans; plus synthesis "
                          "and query spans with --workers 1)")
    run.add_argument("--profile", default=None, metavar="PATH",
                     dest="profile_path",
                     help="sample the run with the span-attributed "
                          "profiler and write collapsed stacks to PATH "
                          "(.json extension writes the JSON summary "
                          "instead); implies an ambient trace; pool "
                          "workers are not sampled, so pair with "
                          "--workers 1 for full attribution")
    run.add_argument("--metrics", action="store_true",
                     dest="show_metrics",
                     help="print the metrics registry after the run "
                          "(text exposition, or a 'metrics' key with "
                          "--json)")

    metrics_cmd = sub.add_parser(
        "metrics",
        help="run fragments, then print the metrics registry snapshot")
    _add_selection_args(metrics_cmd)
    _add_cache_args(metrics_cmd)
    metrics_cmd.add_argument("--workers", type=_positive_int, default=1,
                             metavar="N",
                             help="worker processes for the run")
    metrics_cmd.add_argument("--retries", type=_nonnegative_int,
                             default=0, metavar="N",
                             help="retry budget for the run (as in run)")
    metrics_cmd.add_argument("--refresh", action="store_true",
                             help="recompute even on cache hit")
    metrics_cmd.add_argument("--json", action="store_true",
                             dest="json_output",
                             help="JSON snapshot instead of the text "
                                  "exposition")

    bench_report = sub.add_parser(
        "bench-report",
        help="perf-trajectory report over BENCH_HISTORY.jsonl")
    bench_report.add_argument("--dir", default=None, metavar="PATH",
                              dest="history_dir",
                              help="where the history lives (default: "
                                   "repo root, or $REPRO_BENCH_DIR)")
    bench_report.add_argument("--bench", default=None, metavar="NAME",
                              help="restrict to one benchmark's series")
    bench_report.add_argument("--window", type=_positive_int, default=5,
                              metavar="N",
                              help="rolling-baseline window: median of "
                                   "the last N prior runs (default 5)")
    bench_report.add_argument("--band", type=float, default=1.0,
                              metavar="FRAC",
                              help="multiplicative noise band: steady "
                                   "while the latest run stays within "
                                   "baseline/(1+FRAC) .. "
                                   "baseline*(1+FRAC) (default 1.0 = "
                                   "within 2x either way)")
    bench_report.add_argument("--markdown", action="store_true",
                              help="emit a markdown table instead of "
                                   "plain text")
    bench_report.add_argument("--strict", action="store_true",
                              help="exit 1 if any measurement "
                                   "classifies as a regression (CI "
                                   "runs report-only, without this)")

    serve = sub.add_parser(
        "serve-metrics",
        help="serve /metrics, /healthz, /traces/recent, /bench/latest")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=_nonnegative_int, default=9121,
                       metavar="N",
                       help="bind port; 0 picks a free one "
                            "(default 9121)")
    serve.add_argument("--trace-ring", type=_nonnegative_int, default=32,
                       metavar="N",
                       help="keep the last N completed root spans for "
                            "/traces/recent; 0 disables (default 32)")
    serve.add_argument("--bench-dir", default=None, metavar="PATH",
                       help="where /bench/latest looks for BENCH_*.json "
                            "(default: repo root, or $REPRO_BENCH_DIR)")

    status = sub.add_parser("status",
                            help="cache coverage of the corpus")
    _add_selection_args(status)
    _add_cache_args(status)

    cache = sub.add_parser("cache", help="cache maintenance")
    cache.add_argument("action", nargs="?", default="info",
                       choices=("info", "list", "clear", "gc"))
    cache.add_argument("--gc", action="store_true", dest="gc_flag",
                       help="alias for the gc action (repro-qbs cache "
                            "--gc --max-bytes N)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       metavar="N",
                       help="size budget for gc; oldest entries are "
                            "evicted until the store fits")
    _add_cache_args(cache)
    return parser


class SelectionError(Exception):
    """Bad --app/--fragments combination."""


def _selected(args) -> List:
    ids = None
    if args.fragments is not None:
        ids = [part.strip() for part in args.fragments.split(",")
               if part.strip()]
        if not ids:
            # An explicitly empty --fragments is a mistake, not a
            # request for the whole corpus (or for a 0-fragment run
            # that would green-light --check without checking anything).
            raise SelectionError("--fragments was given but names no "
                                 "fragment ids")
    try:
        return select_fragments(app=args.app, ids=ids)
    except KeyError as exc:
        raise SelectionError(exc.args[0] if exc.args else str(exc))


def _cache_for(args) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def cmd_run(args) -> int:
    fragments = _selected(args)
    cache = _cache_for(args)
    if args.timeout is not None and args.workers == 1:
        print("warning: --timeout has no effect with --workers 1 "
              "(the in-process path cannot preempt a job)",
              file=sys.stderr)
    scheduler = Scheduler(workers=args.workers, job_timeout=args.timeout,
                          cache=cache, options=QBSOptions(),
                          refresh=args.refresh,
                          retry=RetryPolicy(max_attempts=args.retries + 1),
                          deadline=args.deadline)
    profiler = None
    if args.trace_path or args.profile_path:
        # Profiling samples the run's spans, so --profile implies the
        # same ambient corpus-run trace --trace sets up.
        with contextlib.ExitStack() as stack:
            if args.profile_path:
                from repro.obs import profile as obs_profile

                profiler = obs_profile.Profiler()
                stack.enter_context(profiler.sampling())
            root = obs_trace.Span("corpus-run", workers=args.workers,
                                  fragments=len(fragments))
            stack.enter_context(root)
            report = scheduler.run(fragments)
        if args.trace_path:
            _write_trace(args.trace_path, root)
        if args.profile_path:
            _write_profile(args.profile_path, profiler)
    else:
        report = scheduler.run(fragments)

    if args.json_output:
        return _emit_run_json(args, fragments, report)

    if not args.quiet:
        print("%-12s %-30s %-10s %-2s %-12s %-6s %8s  %s" % (
            "id", "class:line", "category", "st", "failure", "src",
            "time", "SQL"))
        print("-" * 113)
    mismatches = 0
    counts = {}
    for corpus_fragment, outcome in zip(fragments, report.outcomes):
        if outcome.ok:
            status = outcome.result.status
            marker = status.marker
            detail = outcome.result.sql.sql if outcome.result.sql \
                else outcome.result.reason
            counts.setdefault(corpus_fragment.app,
                              Counter())[status.value] += 1
            if status is not corpus_fragment.expected:
                mismatches += 1
                detail += "   << paper says %s" % \
                    corpus_fragment.expected.marker
        else:
            marker = "!"
            detail = outcome.error
            counts.setdefault(corpus_fragment.app,
                              Counter())["job-failed"] += 1
        if not args.quiet:
            print("%-12s %-30s %-10s %-2s %-12.12s %-6s %7.2fs  %s" % (
                corpus_fragment.fragment_id,
                "%s:%d" % (corpus_fragment.java_class,
                           corpus_fragment.line),
                corpus_fragment.category, marker,
                _failure_cell(outcome),
                "cache" if outcome.from_cache else
                ("w%d" % args.workers if args.workers > 1 else "local"),
                outcome.elapsed_seconds, detail[:60]))

    print()
    print("Run: %d fragments in %.2fs  (%d computed, %d from cache, "
          "%d failed jobs, workers=%d)" % (
              len(report.outcomes), report.wall_seconds, report.computed,
              report.cache_hits, report.failed, args.workers))
    for app in sorted(counts):
        line = "  %-9s" % app
        for status, count in sorted(counts[app].items()):
            line += " %s=%d" % (status, count)
        print(line)
    if mismatches:
        print("  %d outcome(s) disagree with the paper's table" % mismatches)
    if args.trace_path:
        print("  trace written to %s" % args.trace_path)
    if args.profile_path:
        print("  profile written to %s  (%d samples, %d spans)" % (
            args.profile_path, profiler.samples_total,
            len(profiler.spans_seen)))
    if args.show_metrics:
        print()
        sys.stdout.write(obs_metrics.REGISTRY.exposition())
    if args.check and (mismatches or report.failed):
        return 1
    if args.expect_cached and report.cache_hits < len(report.outcomes):
        print("  expected a fully cached run, but %d fragment(s) were "
              "computed" % (len(report.outcomes) - report.cache_hits))
        return 1
    return 0


def _write_trace(path: str, root) -> None:
    """Persist one run's span tree as a JSON document."""
    document = {"schema": "repro-trace/v1", "trace": root.to_dict()}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)


def _write_profile(path: str, profiler) -> None:
    """Persist a profile: collapsed stacks, or JSON for ``.json``."""
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".json"):
            json.dump(profiler.summary(), handle, indent=1,
                      sort_keys=True)
        else:
            handle.write(profiler.collapsed())


def _counter_total(name: str) -> float:
    instrument = obs_metrics.REGISTRY.get(name)
    total = getattr(instrument, "total", None)
    return total() if total is not None else 0.0


def _metrics_summary() -> dict:
    """Derived headline numbers over the registry: cache hit ratio,
    retry counts, degradation totals."""
    hits = _counter_total("repro_cache_hits_total")
    misses = _counter_total("repro_cache_misses_total")
    lookups = hits + misses
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_ratio": (hits / lookups) if lookups else None,
        "jobs": _counter_total("repro_jobs_total"),
        "retried_jobs": _counter_total("repro_job_retries_total"),
        "backoff_waits": _counter_total("repro_backoff_waits_total"),
        "degradations": _counter_total("repro_degradations_total"),
    }


def cmd_metrics(args) -> int:
    """A corpus run followed by the registry snapshot."""
    fragments = _selected(args)
    cache = _cache_for(args)
    scheduler = Scheduler(workers=args.workers, cache=cache,
                          options=QBSOptions(), refresh=args.refresh,
                          retry=RetryPolicy(max_attempts=args.retries + 1))
    report = scheduler.run(fragments)
    summary = _metrics_summary()
    if args.json_output:
        print(json.dumps({
            "summary": dict(summary,
                            fragments=len(report.outcomes),
                            wall_seconds=report.wall_seconds,
                            failed_jobs=report.failed),
            "metrics": obs_metrics.REGISTRY.snapshot(),
        }, indent=1, sort_keys=True))
        return 0
    print("Run: %d fragments in %.2fs  (%d computed, %d from cache, "
          "%d failed jobs, workers=%d)" % (
              len(report.outcomes), report.wall_seconds, report.computed,
              report.cache_hits, report.failed, args.workers))
    ratio = summary["cache_hit_ratio"]
    print("cache hit ratio : %s" % (
        "n/a (no lookups)" if ratio is None else "%.1f%%" % (ratio * 100)))
    print("retried jobs    : %d  (backoff waits: %d)" % (
        summary["retried_jobs"], summary["backoff_waits"]))
    print("degradations    : %d" % summary["degradations"])
    print()
    sys.stdout.write(obs_metrics.REGISTRY.exposition())
    return 0


def cmd_bench_report(args) -> int:
    """Perf-trajectory report: classify each measurement's latest run
    against its rolling-median baseline."""
    from repro.bench import trajectory

    entries = trajectory.load_history(args.history_dir, name=args.bench)
    print(trajectory.trend_report(entries, band=args.band,
                                  window=args.window,
                                  markdown=args.markdown))
    if args.strict:
        regressed = trajectory.regressions(entries, band=args.band,
                                           window=args.window)
        if regressed:
            print()
            print("regressions: %s" % ", ".join(
                "%s/%s" % pair for pair in regressed))
            return 1
    return 0


def _register_pool_instruments() -> None:
    """The worker pool registers its gauges and counters at import
    time; import it for that side effect so the ops endpoint exposes
    ``repro_pool_*`` even in a process that never ran a pool query."""
    from repro.service import pool

    pool.refresh_worker_gauge()


def cmd_serve_metrics(args) -> int:
    """Foreground ops endpoint; Ctrl-C exits cleanly."""
    from repro.obs import httpd as obs_httpd

    _register_pool_instruments()
    if args.trace_ring:
        obs_trace.keep_recent_roots(args.trace_ring)
    server = obs_httpd.OpsServer(host=args.host, port=args.port,
                                 bench_dir=args.bench_dir)
    print("serving ops endpoint on http://%s:%d  "
          "(/metrics /healthz /traces/recent /bench/latest)"
          % (server.host, server.port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _failure_cell(outcome) -> str:
    """Failure-class table cell: taxonomy code (plus attempt count when
    the job was retried); ``-`` for clean first-attempt successes."""
    if outcome.ok:
        return "-" if outcome.attempts <= 1 else "ok x%d" % outcome.attempts
    kind = outcome.failure_kind or "failed"
    if outcome.attempts > 1:
        return "%s x%d" % (kind, outcome.attempts)
    return kind


def _emit_run_json(args, fragments, report) -> int:
    """``run --json``: one machine-consumable document on stdout."""
    entries = []
    mismatches = 0
    for corpus_fragment, outcome in zip(fragments, report.outcomes):
        entry = {
            "fragment_id": corpus_fragment.fragment_id,
            "app": corpus_fragment.app,
            "java_class": corpus_fragment.java_class,
            "line": corpus_fragment.line,
            "category": corpus_fragment.category,
            "expected": corpus_fragment.expected.value,
            "ok": outcome.ok,
            "from_cache": outcome.from_cache,
            "elapsed_seconds": outcome.elapsed_seconds,
            "result": outcome.result.to_json_dict() if outcome.ok else None,
            "error": outcome.error or None,
            "failure_kind": outcome.failure_kind,
            "attempts": outcome.attempts,
        }
        entry["matches_expected"] = bool(
            outcome.ok
            and outcome.result.status is corpus_fragment.expected)
        # Same definition as the table path: a crashed/timed-out job is
        # a failed job, not a disagreement with the paper's table.
        if outcome.ok and not entry["matches_expected"]:
            mismatches += 1
        entries.append(entry)
    document = {
        "fragments": entries,
        "summary": {
            "fragments": len(report.outcomes),
            "wall_seconds": report.wall_seconds,
            "computed": report.computed,
            "cache_hits": report.cache_hits,
            "failed_jobs": report.failed,
            "retried_jobs": report.retried,
            "retries": args.retries,
            "deadline": args.deadline,
            "workers": args.workers,
            "mismatches": mismatches,
        },
    }
    if args.show_metrics:
        document["metrics"] = obs_metrics.REGISTRY.snapshot()
    print(json.dumps(document, indent=1, sort_keys=True))
    if args.check and (mismatches or report.failed):
        return 1
    if args.expect_cached and report.cache_hits < len(report.outcomes):
        return 1
    return 0


def _print_cache_info(info) -> None:
    print("cache root   : %s" % info["root"])
    print("entries      : %d (%.1f KiB)" % (info["entries"],
                                            info["bytes"] / 1024.0))
    for label, bucket in (("by app", info["by_app"]),
                          ("by status", info["by_status"])):
        if bucket:
            print("%-13s: %s" % (label, ", ".join(
                "%s=%d" % kv for kv in sorted(bucket.items()))))


def cmd_status(args) -> int:
    fragments = _selected(args)
    cache = _cache_for(args)
    if cache is None:
        print("status needs a cache (drop --no-cache)")
        return 2
    _print_cache_info(cache.info())
    options = QBSOptions()
    hit, miss = [], []
    for corpus_fragment in fragments:
        payload = cache.load(job_for(corpus_fragment, options))
        (hit if payload is not None else miss).append(
            corpus_fragment.fragment_id)
    print("corpus cover : %d/%d fragments cached under current options"
          % (len(hit), len(hit) + len(miss)))
    if miss:
        print("uncached     : %s" % ", ".join(miss))
    return 0


def cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.gc_flag and args.action not in ("info", "gc"):
        # "info" is just the positional default; an explicit different
        # action combined with --gc is contradictory, not overridable.
        print("error: --gc conflicts with the %r action" % args.action,
              file=sys.stderr)
        return 2
    action = "gc" if args.gc_flag else args.action
    if action == "gc":
        if args.max_bytes is None or args.max_bytes < 0:
            print("error: cache gc needs --max-bytes N (N >= 0)",
                  file=sys.stderr)
            return 2
        accounting = cache.gc(args.max_bytes)
        print("evicted %d entr%s (%.1f KiB); %d left (%.1f KiB) in %s"
              % (accounting["removed"],
                 "y" if accounting["removed"] == 1 else "ies",
                 accounting["freed_bytes"] / 1024.0,
                 accounting["remaining_entries"],
                 accounting["remaining_bytes"] / 1024.0,
                 cache.root))
        return 0
    if action == "info":
        _print_cache_info(cache.info())
        return 0
    if action == "list":
        for entry in sorted(cache.entries(),
                            key=lambda e: e.get("fragment_id", "")):
            result = entry.get("result") or {}
            print("%-12s %-10s %s  %s" % (
                entry.get("fragment_id", "?"),
                result.get("status", "?"),
                entry.get("key", "")[:12],
                (result.get("sql") or {}).get("sql", "") or
                result.get("reason", "")[:50]))
        return 0
    removed = cache.clear()
    print("removed %d cache entr%s from %s"
          % (removed, "y" if removed == 1 else "ies", cache.root))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"run": cmd_run, "status": cmd_status,
               "cache": cmd_cache, "metrics": cmd_metrics,
               "bench-report": cmd_bench_report,
               "serve-metrics": cmd_serve_metrics}[args.command]
    try:
        return handler(args)
    except SelectionError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
