"""Persistent, content-addressed store for QBS results.

One JSON file per job key, sharded by the key's first two hex digits
so the directory stays navigable at corpus scale::

    <root>/ab/abcdef....json

Because keys hash the compiled kernel fragment *and* the full option
fingerprint (see :mod:`repro.service.jobs`), invalidation is free:
changed fragments or options simply miss.  Entries are written
atomically (tempfile + rename), so a killed worker never leaves a
half-written entry behind, and a corrupt entry reads as a miss rather
than an error.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.service.jobs import JOB_SCHEMA_VERSION, QBSJob

#: process-wide cache traffic, across every ResultCache instance (the
#: per-instance numbers stay on ``ResultCache.stats``).
_CACHE_HITS = obs_metrics.counter(
    "repro_cache_hits_total", "result-cache lookups answered from disk")
_CACHE_MISSES = obs_metrics.counter(
    "repro_cache_misses_total",
    "result-cache lookups that missed (or read corrupt entries)")
_CACHE_STORES = obs_metrics.counter(
    "repro_cache_stores_total", "result-cache entries written")

#: environment override for the cache location.
CACHE_DIR_ENV = "REPRO_QBS_CACHE_DIR"
#: default: per-user cache directory, not the working tree.
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-qbs")


def default_cache_dir() -> str:
    return os.path.expanduser(os.environ.get(CACHE_DIR_ENV,
                                             DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Disk-backed result store keyed by job content hash."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root or default_cache_dir())
        self.stats = CacheStats()

    # -- paths ------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- lookup / store ----------------------------------------------------

    def load(self, job: QBSJob) -> Optional[Dict[str, Any]]:
        """The stored result payload for a job, or None on miss.

        Anything unreadable — bad JSON, or valid JSON of the wrong
        shape — is a miss, never an error.
        """
        path = self._path(job.key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.stats.misses += 1
            _CACHE_MISSES.inc()
            return None
        result = entry.get("result") if isinstance(entry, dict) else None
        if not isinstance(result, dict) \
                or entry.get("version") != JOB_SCHEMA_VERSION \
                or entry.get("key") != job.key:
            self.stats.misses += 1
            _CACHE_MISSES.inc()
            return None
        self.stats.hits += 1
        _CACHE_HITS.inc()
        return result

    def store(self, job: QBSJob, result_payload: Dict[str, Any]) -> str:
        """Persist one result; returns the entry path."""
        path = self._path(job.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "version": JOB_SCHEMA_VERSION,
            "key": job.key,
            "fragment_id": job.fragment_id,
            "app": job.app,
            "kernel_sha": job.kernel_sha,
            "options": json.loads(job.options_json),
            "created_at": time.time(),
            "result": result_payload,
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.stores += 1
        _CACHE_STORES.inc()
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every readable, well-shaped entry, unordered."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(shard_dir, name), "r",
                              encoding="utf-8") as handle:
                        entry = json.load(handle)
                except (OSError, ValueError):
                    continue
                if isinstance(entry, dict) \
                        and isinstance(entry.get("result"), dict):
                    yield entry

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".json"):
                    os.unlink(os.path.join(shard_dir, name))
                    removed += 1
            try:
                os.rmdir(shard_dir)
            except OSError:
                pass
        return removed

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict oldest entries until the cache fits ``max_bytes``.

        Entries are removed oldest-modification-time first (the
        closest thing to LRU a one-file-per-key store offers without a
        side index), so a recently warmed corpus survives a size-capped
        sweep.  Returns eviction accounting for the CLI.
        """
        entries: List[Tuple[float, int, str]] = []
        total = 0
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if not name.endswith(".json"):
                        continue
                    path = os.path.join(shard_dir, name)
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size, path))
                    total += stat.st_size
        removed = 0
        freed = 0
        for mtime, size, path in sorted(entries):
            if total - freed <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            freed += size
            try:
                os.rmdir(os.path.dirname(path))
            except OSError:
                pass  # shard not empty (the common case)
        return {"removed": removed, "freed_bytes": freed,
                "remaining_entries": len(entries) - removed,
                "remaining_bytes": total - freed}

    def info(self) -> Dict[str, Any]:
        """Summary used by the CLI's ``cache info`` / ``status``."""
        count = 0
        bytes_total = 0
        by_app: Dict[str, int] = {}
        by_status: Dict[str, int] = {}
        for entry in self.entries():
            count += 1
            by_app[entry.get("app", "?")] = \
                by_app.get(entry.get("app", "?"), 0) + 1
            status = (entry.get("result") or {}).get("status", "?")
            by_status[status] = by_status.get(status, 0) + 1
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    try:
                        bytes_total += os.path.getsize(
                            os.path.join(dirpath, name))
                    except OSError:
                        pass
        return {"root": self.root, "entries": count,
                "bytes": bytes_total, "by_app": by_app,
                "by_status": by_status}
