"""Persistent worker pool: spawn once, dispatch many.

The ``processes`` parallel backend pays a fresh ``fork_map`` per query
— per-query child forks, whole-heap copy-on-write, one result pipe per
partition.  For a stream of repeated parallel queries that startup cost
dominates.  :class:`WorkerPool` amortizes it: a fixed set of long-lived
worker processes, forked once, each speaking a length-prefixed pickle
protocol over a dedicated pipe pair.

**Wire protocol.**  Every frame is a 4-byte big-endian length followed
by a pickle of ``(kind, payload)``:

* ``("store", (digest, table))`` — driver → worker: cache ``table``
  under its content ``digest``.  No reply.
* ``("run", (job, plan, key, attempt))`` — driver → worker: execute
  ``job.run_in_worker(cache)`` after applying the shipped fault
  ``plan`` for ``(key, attempt)``.  Exactly one reply frame:
  ``("ok", result)``, ``("exc", exception)`` or ``("error", payload)``
  (:func:`repro.service.faults.error_payload`, when the real reply
  will not pickle).
* ``("drop", digest)`` — driver → worker: evict one cached table.
* ``("shutdown", None)`` — driver → worker: exit cleanly.

**Catalog caching.**  Jobs carry only plan fragments plus a
``digest_map`` naming the tables they need by content digest
(:meth:`repro.sql.catalog.Table.content_digest`, versioned by the
catalog's schema version — together the ``(catalog_version, content
hash)`` cache key).  The driver tracks which digests each worker
holds and ships a table at most once per worker per content version:
a warm pool re-ships **zero** rows for an unchanged catalog.  Cache
slots are bounded (:data:`CACHE_TABLES_PER_WORKER`); the driver owns
the LRU decision and sends explicit ``drop`` frames so both sides
stay in sync.

**Faults.**  The pool is a substrate, so it degrades instead of
failing: a worker that dies mid-job (pipe EOF) is respawned and the
job retried under the pool's :class:`~repro.service.faults.RetryPolicy`;
a reply that will not decode retries as :data:`~repro.service.faults.
CORRUPT_PAYLOAD` without a respawn (the worker finished the frame —
it is healthy).  Exhausted budgets raise the typed fault, which the
degradation ladder in :func:`repro.sql.plan.parallel.run_tasks`
catches to fall one rung down (``pool → processes``).  Application
exceptions and deadline expiry propagate immediately, exactly like
the other backends.  Because pool workers are forked *once*, they do
not inherit fault plans installed after pool creation — the plan
rides inside each ``run`` frame and is applied worker-side, keeping
the chaos suites' per-partition injection semantics identical to
``fork_map``.

Everything here is stdlib-only.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import struct
import time
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.service import faults

#: cached tables per worker before the driver starts evicting LRU —
#: bounds worker memory across long query streams over many databases.
CACHE_TABLES_PER_WORKER = 64

#: grace period for a clean worker shutdown before SIGKILL.
_JOIN_GRACE = 5.0

_HEADER = struct.Struct(">I")

_WORKERS = obs_metrics.gauge(
    "repro_pool_workers", "Live worker processes in the persistent pool.")
_DISPATCHES = obs_metrics.counter(
    "repro_pool_dispatches_total",
    "Partition jobs dispatched to pool workers.")
_CACHE_HITS = obs_metrics.counter(
    "repro_pool_cache_hits_total",
    "Table ships skipped because the worker already cached the digest.")
_CACHE_MISSES = obs_metrics.counter(
    "repro_pool_cache_misses_total",
    "Tables shipped to a worker that did not hold the digest.")
_ROWS_SHIPPED = obs_metrics.counter(
    "repro_pool_rows_shipped_total",
    "Table rows serialized to pool workers (0 on a warm pool).")
_RESPAWNS = obs_metrics.counter(
    "repro_pool_respawns_total",
    "Pool workers respawned after dying mid-job.")
_RETRIES = obs_metrics.counter(
    "repro_pool_retries_total",
    "Pool job retries, labelled by failure kind.")

# The gauge must appear on /metrics before the first pool is built.
_WORKERS.set(0.0)


# -- framing -------------------------------------------------------------------


def _write_frame(fd: int, payload: bytes) -> None:
    data = _HEADER.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exactly(fd: int, count: int) -> Optional[bytes]:
    """``count`` bytes from ``fd``, or None on EOF at a frame boundary.
    EOF mid-frame raises — a truncated frame is corruption, not a
    clean close."""
    chunks = []
    remaining = count
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise EOFError("pipe closed mid-frame (%d of %d bytes short)"
                           % (remaining, count))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(fd: int) -> Optional[bytes]:
    header = _read_exactly(fd, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length == 0:
        return b""
    body = _read_exactly(fd, length)
    if body is None:
        raise EOFError("pipe closed between frame header and body")
    return body


# -- worker side ---------------------------------------------------------------


def _worker_main(recv_fd: int, send_fd: int) -> None:
    """Long-lived worker loop: read frames until shutdown/EOF."""
    faults.mark_child_process()
    # The worker was forked from the driver and may have inherited an
    # ambient trace span; partition spans must be detached, never
    # children of a stale driver-side tree.
    from repro.obs import trace as obs_trace
    obs_trace._ACTIVE.set(None)

    cache: Dict[str, Any] = {}
    while True:
        try:
            frame = _read_frame(recv_fd)
        except EOFError:
            os._exit(0)
        if frame is None:
            os._exit(0)
        try:
            kind, payload = pickle.loads(frame)
        except Exception as exc:
            # A request that will not decode: reply with a classified
            # error so the driver sees a typed failure, not a hang.
            reply = ("error", faults.error_payload(
                faults.CORRUPT_PAYLOAD,
                "worker could not decode request frame: %s" % exc))
            _write_frame(send_fd, pickle.dumps(
                reply, protocol=pickle.HIGHEST_PROTOCOL))
            continue
        if kind == "shutdown":
            os._exit(0)
        if kind == "store":
            digest, table = payload
            cache[digest] = table
            continue
        if kind == "drop":
            cache.pop(payload, None)
            continue
        # kind == "run"
        job, plan, key, attempt = payload
        faults.set_current_attempt(attempt)
        try:
            poisoned = faults.perturb(plan, key, attempt)
            result = poisoned if poisoned is not None \
                else job.run_in_worker(cache)
            reply = ("ok", result)
        except BaseException as exc:  # ship it home, never die silently
            reply = ("exc", exc)
        try:
            encoded = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            tag = reply[0]
            kind_code = faults.CORRUPT_PAYLOAD if tag == "ok" \
                else faults.PERMANENT
            encoded = pickle.dumps(
                ("error", faults.error_payload(
                    kind_code, "pool reply for %r will not pickle: %s"
                    % (key, exc))),
                protocol=pickle.HIGHEST_PROTOCOL)
        _write_frame(send_fd, encoded)


# -- driver side ---------------------------------------------------------------


class _PoolWorker:
    """One live worker process plus the driver's view of its cache."""

    def __init__(self, context) -> None:
        job_read, job_write = os.pipe()
        result_read, result_write = os.pipe()
        try:
            self.process = context.Process(
                target=_worker_main, args=(job_read, result_write),
                daemon=True)
            self.process.start()
        except BaseException:
            for fd in (job_read, job_write, result_read, result_write):
                try:
                    os.close(fd)
                except OSError:
                    pass
            raise
        os.close(job_read)
        os.close(result_write)
        self.send_fd = job_write
        self.recv_fd = result_read
        #: digests this worker caches, in LRU order (oldest first).
        self.cached: "OrderedDict[str, None]" = OrderedDict()

    def send(self, kind: str, payload: Any) -> None:
        _write_frame(self.send_fd, pickle.dumps(
            (kind, payload), protocol=pickle.HIGHEST_PROTOCOL))

    def close_fds(self) -> None:
        for fd in (self.send_fd, self.recv_fd):
            try:
                os.close(fd)
            except OSError:
                pass

    def kill(self) -> None:
        self.close_fds()
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_JOIN_GRACE)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.join(_JOIN_GRACE)

    def shutdown(self) -> None:
        try:
            self.send("shutdown", None)
        except OSError:
            pass
        self.close_fds()
        self.process.join(_JOIN_GRACE)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(_JOIN_GRACE)


class WorkerPool:
    """A fixed-size pool of long-lived partition workers.

    ``run_jobs`` is the one execution entry point: picklable jobs in,
    results in job order out, with table shipping, retries, respawns
    and deadline handling inside.  Jobs are dispatched
    longest-estimate-first (``job.est``), so on a busy pool the heavy
    partitions start earliest; results are slotted back by job index,
    which is what keeps pool output order-pinned to serial.
    """

    def __init__(self, size: Optional[int] = None,
                 retry: Optional[faults.RetryPolicy] = None,
                 cache_tables_per_worker: int = CACHE_TABLES_PER_WORKER):
        if size is None:
            from repro.sql.plan.parallel import usable_cores
            size = max(1, usable_cores())
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.retry = retry if retry is not None else faults.RetryPolicy()
        self.cache_tables_per_worker = cache_tables_per_worker
        self._context = multiprocessing.get_context("fork")
        self._workers: List[_PoolWorker] = []
        self.closed = False

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> _PoolWorker:
        try:
            return _PoolWorker(self._context)
        except Exception as exc:
            raise faults.SubstrateUnavailable(
                "cannot spawn pool worker: %s" % exc)

    def ensure_workers(self) -> None:
        """Bring the pool up to ``size`` live workers."""
        if self.closed:
            raise faults.SubstrateUnavailable("worker pool is closed")
        while len(self._workers) < self.size:
            self._workers.append(self._spawn())
        _WORKERS.set(float(len(self._workers)))

    def _scrap(self, worker: _PoolWorker) -> Optional[_PoolWorker]:
        """Kill a worker whose pipe state is unknown and replace it.
        Returns the replacement (None when respawn itself failed)."""
        worker.kill()
        if worker in self._workers:
            self._workers.remove(worker)
        _RESPAWNS.inc()
        replacement = None
        try:
            replacement = self._spawn()
            self._workers.append(replacement)
        except faults.SubstrateUnavailable:
            pass  # pool runs degraded; ensure_workers retries next time
        _WORKERS.set(float(len(self._workers)))
        return replacement

    def close(self) -> None:
        for worker in self._workers:
            worker.shutdown()
        self._workers = []
        self.closed = True
        _WORKERS.set(0.0)

    # -- dispatch ----------------------------------------------------------

    def _ship_tables(self, worker: _PoolWorker, job: Any,
                     tables: Mapping[str, Any]) -> None:
        for digest in job.digest_map.values():
            if digest in worker.cached:
                worker.cached.move_to_end(digest)
                _CACHE_HITS.inc()
                continue
            table = tables[digest]
            _CACHE_MISSES.inc()
            _ROWS_SHIPPED.inc(float(len(table.rows)))
            worker.send("store", (digest, table))
            worker.cached[digest] = None
            while len(worker.cached) > self.cache_tables_per_worker:
                evicted, _ = worker.cached.popitem(last=False)
                worker.send("drop", evicted)

    def _dispatch(self, worker: _PoolWorker, job: Any,
                  tables: Mapping[str, Any], plan, attempt: int) -> None:
        self._ship_tables(worker, job, tables)
        worker.send("run", (job, plan, "part:%d" % job.part, attempt))
        _DISPATCHES.inc()

    def _collect(self, worker: _PoolWorker):
        """One reply from ``worker``: ``(tag, value)`` with tag
        ``ok``/``exc``/``error``, or a :class:`~repro.service.faults.
        TaskFault` instance when the transport itself failed."""
        try:
            frame = _read_frame(worker.recv_fd)
        except (EOFError, OSError) as exc:
            return faults.WorkerCrash(
                "pool worker died mid-reply: %s" % exc)
        if frame is None:
            code = self._exit_detail(worker)
            return faults.WorkerCrash(
                "pool worker died before replying%s" % code)
        try:
            return pickle.loads(frame)
        except Exception as exc:
            return faults.CorruptPayload(
                "pool reply would not decode: %s" % exc)

    @staticmethod
    def _exit_detail(worker: _PoolWorker) -> str:
        worker.process.join(0.5)
        code = worker.process.exitcode
        return "" if code is None else " (exit code %s)" % code

    # -- the run loop ------------------------------------------------------

    def run_jobs(self, jobs: Sequence[Any], tables: Mapping[str, Any],
                 deadline=None, plan=None, attempt: int = 1) -> List[Any]:
        """Execute ``jobs`` on the pool; results in job order.

        ``tables`` maps content digest -> Table for everything any
        job's ``digest_map`` references.  ``plan``/``attempt`` carry
        the installed fault plan and the degradation-ladder attempt
        into the workers (forked workers do not see plans installed
        after pool creation).  Raises the typed substrate fault when
        the retry budget is exhausted, application exceptions
        unchanged, and :class:`~repro.service.faults.DeadlineExceeded`
        on expiry.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        try:
            self.ensure_workers()
        except OSError as exc:  # pragma: no cover - fd exhaustion
            raise faults.SubstrateUnavailable(
                "cannot spawn pool worker: %s" % exc)
        results: List[Any] = [None] * len(jobs)
        # Longest estimate first; ties break on job index so dispatch
        # order is deterministic.  ``pending`` is popped from the end.
        pending = sorted(range(len(jobs)),
                         key=lambda i: (-(jobs[i].est or 0), i),
                         reverse=True)
        attempts = {index: attempt for index in range(len(jobs))}
        idle = list(self._workers)
        busy: Dict[_PoolWorker, int] = {}

        def fail_dispatch(worker: _PoolWorker, index: int,
                          exc: Exception) -> None:
            # The pipe state after a partial send is unknown: scrap.
            self._scrap(worker)
            raise faults.SubstrateUnavailable(
                "pool dispatch for partition %d failed: %s"
                % (jobs[index].part, exc))

        def retry_or_raise(index: int, kind: str,
                           fault: Exception) -> None:
            consumed = attempts[index]
            if not self.retry.allows_retry(kind, consumed):
                raise fault
            _RETRIES.inc(kind=kind)
            attempts[index] = consumed + 1
            backoff = self.retry.backoff(consumed)
            if backoff > 0:
                if deadline is not None:
                    deadline.check("pool retry backoff")
                time.sleep(backoff)
            pending.append(index)

        try:
            while pending or busy:
                while pending and idle:
                    worker = idle.pop(0)
                    index = pending.pop()
                    try:
                        self._dispatch(worker, jobs[index], tables, plan,
                                       attempts[index])
                    except (OSError, pickle.PicklingError,
                            AttributeError, TypeError) as exc:
                        fail_dispatch(worker, index, exc)
                    busy[worker] = index
                if not busy:
                    # Only reachable when jobs remain but every worker
                    # died and could not be respawned.
                    raise faults.SubstrateUnavailable(
                        "no live pool workers for %d pending partitions"
                        % len(pending))
                by_fd = {worker.recv_fd: worker for worker in busy}
                timeout = None if deadline is None \
                    else max(0.0, deadline.remaining())
                readable, _, _ = select.select(list(by_fd), [], [], timeout)
                if not readable:
                    raise faults.DeadlineExceeded(
                        "pool deadline expired with %d/%d partitions "
                        "unfinished" % (len(busy) + len(pending), len(jobs)))
                for fd in readable:
                    worker = by_fd[fd]
                    index = busy.pop(worker)
                    outcome = self._collect(worker)
                    if isinstance(outcome, faults.WorkerCrash):
                        replacement = self._scrap(worker)
                        if replacement is not None:
                            idle.append(replacement)
                        retry_or_raise(index, faults.CRASH, outcome)
                        continue
                    if isinstance(outcome, faults.CorruptPayload):
                        # Full frame read: the worker is healthy, only
                        # the payload was poison.  Reuse it.
                        idle.append(worker)
                        retry_or_raise(index, faults.CORRUPT_PAYLOAD,
                                       outcome)
                        continue
                    tag, value = outcome
                    if tag == "ok":
                        results[index] = value
                        idle.append(worker)
                        continue
                    if tag == "error":
                        fault = faults.fault_from_payload(value)
                        if isinstance(fault, faults.CorruptPayload):
                            idle.append(worker)
                            retry_or_raise(index, faults.CORRUPT_PAYLOAD,
                                           fault)
                            continue
                        raise fault
                    # tag == "exc": an application exception — the
                    # ladder must not absorb it.
                    raise value
                if deadline is not None:
                    deadline.check("pool fan-out")
            return results
        except BaseException:
            # Any exit with jobs still in flight leaves replies queued
            # on the busy workers' pipes; scrap them so the next query
            # starts frame-aligned.
            for worker in list(busy):
                self._scrap(worker)
            raise


# -- process-wide pool ---------------------------------------------------------

_POOL: Optional[WorkerPool] = None


def get_pool() -> WorkerPool:
    """The process-wide pool, created (sized to
    :func:`~repro.sql.plan.parallel.usable_cores`) on first use."""
    global _POOL
    if _POOL is None or _POOL.closed:
        _POOL = WorkerPool()
    return _POOL


def reset_pool() -> None:
    """Shut the process-wide pool down (tests; re-created on demand)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


def refresh_worker_gauge() -> None:
    """Re-pin ``repro_pool_workers`` to the live worker count.  The
    import-time 0.0 sample can be dropped by a registry reset, so
    surfaces that expose the registry (the ops endpoint) re-assert it:
    a scraper should read "no pool" rather than a missing series."""
    if _POOL is not None and not _POOL.closed:
        _WORKERS.set(float(len(_POOL._workers)))
    else:
        _WORKERS.set(0.0)
