"""Async facade over the scheduler: ``submit`` / ``gather`` / ``stream``.

The scheduler is synchronous (its workers are processes, not
coroutines); this facade gives event-loop callers a stable API so
future serving work — an HTTP front, a job queue consumer — can be
written against coroutines now and keep working if the execution
engine underneath changes.

The blocking run is pushed onto a thread-pool executor; ``stream``
pumps outcomes through an :class:`asyncio.Queue` so consumers see each
job as it completes instead of waiting for the batch.

Usage::

    service = QBSService(workers=4, cache=ResultCache(path))
    await service.submit("w46")
    await service.submit("i2")
    async for outcome in service.stream():
        ...

or, batch-style::

    outcomes = await service.run(["w46", "i2", "adv_hash"])
"""

from __future__ import annotations

import asyncio
import threading
from typing import AsyncIterator, List, Optional

from repro.core.qbs import QBSOptions
from repro.corpus.registry import CorpusFragment, fragment_by_id
from repro.service.cache import ResultCache
from repro.service.faults import RetryPolicy
from repro.service.jobs import QBSJob, job_for
from repro.service.scheduler import JobOutcome, RunReport, Scheduler

_SENTINEL = object()


class QBSService:
    """Coroutine API over the corpus pipeline."""

    def __init__(self, workers: int = 1,
                 job_timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None,
                 options: Optional[QBSOptions] = None,
                 refresh: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None):
        self.scheduler = Scheduler(workers=workers, job_timeout=job_timeout,
                                   cache=cache, options=options,
                                   refresh=refresh, retry=retry,
                                   deadline=deadline)
        self._pending: List[CorpusFragment] = []

    # -- the facade --------------------------------------------------------

    async def submit(self, fragment_id: str) -> QBSJob:
        """Queue one fragment; returns its content-addressed job.

        Job hashing compiles the fragment's frontend form, so it runs
        off the event loop.
        """
        corpus_fragment = fragment_by_id(fragment_id)
        loop = asyncio.get_running_loop()
        job = await loop.run_in_executor(
            None, job_for, corpus_fragment, self.scheduler.options)
        self._pending.append(corpus_fragment)
        return job

    async def gather(self) -> List[JobOutcome]:
        """Run everything submitted since the last gather/stream."""
        batch = self._take_pending()
        if not batch:
            return []
        loop = asyncio.get_running_loop()
        report: RunReport = await loop.run_in_executor(
            None, self.scheduler.run, batch)
        return report.outcomes

    async def stream(self) -> AsyncIterator[JobOutcome]:
        """Yield pending outcomes one by one, in submission order.

        Abandoning the stream (breaking out of ``async for``, or
        cancellation) stops the underlying run: the scheduler winds
        down at the next job boundary and reclaims its workers instead
        of computing the rest of the batch for nobody.
        """
        batch = self._take_pending()
        if not batch:
            return
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        stop = threading.Event()

        def pump():
            try:
                for outcome in self.scheduler.run_iter(batch,
                                                       stop_event=stop):
                    loop.call_soon_threadsafe(queue.put_nowait, outcome)
                    if stop.is_set():
                        break
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _SENTINEL)

        pump_future = loop.run_in_executor(None, pump)
        try:
            while True:
                item = await queue.get()
                if item is _SENTINEL:
                    break
                yield item
            await pump_future  # surface pump exceptions
        finally:
            stop.set()
            await asyncio.shield(pump_future)

    async def run(self, fragment_ids: List[str]) -> List[JobOutcome]:
        """Convenience: submit a batch of ids and gather it."""
        for fragment_id in fragment_ids:
            await self.submit(fragment_id)
        return await self.gather()

    # -- internals ---------------------------------------------------------

    def _take_pending(self) -> List[CorpusFragment]:
        batch, self._pending = self._pending, []
        return batch
