"""Schemas, entities, DAOs and data populators for both applications.

Table layouts distill the parts of Wilos and itracker the Appendix A
fragments touch.  Each application gets:

* ``*_TABLES`` — table name -> column tuple;
* entity types with the associations the eager-fetch benchmarks need;
* DAO classes whose ``@query_method``s double as frontend query specs;
* a deterministic ``populate_*`` helper that fills a database at a
  given scale (used by the Fig. 14 sweeps).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.orm.dao import Dao, query_method
from repro.orm.mapping import Association, EntityType, MappingRegistry
from repro.sql.database import Database

# ---------------------------------------------------------------------------
# Wilos (project management, 62k LOC in the paper)
# ---------------------------------------------------------------------------

WILOS_TABLES: Dict[str, Tuple[str, ...]] = {
    "participant": ("id", "login", "role_id", "project_id", "is_manager"),
    "role": ("role_id", "role_name"),
    "project": ("id", "project_name", "is_finished", "creator_id"),
    "activity": ("id", "activity_name", "project_id", "state"),
    "concrete_activity": ("id", "activity_id", "state", "order_index"),
    "guidance": ("id", "guidance_name", "guidance_type"),
    "iteration": ("id", "phase_id", "iteration_name", "is_finished"),
    "phase": ("id", "project_id", "phase_name", "state"),
    "process": ("id", "process_name", "manager_id"),
    "role_descriptor": ("id", "role_id", "process_id", "descriptor_name"),
    "workproduct": ("id", "workproduct_name", "state", "project_id"),
    "workproduct_descriptor": ("id", "workproduct_id", "process_id", "state"),
}


class WilosDaos:
    """All Wilos persistent-data methods, one DAO class per concern."""

    class ParticipantDao(Dao):
        @query_method("SELECT * FROM participant", table="participant",
                      schema=WILOS_TABLES["participant"], entity="Participant")
        def get_participants(self):
            """All participants (Hibernate: session.createQuery(...))."""

    class RoleDao(Dao):
        @query_method("SELECT * FROM role", table="role",
                      schema=WILOS_TABLES["role"], entity="Role")
        def get_roles(self):
            """All roles."""

    class ProjectDao(Dao):
        @query_method("SELECT * FROM project", table="project",
                      schema=WILOS_TABLES["project"], entity="Project")
        def get_projects(self):
            """All projects."""

    class ActivityDao(Dao):
        @query_method("SELECT * FROM activity", table="activity",
                      schema=WILOS_TABLES["activity"], entity="Activity")
        def get_activities(self):
            """All activities."""

    class ConcreteActivityDao(Dao):
        @query_method("SELECT * FROM concrete_activity",
                      table="concrete_activity",
                      schema=WILOS_TABLES["concrete_activity"],
                      entity="ConcreteActivity")
        def get_concrete_activities(self):
            """All concrete activities."""

    class GuidanceDao(Dao):
        @query_method("SELECT * FROM guidance", table="guidance",
                      schema=WILOS_TABLES["guidance"], entity="Guidance")
        def get_guidances(self):
            """All guidance entries."""

    class IterationDao(Dao):
        @query_method("SELECT * FROM iteration", table="iteration",
                      schema=WILOS_TABLES["iteration"], entity="Iteration")
        def get_iterations(self):
            """All iterations."""

    class PhaseDao(Dao):
        @query_method("SELECT * FROM phase", table="phase",
                      schema=WILOS_TABLES["phase"], entity="Phase")
        def get_phases(self):
            """All phases."""

    class ProcessDao(Dao):
        @query_method("SELECT * FROM process", table="process",
                      schema=WILOS_TABLES["process"], entity="Process")
        def get_processes(self):
            """All processes."""

        @query_method("SELECT manager_id FROM process", table="process",
                      schema=("manager_id",))
        def get_manager_ids(self):
            """Projected manager ids (single-column query)."""

    class RoleDescriptorDao(Dao):
        @query_method("SELECT * FROM role_descriptor",
                      table="role_descriptor",
                      schema=WILOS_TABLES["role_descriptor"],
                      entity="RoleDescriptor")
        def get_role_descriptors(self):
            """All role descriptors."""

    class WorkproductDao(Dao):
        @query_method("SELECT * FROM workproduct", table="workproduct",
                      schema=WILOS_TABLES["workproduct"], entity="Workproduct")
        def get_workproducts(self):
            """All work products."""

        @query_method("SELECT id FROM workproduct", table="workproduct",
                      schema=("id",))
        def get_workproduct_ids(self):
            """Projected work-product ids."""

    class WorkproductDescriptorDao(Dao):
        @query_method("SELECT * FROM workproduct_descriptor",
                      table="workproduct_descriptor",
                      schema=WILOS_TABLES["workproduct_descriptor"],
                      entity="WorkproductDescriptor")
        def get_workproduct_descriptors(self):
            """All work-product descriptors."""


def wilos_mappings() -> MappingRegistry:
    registry = MappingRegistry()
    registry.register(EntityType(
        "Participant", "participant", WILOS_TABLES["participant"],
        associations=(Association("role", "Role", "role_id", "role_id"),
                      Association("project", "Project", "project_id", "id"))))
    registry.register(EntityType("Role", "role", WILOS_TABLES["role"]))
    registry.register(EntityType(
        "Project", "project", WILOS_TABLES["project"],
        associations=(Association("creator", "Participant",
                                  "creator_id", "id"),)))
    registry.register(EntityType("Activity", "activity",
                                 WILOS_TABLES["activity"]))
    registry.register(EntityType("ConcreteActivity", "concrete_activity",
                                 WILOS_TABLES["concrete_activity"]))
    registry.register(EntityType("Guidance", "guidance",
                                 WILOS_TABLES["guidance"]))
    registry.register(EntityType("Iteration", "iteration",
                                 WILOS_TABLES["iteration"]))
    registry.register(EntityType("Phase", "phase", WILOS_TABLES["phase"]))
    registry.register(EntityType("Process", "process",
                                 WILOS_TABLES["process"]))
    registry.register(EntityType("RoleDescriptor", "role_descriptor",
                                 WILOS_TABLES["role_descriptor"]))
    registry.register(EntityType("Workproduct", "workproduct",
                                 WILOS_TABLES["workproduct"]))
    registry.register(EntityType(
        "WorkproductDescriptor", "workproduct_descriptor",
        WILOS_TABLES["workproduct_descriptor"]))
    return registry


def create_wilos_database(with_indexes: bool = True) -> Database:
    db = Database()
    for table, columns in WILOS_TABLES.items():
        db.create_table(table, columns)
    if with_indexes:
        # Hibernate creates indexes on key columns automatically
        # (paper Sec. 7.2 credits these for the hash-join speedup).
        db.create_index("participant", "id")
        db.create_index("participant", "role_id")
        db.create_index("participant", "project_id")
        db.create_index("participant", "is_manager")
        db.create_index("role", "role_id")
        db.create_index("project", "id")
        db.create_index("role_descriptor", "role_id")
    return db


def populate_wilos(db: Database, n_users: int, n_roles: Optional[int] = None,
                   unfinished_fraction: float = 0.1,
                   manager_fraction: float = 0.1, seed: int = 7) -> None:
    """Deterministic Wilos dataset at a given scale.

    ``n_users`` participants; ``n_roles`` roles (default: one per
    participant, the Fig. 14c configuration where the join returns
    every user exactly once); ``unfinished_fraction`` of projects
    unfinished (Fig. 14a/b selectivity); ``manager_fraction`` of
    participants are process managers (Fig. 14d).
    """
    rng = random.Random(seed)
    n_roles = n_users if n_roles is None else n_roles
    db.insert_many("role", ({"role_id": i, "role_name": "role%d" % i}
                            for i in range(n_roles)))
    n_projects = max(1, n_users // 10)
    unfinished_count = int(n_projects * unfinished_fraction)
    db.insert_many("project", (
        {"id": i, "project_name": "proj%d" % i,
         "is_finished": 0 if i < unfinished_count else 1,
         "creator_id": rng.randrange(max(1, n_users))}
        for i in range(n_projects)))
    manager_count = int(n_users * manager_fraction)
    db.insert_many("participant", (
        {"id": i, "login": "user%d" % i,
         "role_id": i % n_roles,
         "project_id": i % n_projects,
         "is_manager": 1 if i < manager_count else 0}
        for i in range(n_users)))


# ---------------------------------------------------------------------------
# itracker (issue management, 61k LOC in the paper)
# ---------------------------------------------------------------------------

ITRACKER_TABLES: Dict[str, Tuple[str, ...]] = {
    "issue": ("id", "project_id", "status", "severity", "owner_id",
              "created"),
    "tracked_project": ("id", "project_name", "status"),
    "tracker_user": ("id", "login", "status", "is_super"),
    "notification": ("id", "issue_id", "user_id", "role"),
    "component": ("id", "project_id", "component_name"),
}


class ItrackerDaos:
    class IssueDao(Dao):
        @query_method("SELECT * FROM issue", table="issue",
                      schema=ITRACKER_TABLES["issue"], entity="Issue")
        def get_issues(self):
            """All issues."""

    class TrackedProjectDao(Dao):
        @query_method("SELECT * FROM tracked_project",
                      table="tracked_project",
                      schema=ITRACKER_TABLES["tracked_project"],
                      entity="TrackedProject")
        def get_tracked_projects(self):
            """All projects."""

        @query_method("SELECT id FROM tracked_project",
                      table="tracked_project", schema=("id",))
        def get_project_ids(self):
            """Projected project ids."""

    class TrackerUserDao(Dao):
        @query_method("SELECT * FROM tracker_user", table="tracker_user",
                      schema=ITRACKER_TABLES["tracker_user"],
                      entity="TrackerUser")
        def get_users(self):
            """All users."""

    class NotificationDao(Dao):
        @query_method("SELECT * FROM notification", table="notification",
                      schema=ITRACKER_TABLES["notification"],
                      entity="Notification")
        def get_notifications(self):
            """All notifications."""

    class ComponentDao(Dao):
        @query_method("SELECT * FROM component", table="component",
                      schema=ITRACKER_TABLES["component"], entity="Component")
        def get_components(self):
            """All components."""


def itracker_mappings() -> MappingRegistry:
    registry = MappingRegistry()
    registry.register(EntityType(
        "Issue", "issue", ITRACKER_TABLES["issue"],
        associations=(Association("project", "TrackedProject",
                                  "project_id", "id"),
                      Association("owner", "TrackerUser", "owner_id", "id"))))
    registry.register(EntityType("TrackedProject", "tracked_project",
                                 ITRACKER_TABLES["tracked_project"]))
    registry.register(EntityType("TrackerUser", "tracker_user",
                                 ITRACKER_TABLES["tracker_user"]))
    registry.register(EntityType("Notification", "notification",
                                 ITRACKER_TABLES["notification"]))
    registry.register(EntityType("Component", "component",
                                 ITRACKER_TABLES["component"]))
    return registry


def create_itracker_database(with_indexes: bool = True) -> Database:
    db = Database()
    for table, columns in ITRACKER_TABLES.items():
        db.create_table(table, columns)
    if with_indexes:
        db.create_index("issue", "project_id")
        db.create_index("tracked_project", "id")
        db.create_index("tracker_user", "id")
    return db


def populate_itracker(db: Database, n_issues: int,
                      open_fraction: float = 0.3, seed: int = 11) -> None:
    """Deterministic itracker dataset at a given scale."""
    rng = random.Random(seed)
    n_projects = max(1, n_issues // 20)
    n_users = max(1, n_issues // 5)
    db.insert_many("tracked_project", (
        {"id": i, "project_name": "proj%d" % i, "status": i % 2}
        for i in range(n_projects)))
    db.insert_many("tracker_user", (
        {"id": i, "login": "dev%d" % i, "status": 1,
         "is_super": 1 if i % 10 == 0 else 0}
        for i in range(n_users)))
    open_count = int(n_issues * open_fraction)
    db.insert_many("issue", (
        {"id": i, "project_id": i % n_projects,
         "status": 1 if i < open_count else 0,
         "severity": rng.randrange(5), "owner_id": i % n_users,
         "created": i}
        for i in range(n_issues)))
    db.insert_many("notification", (
        {"id": i, "issue_id": i % max(1, n_issues),
         "user_id": i % n_users, "role": i % 3}
        for i in range(n_issues // 2)))
    db.insert_many("component", (
        {"id": i, "project_id": i % n_projects,
         "component_name": "comp%d" % i}
        for i in range(n_projects * 2)))
