"""The evaluation corpus: the paper's 49 code fragments + Sec. 7.3 idioms.

Appendix A of the paper lists 49 distinct persistent-data code
fragments harvested from two open-source Java applications — Wilos
(project management, fragments #17-49) and itracker (issue management,
fragments #1-16) — each tagged with an operation category (A-O) and an
outcome: translated (``X``), failed to find invariants (``*``), or
rejected by preprocessing (``†``).

This package re-creates every fragment in Python against
:mod:`repro.orm`, preserving each one's control-flow shape, operation
category and — critically — the construct that determined its outcome
(the map-accumulating selection that gets rejected, the custom
comparator that defeats synthesis, the nested-loop join that
translates).  The Fig. 13 counts are reproduced by running QBS over the
whole corpus (``benchmarks/bench_fig13_corpus.py``).
"""

from repro.corpus.registry import (
    ALL_FRAGMENTS,
    CorpusFragment,
    compile_fragment,
    fragments_for,
    run_fragment_through_qbs,
)

__all__ = [
    "ALL_FRAGMENTS",
    "CorpusFragment",
    "compile_fragment",
    "fragments_for",
    "run_fragment_through_qbs",
]
