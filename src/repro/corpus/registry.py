"""Corpus metadata: every fragment, its paper identity and expectation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.qbs import QBS, QBSResult, QBSStatus
from repro.corpus import advanced, itracker, wilos
from repro.corpus.schema import ItrackerDaos, WilosDaos
from repro.frontend import AppRegistry, FrontendRejection, PythonFrontend
from repro.kernel.ast import Fragment


@dataclass(frozen=True)
class CorpusFragment:
    """One Appendix A (or Sec. 7.3) fragment."""

    fragment_id: str          # paper id: "w17", "i3", "adv_hash_join"
    app: str                  # wilos | itracker | advanced
    java_class: str           # class name in the paper's table
    line: int                 # line number in the paper's table
    category: str             # operation category A-O (or a label)
    expected: QBSStatus       # the paper's outcome
    paper_seconds: Optional[float]  # synthesis time the paper reports
    method: str               # method name on the app's service class
    description: str


def _dao_registry(*dao_groups) -> AppRegistry:
    registry = AppRegistry()
    for group in dao_groups:
        for dao_cls in vars(group).values():
            if isinstance(dao_cls, type):
                for name, member in vars(dao_cls).items():
                    if hasattr(member, "__query_spec__"):
                        registry.register_query(name, member.__query_spec__)
    return registry


def build_registry(app: str) -> AppRegistry:
    """Frontend registry for one application."""
    if app == "wilos":
        registry = _dao_registry(WilosDaos)
        registry.register_function(wilos.WilosService.all_projects,
                                   name="all_projects")
        return registry
    if app == "itracker":
        return _dao_registry(ItrackerDaos)
    if app == "advanced":
        registry = AppRegistry()
        for dao_cls in vars(advanced.AdvancedDaos).values():
            if isinstance(dao_cls, type):
                for name, member in vars(dao_cls).items():
                    if hasattr(member, "__query_spec__"):
                        registry.register_query(name, member.__query_spec__)
        return registry
    raise ValueError("unknown app %r" % app)


_SERVICE_CLASSES = {
    "wilos": wilos.WilosService,
    "itracker": itracker.ItrackerService,
    "advanced": advanced.AdvancedService,
}

X = QBSStatus.TRANSLATED
F = QBSStatus.FAILED
R = QBSStatus.REJECTED

#: Wilos fragments #17-49, in Appendix A order.
WILOS_FRAGMENTS: List[CorpusFragment] = [
    CorpusFragment("w17", "wilos", "ActivityService", 401, "A", R, None,
                   "w17_activities_by_state",
                   "selection accumulated into a map"),
    CorpusFragment("w18", "wilos", "ActivityService", 328, "A", R, None,
                   "w18_cache_active_activities",
                   "selection cached into a field (escapes)"),
    CorpusFragment("w19", "wilos", "AffectedtoDao", 13, "B", X, 72,
                   "w19_count_affected", "count of matching participants"),
    CorpusFragment("w20", "wilos", "ConcreteActivityDao", 139, "C", F, None,
                   "w20_latest_concrete_activity",
                   "max by sorting then taking the last record"),
    CorpusFragment("w21", "wilos", "ConcreteActivityService", 133, "D", R,
                   None, "w21_cache_activity_states",
                   "projected set escapes into a field"),
    CorpusFragment("w22", "wilos", "ConcreteRoleAffectationService", 55, "E",
                   X, 310, "w22_descriptors_with_roles",
                   "nested-loop join, keep left side"),
    CorpusFragment("w23", "wilos", "ConcreteRoleDescriptorService", 181, "F",
                   X, 290, "w23_descriptors_of_managed_processes",
                   "join by membership in a projected column"),
    CorpusFragment("w24", "wilos", "ConcreteWorkBreakdownElementService", 55,
                   "G", R, None, "w24_breakdown_elements",
                   "type-based record selection"),
    CorpusFragment("w25", "wilos", "ConcreteWorkProductDescriptorService",
                   236, "F", X, 284, "w25_descriptors_of_known_workproducts",
                   "join by contains"),
    CorpusFragment("w26", "wilos", "GuidanceService", 140, "A", R, None,
                   "w26_practices_array", "fills an array by index"),
    CorpusFragment("w27", "wilos", "GuidanceService", 154, "A", R, None,
                   "w27_checklists_formatted",
                   "selection through an unknown helper call"),
    CorpusFragment("w28", "wilos", "IterationService", 103, "A", R, None,
                   "w28_first_finished_iterations",
                   "selection with early return"),
    CorpusFragment("w29", "wilos", "LoginService", 103, "H", X, 125,
                   "w29_login_exists", "existence of a login"),
    CorpusFragment("w30", "wilos", "LoginService", 83, "H", X, 164,
                   "w30_login_with_role_exists",
                   "existence with two criteria"),
    CorpusFragment("w31", "wilos", "ParticipantBean", 1079, "B", X, 31,
                   "w31_no_managers", "emptiness of a filtered selection"),
    CorpusFragment("w32", "wilos", "ParticipantBean", 681, "H", X, 121,
                   "w32_project_has_manager", "existence check"),
    CorpusFragment("w33", "wilos", "ParticipantService", 146, "E", X, 281,
                   "w33_participants_with_projects", "nested-loop join"),
    CorpusFragment("w34", "wilos", "ParticipantService", 119, "E", X, 301,
                   "w34_participants_on_unfinished",
                   "nested-loop join with selection"),
    CorpusFragment("w35", "wilos", "ParticipantService", 266, "F", X, 260,
                   "w35_ready_descriptors_of_processes",
                   "filtered contains join"),
    CorpusFragment("w36", "wilos", "PhaseService", 98, "A", R, None,
                   "w36_first_done_phases", "selection with break"),
    CorpusFragment("w37", "wilos", "ProcessBean", 248, "H", X, 82,
                   "w37_process_exists", "existence by name"),
    CorpusFragment("w38", "wilos", "ProcessManagerBean", 243, "B", X, 50,
                   "w38_count_process_managers",
                   "count of process managers (Fig. 14d)"),
    CorpusFragment("w39", "wilos", "ProjectService", 266, "K", F, None,
                   "w39_projects_in_custom_order",
                   "sort with a custom comparator"),
    CorpusFragment("w40", "wilos", "ProjectService", 297, "A", X, 19,
                   "w40_unfinished_projects",
                   "selection of unfinished projects (Fig. 14a/b)"),
    CorpusFragment("w41", "wilos", "ProjectService", 338, "G", R, None,
                   "w41_concrete_projects", "type-based selection"),
    CorpusFragment("w42", "wilos", "ProjectService", 394, "A", X, 21,
                   "w42_projects_by_creator", "selection by parameter"),
    CorpusFragment("w43", "wilos", "ProjectService", 410, "A", X, 39,
                   "w43_finished_projects_of_creator",
                   "selection with two criteria"),
    CorpusFragment("w44", "wilos", "ProjectService", 248, "H", X, 150,
                   "w44_unfinished_project_exists", "existence check"),
    CorpusFragment("w45", "wilos", "RoleDao", 15, "I", F, None,
                   "w45_role_by_name",
                   "keeps one record among several matches"),
    CorpusFragment("w46", "wilos", "RoleService", 15, "E", X, 150,
                   "w46_get_role_users",
                   "the paper's running example (Fig. 1)"),
    CorpusFragment("w47", "wilos", "WilosUserBean", 717, "B", X, 23,
                   "w47_count_admins", "size of a filtered selection"),
    CorpusFragment("w48", "wilos", "WorkProductsExpTableBean", 990, "B", X,
                   52, "w48_has_ready_workproducts",
                   "non-emptiness of a selection"),
    CorpusFragment("w49", "wilos", "WorkProductsExpTableBean", 974, "J", X,
                   50, "w49_count_project_workproducts",
                   "selection followed by count"),
]

#: itracker fragments #1-16, in Appendix A order.
ITRACKER_FRAGMENTS: List[CorpusFragment] = [
    CorpusFragment("i1", "itracker", "EditProjectFormActionUtil", 219, "F",
                   X, 289, "i1_components_of_projects", "contains join"),
    CorpusFragment("i2", "itracker", "IssueServiceImpl", 1437, "D", X, 30,
                   "i2_open_issue_ids", "projection into a set"),
    CorpusFragment("i3", "itracker", "IssueServiceImpl", 1456, "L", F, None,
                   "i3_severity_codes", "computed projection into an array"),
    CorpusFragment("i4", "itracker", "IssueServiceImpl", 1567, "C", F, None,
                   "i4_latest_issue", "max by sorting then last record"),
    CorpusFragment("i5", "itracker", "IssueServiceImpl", 1583, "M", X, 130,
                   "i5_count_issues", "result set size"),
    CorpusFragment("i6", "itracker", "IssueServiceImpl", 1592, "M", X, 133,
                   "i6_count_notifications", "result set size"),
    CorpusFragment("i7", "itracker", "IssueServiceImpl", 1601, "M", X, 128,
                   "i7_count_components", "result set size"),
    CorpusFragment("i8", "itracker", "IssueServiceImpl", 1422, "D", X, 34,
                   "i8_owner_ids", "filtered projection into a set"),
    CorpusFragment("i9", "itracker", "ListProjectsAction", 77, "N", F, None,
                   "i9_prune_inactive_projects",
                   "selection with in-place removal"),
    CorpusFragment("i10", "itracker", "MoveIssueFormAction", 144, "K", F,
                   None, "i10_issues_in_triage_order",
                   "sort with a custom comparator"),
    CorpusFragment("i11", "itracker", "NotificationServiceImpl", 568, "O",
                   X, 57, "i11_latest_created", "running max"),
    CorpusFragment("i12", "itracker", "NotificationServiceImpl", 848, "A",
                   X, 132, "i12_role_notifications",
                   "selection by parameter"),
    CorpusFragment("i13", "itracker", "NotificationServiceImpl", 941, "H",
                   X, 160, "i13_user_is_notified",
                   "existence with two criteria"),
    CorpusFragment("i14", "itracker", "NotificationServiceImpl", 244, "O",
                   X, 72, "i14_earliest_created", "running min"),
    CorpusFragment("i15", "itracker", "UserServiceImpl", 155, "M", X, 146,
                   "i15_count_users", "result set size"),
    CorpusFragment("i16", "itracker", "UserServiceImpl", 412, "A", X, 142,
                   "i16_active_super_users", "selection, two criteria"),
]

#: Sec. 7.3 advanced idioms.
ADVANCED_FRAGMENTS: List[CorpusFragment] = [
    CorpusFragment("adv_hash", "advanced", "HashJoin", 0, "hash-join", X,
                   None, "adv_hash_join",
                   "hash join modeled over lists (Sec. 7.3)"),
    CorpusFragment("adv_merge", "advanced", "SortMergeJoin", 0,
                   "sort-merge", F, None, "adv_sort_merge_join",
                   "sort-merge join (Sec. 7.3, fails)"),
    CorpusFragment("adv_top10", "advanced", "SortedTopTen", 0, "sorted-scan",
                   X, None, "adv_sorted_top_ten",
                   "sorted scan of the first ten rows (LIMIT 10)"),
    CorpusFragment("adv_idscan", "advanced", "SortedIdScan", 0,
                   "sorted-scan", F, None, "adv_sorted_scan_by_id",
                   "sorted scan bounded by the id value (fails)"),
    CorpusFragment("adv_joincnt", "advanced", "JoinCount", 0, "agg-join",
                   X, None, "adv_join_count",
                   "COUNT(*) over a nested-loop join"),
    CorpusFragment("adv_sumsel", "advanced", "FilteredSum", 0, "agg", X,
                   None, "adv_sum_filtered",
                   "running SUM over a selection"),
    CorpusFragment("adv_joinsum", "advanced", "JoinSum", 0, "agg-join",
                   X, None, "adv_join_sum",
                   "running SUM over a nested-loop join"),
    CorpusFragment("adv_groupcnt", "advanced", "GroupCount", 0, "group-by",
                   X, None, "adv_group_count",
                   "per-outer-row counter flushed into a record list "
                   "(GROUP BY accumulation)"),
    CorpusFragment("adv_chain", "advanced", "ChainJoin", 0, "chain-join",
                   X, None, "adv_chain_join",
                   "three-table nested-loop join (hash-join chain)"),
]

ALL_FRAGMENTS: List[CorpusFragment] = (
    ITRACKER_FRAGMENTS + WILOS_FRAGMENTS + ADVANCED_FRAGMENTS)


def fragments_for(app: str) -> List[CorpusFragment]:
    return [f for f in ALL_FRAGMENTS if f.app == app]


def fragment_by_id(fragment_id: str) -> CorpusFragment:
    """Look one corpus fragment up by its paper id (service job model)."""
    for cf in ALL_FRAGMENTS:
        if cf.fragment_id == fragment_id:
            return cf
    raise KeyError("unknown corpus fragment %r" % fragment_id)


def select_fragments(app: str = "all",
                     ids: Optional[List[str]] = None) -> List[CorpusFragment]:
    """Enumerate the fragments a service run covers, in corpus order.

    ``app`` filters by application (``all`` keeps everything); ``ids``
    further restricts to an explicit fragment-id list.
    """
    out = ALL_FRAGMENTS if app == "all" else fragments_for(app)
    if ids is not None:
        wanted = set(ids)
        # Validate against the app-filtered scope, so an id that exists
        # but belongs to another app is an error, not a silently empty
        # selection.
        unknown = wanted - {cf.fragment_id for cf in out}
        if unknown:
            raise KeyError("unknown corpus fragments%s: %s"
                           % ("" if app == "all" else " in app %r" % app,
                              ", ".join(sorted(unknown))))
        out = [cf for cf in out if cf.fragment_id in wanted]
    return list(out)


_REGISTRY_CACHE: Dict[str, AppRegistry] = {}


def _registry(app: str) -> AppRegistry:
    if app not in _REGISTRY_CACHE:
        _REGISTRY_CACHE[app] = build_registry(app)
    return _REGISTRY_CACHE[app]


def compile_fragment(corpus_fragment: CorpusFragment) -> Fragment:
    """Compile one corpus fragment to the kernel language.

    Raises :class:`FrontendRejection` for the paper's ``†`` class.
    """
    service_cls = _SERVICE_CLASSES[corpus_fragment.app]
    method = getattr(service_cls, corpus_fragment.method)
    frontend = PythonFrontend(_registry(corpus_fragment.app))
    return frontend.compile_function(
        method, name="%s/%s" % (corpus_fragment.app, corpus_fragment.method))


def run_fragment_through_qbs(corpus_fragment: CorpusFragment,
                             qbs: Optional[QBS] = None) -> QBSResult:
    """Frontend + QBS on one corpus fragment; rejection becomes a result."""
    qbs = qbs or QBS()
    try:
        fragment = compile_fragment(corpus_fragment)
    except FrontendRejection as exc:
        return QBSResult(fragment=None, status=QBSStatus.REJECTED,
                         reason=exc.reason)
    return qbs.run(fragment)
