"""The advanced idioms of paper Sec. 7.3.

Four synthetic fragments probing the limits of the approach:

* **hash join** — a join implemented by probing one relation per row of
  the other (the paper models hashtables as lists; the probe loop below
  is that modeling).  Translates.
* **sort-merge join** — simultaneous two-counter scan with conditional
  advances; the invariants relate the current records to *all*
  previously processed ones, which the predicate language cannot
  express.  Fails, as the paper reports.
* **sorted top-10** — sort then take the first ten rows; translates to
  ORDER BY ... LIMIT 10.
* **sorted scan bounded by the id value** — equivalent to top-10 only
  because ``id`` is a dense primary key, a schema fact outside the
  axioms.  Fails, as the paper reports.

Beyond the paper's set, three aggregation-heavy / multi-join fragments
probe the same machinery on workloads the corpus under-covers:

* **join count** — a nested-loop join folded into a counter; the
  aggregate distributes over the join, giving ``SELECT COUNT(*)`` over
  a two-table product.  Translates.
* **filtered sum** — a running sum guarded by a selection predicate;
  translates to ``SELECT SUM(..) .. WHERE``.
* **join sum** — a running sum over the matching pairs of a nested-loop
  join; translates to ``SELECT SUM(..)`` over the join.
* **group count** — a per-outer-row counter flushed into a record list;
  the GROUP BY-shaped accumulation idiom.  Translates to ``SELECT key,
  COUNT(*) .. GROUP BY`` (the planner's Aggregate operator).
* **chain join** — a three-deep nested loop joining ``r -> s -> u``;
  translates to a three-source query the planner runs as a hash-join
  chain.
"""

from __future__ import annotations

from repro.orm.dao import Dao, query_method
from repro.orm.mapping import EntityType, MappingRegistry
from repro.orm.session import Session
from repro.sql.database import Database

ADVANCED_TABLES = {
    "r": ("id", "a"),
    "s": ("id", "b"),
    "t": ("id",),
    "u": ("id", "c"),
}


class AdvancedDaos:
    class RDao(Dao):
        @query_method("SELECT * FROM r", table="r",
                      schema=ADVANCED_TABLES["r"], entity="R")
        def get_rs(self):
            """All rows of r."""

    class SDao(Dao):
        @query_method("SELECT * FROM s", table="s",
                      schema=ADVANCED_TABLES["s"], entity="S")
        def get_ss(self):
            """All rows of s."""

    class TDao(Dao):
        @query_method("SELECT id FROM t", table="t", schema=("id",))
        def get_ids(self):
            """Single-column id table."""

    class UDao(Dao):
        @query_method("SELECT * FROM u", table="u",
                      schema=ADVANCED_TABLES["u"], entity="U")
        def get_us(self):
            """All rows of u (third link of the chain join)."""


class AdvancedService:
    def __init__(self, session: Session):
        self.session = session
        self.r_dao = AdvancedDaos.RDao(session)
        self.s_dao = AdvancedDaos.SDao(session)
        self.t_dao = AdvancedDaos.TDao(session)
        self.u_dao = AdvancedDaos.UDao(session)

    # Sec 7.3 "Hash Joins" — translated.
    def adv_hash_join(self):
        rs = self.r_dao.get_rs()
        ss = self.s_dao.get_ss()
        result = []
        for r in rs:
            for s in ss:
                if r.a == s.b:
                    result.append(r)
        return result

    # Sec 7.3 "Sort-Merge Joins" — fails (invariant outside the language).
    def adv_sort_merge_join(self):
        rs = self.r_dao.get_rs()
        ss = self.s_dao.get_ss()
        result = []
        i = 0
        j = 0
        while i < len(rs) and j < len(ss):
            if rs[i].a < ss[j].b:
                i = i + 1
            else:
                if rs[i].a > ss[j].b:
                    j = j + 1
                else:
                    result.append(rs[i])
                    i = i + 1
        return result

    # Sec 7.3 "Iterating over Sorted Relations", first variant — translated
    # to SELECT id FROM t ORDER BY id LIMIT 10.
    def adv_sorted_top_ten(self):
        records = self.t_dao.get_ids()
        records = sorted(records)  # Collections.sort(records)
        results = []
        i = 0
        while i < 10 and i < len(records):
            results.append(records[i])
            i = i + 1
        return results

    # Sec 7.3, second variant — fails: needs the schema fact that id is a
    # dense primary key.
    def adv_sorted_scan_by_id(self):
        records = self.t_dao.get_ids()
        records = sorted(records)
        results = []
        i = 0
        while records[i] < 10:
            results.append(records[i])
            i = i + 1
        return results

    # Aggregation over a join: COUNT(*) over the matching pairs.
    def adv_join_count(self):
        rs = self.r_dao.get_rs()
        ss = self.s_dao.get_ss()
        count = 0
        for r in rs:
            for s in ss:
                if r.a == s.b:
                    count = count + 1
        return count

    # Filtered running sum: SUM(a) over a selection.
    def adv_sum_filtered(self):
        rs = self.r_dao.get_rs()
        total = 0
        for r in rs:
            if r.a > 3:
                total = total + r.a
        return total

    # Running sum over the matching pairs of a nested-loop join.
    def adv_join_sum(self):
        rs = self.r_dao.get_rs()
        ss = self.s_dao.get_ss()
        total = 0
        for r in rs:
            for s in ss:
                if r.a == s.b:
                    total = total + r.id
        return total

    # GROUP BY-shaped accumulation: a per-outer-row counter flushed
    # into the result list (match counts per r row).  Translates to
    # SELECT key, COUNT(*) .. GROUP BY.
    def adv_group_count(self):
        rs = self.r_dao.get_rs()
        ss = self.s_dao.get_ss()
        result = []
        for r in rs:
            n = 0
            for s in ss:
                if s.b == r.a:
                    n = n + 1
            if n > 0:
                result.append({"a": r.a, "matches": n})
        return result

    # Three-deep nested-loop join over the r -> s -> u chain.
    # Translates to a three-source query (a hash-join chain under the
    # planner).
    def adv_chain_join(self):
        rs = self.r_dao.get_rs()
        ss = self.s_dao.get_ss()
        us = self.u_dao.get_us()
        result = []
        for r in rs:
            for s in ss:
                for u in us:
                    if r.a == s.b:
                        if s.id == u.c:
                            result.append({"ra": r.a, "uid": u.id})
        return result


def advanced_mappings() -> MappingRegistry:
    registry = MappingRegistry()
    registry.register(EntityType("R", "r", ADVANCED_TABLES["r"]))
    registry.register(EntityType("S", "s", ADVANCED_TABLES["s"]))
    registry.register(EntityType("T", "t", ADVANCED_TABLES["t"]))
    registry.register(EntityType("U", "u", ADVANCED_TABLES["u"]))
    return registry


def create_advanced_database() -> Database:
    db = Database()
    for table, columns in ADVANCED_TABLES.items():
        db.create_table(table, columns)
    db.create_index("r", "a")
    db.create_index("s", "b")
    db.create_index("u", "c")
    return db


def make_advanced_service(db, fetch: str = "lazy") -> AdvancedService:
    return AdvancedService(Session(db, advanced_mappings(), fetch=fetch))
