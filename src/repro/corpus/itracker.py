"""The 16 itracker fragments (Appendix A, #1-16)."""

from __future__ import annotations

from repro.corpus.schema import ItrackerDaos, itracker_mappings
from repro.orm.session import Session


class ItrackerService:
    """Host object for all itracker fragments."""

    def __init__(self, session: Session):
        self.session = session
        self.issue_dao = ItrackerDaos.IssueDao(session)
        self.project_dao = ItrackerDaos.TrackedProjectDao(session)
        self.user_dao = ItrackerDaos.TrackerUserDao(session)
        self.notification_dao = ItrackerDaos.NotificationDao(session)
        self.component_dao = ItrackerDaos.ComponentDao(session)

    # #1 EditProjectFormActionUtil:219 — F X 289s (contains join).
    def i1_components_of_projects(self):
        components = self.component_dao.get_components()
        project_ids = self.project_dao.get_project_ids()
        result = []
        for c in components:
            if c.project_id in project_ids:
                result.append(c)
        return result

    # #2 IssueServiceImpl:1437 — D X 30s (projection into a set).
    def i2_open_issue_ids(self):
        issues = self.issue_dao.get_issues()
        ids = set()
        for i in issues:
            if i.status == 1:
                ids.add(i.id)
        return ids

    # #3 IssueServiceImpl:1456 — L * (computed projection into an array).
    def i3_severity_codes(self):
        issues = self.issue_dao.get_issues()
        values = []
        for i in issues:
            values.append(i.severity * 10 + i.status)
        return values

    # #4 IssueServiceImpl:1567 — C * (latest by sorting, take last).
    def i4_latest_issue(self):
        issues = self.issue_dao.get_issues()
        issues.sort(key=lambda i: i.created)
        return issues[-1]

    # #5 IssueServiceImpl:1583 — M X 130s (result set size).
    def i5_count_issues(self):
        issues = self.issue_dao.get_issues()
        return len(issues)

    # #6 IssueServiceImpl:1592 — M X 133s.
    def i6_count_notifications(self):
        notifications = self.notification_dao.get_notifications()
        return len(notifications)

    # #7 IssueServiceImpl:1601 — M X 128s.
    def i7_count_components(self):
        components = self.component_dao.get_components()
        return len(components)

    # #8 IssueServiceImpl:1422 — D X 34s (projected owner set).
    def i8_owner_ids(self):
        issues = self.issue_dao.get_issues()
        owners = set()
        for i in issues:
            if i.severity > 2:
                owners.add(i.owner_id)
        return owners

    # #9 ListProjectsAction:77 — N * (in-place removal while scanning).
    def i9_prune_inactive_projects(self):
        projects = self.project_dao.get_tracked_projects()
        for p in projects:
            if p.status == 0:
                projects.remove(p)
        return projects

    # #10 MoveIssueFormAction:144 — K * (custom comparator).
    def i10_issues_in_triage_order(self):
        issues = self.issue_dao.get_issues()
        ordered = sorted(issues, key=lambda i: triage_weight(i))
        return ordered

    # #11 NotificationServiceImpl:568 — O X 57s (running max).
    def i11_latest_created(self):
        issues = self.issue_dao.get_issues()
        latest = float("-inf")
        for i in issues:
            if i.created > latest:
                latest = i.created
        return latest

    # #12 NotificationServiceImpl:848 — A X 132s (selection).
    def i12_role_notifications(self, role):
        notifications = self.notification_dao.get_notifications()
        result = []
        for n in notifications:
            if n.role == role:
                result.append(n)
        return result

    # #13 NotificationServiceImpl:941 — H X 160s (existence, two criteria).
    def i13_user_is_notified(self, user_id):
        notifications = self.notification_dao.get_notifications()
        found = False
        for n in notifications:
            if n.user_id == user_id and n.role == 1:
                found = True
        return found

    # #14 NotificationServiceImpl:244 — O X 72s (running min).
    def i14_earliest_created(self):
        issues = self.issue_dao.get_issues()
        earliest = float("inf")
        for i in issues:
            if i.created < earliest:
                earliest = i.created
        return earliest

    # #15 UserServiceImpl:155 — M X 146s.
    def i15_count_users(self):
        users = self.user_dao.get_users()
        return len(users)

    # #16 UserServiceImpl:412 — A X 142s (selection of active supers).
    def i16_active_super_users(self):
        users = self.user_dao.get_users()
        result = []
        for u in users:
            if u.status == 1 and u.is_super == 1:
                result.append(u)
        return result


def triage_weight(issue) -> int:
    """The opaque comparator of fragment #10."""
    weight = issue.severity * 100 - issue.created
    if issue.status == 1:
        weight = weight - 10_000
    return weight


def make_itracker_service(db, fetch: str = "lazy") -> ItrackerService:
    return ItrackerService(Session(db, itracker_mappings(), fetch=fetch))
