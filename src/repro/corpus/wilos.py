"""The 33 Wilos fragments (Appendix A, #17-49).

Each method reproduces the operation category and outcome-determining
construct of the corresponding paper fragment.  Methods are executable
against the ORM (the Fig. 14 benchmarks run them as the "original"
version) and analysable by the frontend (the Fig. 13 benchmark runs
QBS on them).

Status legend (paper Appendix A): ``X`` translated, ``*`` synthesis
failed, ``†`` rejected by preprocessing.
"""

from __future__ import annotations

from repro.corpus.schema import WilosDaos, wilos_mappings
from repro.orm.session import Session


class WilosService:
    """Host object for all Wilos fragments; one DAO per concern."""

    def __init__(self, session: Session):
        self.session = session
        self.participant_dao = WilosDaos.ParticipantDao(session)
        self.role_dao = WilosDaos.RoleDao(session)
        self.project_dao = WilosDaos.ProjectDao(session)
        self.activity_dao = WilosDaos.ActivityDao(session)
        self.concrete_activity_dao = WilosDaos.ConcreteActivityDao(session)
        self.guidance_dao = WilosDaos.GuidanceDao(session)
        self.iteration_dao = WilosDaos.IterationDao(session)
        self.phase_dao = WilosDaos.PhaseDao(session)
        self.process_dao = WilosDaos.ProcessDao(session)
        self.role_descriptor_dao = WilosDaos.RoleDescriptorDao(session)
        self.workproduct_dao = WilosDaos.WorkproductDao(session)
        self.workproduct_descriptor_dao = \
            WilosDaos.WorkproductDescriptorDao(session)

    # -- helpers exercised by the inliner -----------------------------------

    def all_projects(self):
        """Persistent-data helper inlined into #40/#42 (budget of 5)."""
        projects = self.project_dao.get_projects()
        return projects

    # #17 ActivityService:401 — A † (map-accumulating selection).
    def w17_activities_by_state(self, state):
        activities = self.activity_dao.get_activities()
        by_id = {}
        for a in activities:
            if a.state == state:
                by_id[a.id] = a
        return by_id

    # #18 ActivityService:328 — A † (result cached into a field: escapes).
    def w18_cache_active_activities(self):
        activities = self.activity_dao.get_activities()
        filtered = []
        for a in activities:
            if a.state == 'active':
                filtered.append(a)
        self.activity_cache = filtered
        return filtered

    # #19 AffectedtoDao:13 — B X 72s (count rows matching a project).
    def w19_count_affected(self):
        participants = self.participant_dao.get_participants()
        n = 0
        for p in participants:
            if p.project_id == 1:
                n = n + 1
        return n

    # #20 ConcreteActivityDao:139 — C * (max by sorting, take last).
    def w20_latest_concrete_activity(self):
        activities = self.concrete_activity_dao.get_concrete_activities()
        activities.sort(key=lambda a: a.order_index)
        return activities[-1]

    # #21 ConcreteActivityService:133 — D † (projected set escapes).
    def w21_cache_activity_states(self):
        activities = self.concrete_activity_dao.get_concrete_activities()
        states = set()
        for a in activities:
            states.add(a.state)
        self.state_cache = states
        return states

    # #22 ConcreteRoleAffectationService:55 — E X 310s (nested-loop join).
    def w22_descriptors_with_roles(self):
        descriptors = self.role_descriptor_dao.get_role_descriptors()
        roles = self.role_dao.get_roles()
        result = []
        for d in descriptors:
            for r in roles:
                if d.role_id == r.role_id:
                    result.append(d)
        return result

    # #23 ConcreteRoleDescriptorService:181 — F X 290s (join by contains).
    def w23_descriptors_of_managed_processes(self):
        descriptors = self.role_descriptor_dao.get_role_descriptors()
        manager_ids = self.process_dao.get_manager_ids()
        result = []
        for d in descriptors:
            if d.process_id in manager_ids:
                result.append(d)
        return result

    # #24 ConcreteWorkBreakdownElementService:55 — G † (type dispatch).
    def w24_breakdown_elements(self):
        elements = self.activity_dao.get_activities()
        result = []
        for e in elements:
            if isinstance(e, WorkBreakdownElement):  # noqa: F821
                result.append(e)
        return result

    # #25 ConcreteWorkProductDescriptorService:236 — F X 284s.
    def w25_descriptors_of_known_workproducts(self):
        descriptors = self.workproduct_descriptor_dao \
            .get_workproduct_descriptors()
        workproduct_ids = self.workproduct_dao.get_workproduct_ids()
        result = []
        for d in descriptors:
            if d.workproduct_id in workproduct_ids:
                result.append(d)
        return result

    # #26 GuidanceService:140 — A † (fills a pre-sized array by index).
    def w26_practices_array(self):
        guidances = self.guidance_dao.get_guidances()
        results = []
        i = 0
        for g in guidances:
            if g.guidance_type == 'practice':
                results[i] = g
                i = i + 1
        return results

    # #27 GuidanceService:154 — A † (formats through an unknown helper).
    def w27_checklists_formatted(self):
        guidances = self.guidance_dao.get_guidances()
        result = []
        for g in guidances:
            if g.guidance_type == 'checklist':
                result.append(self.format_guidance(g))
        return result

    # #28 IterationService:103 — A † (early return from the scan).
    def w28_first_finished_iterations(self):
        iterations = self.iteration_dao.get_iterations()
        result = []
        for it in iterations:
            if it.is_finished == 1:
                result.append(it)
            if len(result) > 10:
                return result
        return result

    # #29 LoginService:103 — H X 125s (login existence check).
    def w29_login_exists(self, login):
        participants = self.participant_dao.get_participants()
        found = False
        for p in participants:
            if p.login == login:
                found = True
        return found

    # #30 LoginService:83 — H X 164s (existence with two criteria).
    def w30_login_with_role_exists(self, login, role_id):
        participants = self.participant_dao.get_participants()
        found = False
        for p in participants:
            if p.login == login and p.role_id == role_id:
                found = True
        return found

    # #31 ParticipantBean:1079 — B X 31s (emptiness of a filtered set).
    def w31_no_managers(self):
        participants = self.participant_dao.get_participants()
        n = 0
        for p in participants:
            if p.is_manager == 1:
                n += 1
        return n == 0

    # #32 ParticipantBean:681 — H X 121s.
    def w32_project_has_manager(self):
        participants = self.participant_dao.get_participants()
        found = False
        for p in participants:
            if p.project_id == 2 and p.is_manager == 1:
                found = True
        return found

    # #33 ParticipantService:146 — E X 281s (join participants/projects).
    def w33_participants_with_projects(self):
        participants = self.participant_dao.get_participants()
        projects = self.project_dao.get_projects()
        result = []
        for p in participants:
            for pr in projects:
                if p.project_id == pr.id:
                    result.append(p)
        return result

    # #34 ParticipantService:119 — E X 301s (join + selection).
    def w34_participants_on_unfinished(self):
        participants = self.participant_dao.get_participants()
        projects = self.project_dao.get_projects()
        result = []
        for p in participants:
            for pr in projects:
                if p.project_id == pr.id and pr.is_finished == 0:
                    result.append(p)
        return result

    # #35 ParticipantService:266 — F X 260s (filtered contains join).
    def w35_ready_descriptors_of_processes(self):
        descriptors = self.workproduct_descriptor_dao \
            .get_workproduct_descriptors()
        workproduct_ids = self.workproduct_dao.get_workproduct_ids()
        result = []
        for d in descriptors:
            if d.state == 1 and d.workproduct_id in workproduct_ids:
                result.append(d)
        return result

    # #36 PhaseService:98 — A † (break interrupts the scan).
    def w36_first_done_phases(self):
        phases = self.phase_dao.get_phases()
        result = []
        for ph in phases:
            if ph.state == 'done':
                result.append(ph)
            if len(result) >= 5:
                break
        return result

    # #37 ProcessBean:248 — H X 82s.
    def w37_process_exists(self, name):
        processes = self.process_dao.get_processes()
        found = False
        for pr in processes:
            if pr.process_name == name:
                found = True
        return found

    # #38 ProcessManagerBean:243 — B X 50s; the Fig. 14d fragment.
    def w38_count_process_managers(self):
        participants = self.participant_dao.get_participants()
        n = 0
        for p in participants:
            if p.is_manager == 1:
                n = n + 1
        return n

    # #39 ProjectService:266 — K * (custom comparator).
    def w39_projects_in_custom_order(self):
        projects = self.project_dao.get_projects()
        ordered = sorted(projects,
                         key=lambda p: project_sort_weight(p))
        return ordered

    # #40 ProjectService:297 — A X 19s; the Fig. 14a/b fragment.
    def w40_unfinished_projects(self):
        projects = self.all_projects()
        unfinished = []
        for p in projects:
            if p.is_finished == 0:
                unfinished.append(p)
        return unfinished

    # #41 ProjectService:338 — G † (type dispatch again).
    def w41_concrete_projects(self):
        projects = self.project_dao.get_projects()
        result = []
        for p in projects:
            if isinstance(p, ConcreteProject):  # noqa: F821
                result.append(p)
        return result

    # #42 ProjectService:394 — A X 21s (selection by parameter).
    def w42_projects_by_creator(self, creator_id):
        projects = self.all_projects()
        result = []
        for p in projects:
            if p.creator_id == creator_id:
                result.append(p)
        return result

    # #43 ProjectService:410 — A X 39s (two selection criteria).
    def w43_finished_projects_of_creator(self, creator_id):
        projects = self.project_dao.get_projects()
        result = []
        for p in projects:
            if p.is_finished == 1 and p.creator_id == creator_id:
                result.append(p)
        return result

    # #44 ProjectService:248 — H X 150s.
    def w44_unfinished_project_exists(self):
        projects = self.project_dao.get_projects()
        found = False
        for p in projects:
            if p.is_finished == 0:
                found = True
        return found

    # #45 RoleDao:15 — I * (keeps the last matching record).
    def w45_role_by_name(self, role_name):
        roles = self.role_dao.get_roles()
        result = 0
        for r in roles:
            if r.role_name == role_name:
                result = r
        return result

    # #46 RoleService:15 — E X 150s; the paper's running example (Fig. 1).
    def w46_get_role_users(self):
        list_users = []
        users = self.participant_dao.get_participants()
        roles = self.role_dao.get_roles()
        for u in users:
            for r in roles:
                if u.role_id == r.role_id:
                    list_users.append(u)
        return list_users

    # #47 WilosUserBean:717 — B X 23s (size of a filtered selection).
    def w47_count_admins(self):
        participants = self.participant_dao.get_participants()
        admins = []
        for p in participants:
            if p.role_id == 1:
                admins.append(p)
        return len(admins)

    # #48 WorkProductsExpTableBean:990 — B X 52s.
    def w48_has_ready_workproducts(self):
        workproducts = self.workproduct_dao.get_workproducts()
        n = 0
        for w in workproducts:
            if w.state == 1:
                n = n + 1
        return n > 0

    # #49 WorkProductsExpTableBean:974 — J X 50s (selection then count).
    def w49_count_project_workproducts(self):
        workproducts = self.workproduct_dao.get_workproducts()
        matching = []
        for w in workproducts:
            if w.project_id == 3:
                matching.append(w)
        return len(matching)


def project_sort_weight(project) -> int:
    """The 'custom comparator' of fragment #39 — opaque to QBS."""
    weight = project.id * 31
    if project.is_finished == 0:
        weight = weight - 1000
    return weight


def make_wilos_service(db, fetch: str = "lazy") -> WilosService:
    """A service wired to a session over ``db``."""
    return WilosService(Session(db, wilos_mappings(), fetch=fetch))
