"""QBS — Query By Synthesis (PLDI 2013), reproduced in Python.

Turn imperative ORM-backed application code into SQL queries by
synthesizing loop invariants and postconditions over a theory of
ordered relations, formally validating them, and translating the
postcondition to SQL.

Quick tour::

    from repro import AppRegistry, PythonFrontend, QBS

    registry = AppRegistry()          # declare DAO query methods here
    frontend = PythonFrontend(registry)
    fragment = frontend.compile_function(MyService.hot_method)
    result = QBS().run(fragment)
    print(result.sql.sql)             # the inferred query

See ``examples/quickstart.py`` for the full walkthrough on the paper's
running example, README.md for the tour, and ``docs/architecture.md``
for the subsystem architecture and the mode-flags-not-forks contract.
"""

from repro.core.qbs import QBS, QBSOptions, QBSResult, QBSStatus
from repro.core.transform import TransformedFragment
from repro.frontend import AppRegistry, FrontendRejection, PythonFrontend
from repro.orm import Dao, Session, query_method
from repro.sql import Database

__version__ = "1.0.0"

__all__ = [
    "QBS",
    "QBSOptions",
    "QBSResult",
    "QBSStatus",
    "TransformedFragment",
    "AppRegistry",
    "FrontendRejection",
    "PythonFrontend",
    "Dao",
    "Session",
    "query_method",
    "Database",
]
