"""Verification-condition generation (paper Sec. 4.1, Fig. 11).

Standard weakest-precondition computation over the kernel language, with
one twist: loop invariants and the postcondition are *unknown predicates*
(:class:`~repro.core.logic.PredApp`) over the program variables in scope,
to be solved for by the synthesizer.

For the running example this reproduces Fig. 11 exactly:

* ``initialization`` — ``oInv(0, users, roles, [])`` (after substituting
  the assignments that precede the outer loop);
* outer ``loop exit`` — ``i >= size(users) and oInv(...) ->
  pcon(listUsers, users, roles)``;
* outer ``preservation`` = inner ``initialization``;
* inner ``preservation`` — the two-branch implication over the ``if``;
* inner ``loop exit`` — re-establishes the outer invariant at ``i + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.kernel import ast as K
from repro.kernel.analysis import scope_vars
from repro.tor import ast as T
from repro.core.logic import (
    And,
    Bool,
    Formula,
    Implies,
    NotF,
    PredApp,
    conj,
    formula_substitute,
    pretty_formula,
)


@dataclass(frozen=True)
class VC:
    """One verification condition: ``hypotheses -> conclusion``."""

    name: str
    hypotheses: Tuple[Formula, ...]
    conclusion: Formula

    def __str__(self) -> str:
        if not self.hypotheses:
            return "%s: %s" % (self.name, pretty_formula(self.conclusion))
        hyps = " and ".join(pretty_formula(h) for h in self.hypotheses)
        return "%s: %s -> %s" % (self.name, hyps,
                                 pretty_formula(self.conclusion))


@dataclass
class VCSet:
    """All VCs of a fragment plus the unknown-predicate signatures."""

    fragment: K.Fragment
    vcs: List[VC] = field(default_factory=list)
    #: unknown name -> parameter names (positional).
    unknowns: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: unknown name -> loop id ("" for the postcondition).
    unknown_loops: Dict[str, str] = field(default_factory=dict)

    @property
    def postcondition_name(self) -> str:
        return "pcon"

    def __str__(self) -> str:
        return "\n".join(str(vc) for vc in self.vcs)


def invariant_name(loop_id: str) -> str:
    return "inv_%s" % loop_id


def postcondition_params(fragment: K.Fragment) -> Tuple[str, ...]:
    """Parameters of the unknown postcondition.

    The result variable first, then every relation variable bound by a
    ``Query`` (the base relations a translatable postcondition may
    mention), then the fragment's scalar inputs (selection criteria may
    reference them, Sec. 7.1).
    """
    from repro.kernel.analysis import query_assignments

    params: List[str] = [fragment.result_var]
    for var in query_assignments(fragment):
        if var != fragment.result_var and var not in params:
            params.append(var)
    for var, info in fragment.inputs.items():
        if var not in params:
            params.append(var)
    return tuple(params)


def generate_vcs(fragment: K.Fragment) -> VCSet:
    """Compute the verification conditions of a fragment.

    Returns a :class:`VCSet` whose validity (for some assignment of the
    unknown predicates) implies ``result_var = pcon``-postcondition at
    fragment exit for *all* database contents.
    """
    vcset = VCSet(fragment=fragment)

    pcon_params = postcondition_params(fragment)
    vcset.unknowns["pcon"] = pcon_params
    vcset.unknown_loops["pcon"] = ""
    post = PredApp("pcon", pcon_params,
                   tuple(T.Var(p) for p in pcon_params))

    def wp(cmd: K.Command, post_formula: Formula) -> Formula:
        if isinstance(cmd, K.Skip):
            return post_formula

        if isinstance(cmd, K.Assign):
            return formula_substitute(post_formula, {cmd.var: cmd.expr})

        if isinstance(cmd, K.Seq):
            current = post_formula
            for sub in reversed(cmd.commands):
                current = wp(sub, current)
            return current

        if isinstance(cmd, K.If):
            then_pre = wp(cmd.then_branch, post_formula)
            else_pre = wp(cmd.else_branch, post_formula)
            return conj(
                Implies(Bool(cmd.cond), then_pre),
                Implies(Bool(T.Not(cmd.cond)), else_pre),
            )

        if isinstance(cmd, K.Assert):
            return conj(Bool(cmd.expr), post_formula)

        if isinstance(cmd, K.While):
            name = invariant_name(cmd.loop_id)
            params = scope_vars(fragment, cmd)
            vcset.unknowns[name] = params
            vcset.unknown_loops[name] = cmd.loop_id
            inv = PredApp(name, params, tuple(T.Var(p) for p in params))

            body_pre = wp(cmd.body, inv)
            vcset.vcs.append(VC(
                name="%s preservation" % cmd.loop_id,
                hypotheses=(inv, Bool(cmd.cond)),
                conclusion=body_pre,
            ))
            vcset.vcs.append(VC(
                name="%s exit" % cmd.loop_id,
                hypotheses=(inv, Bool(T.Not(cmd.cond))),
                conclusion=post_formula,
            ))
            return inv

        raise TypeError("cannot compute wp of %r" % (cmd,))

    precondition = wp(fragment.body, post)
    # The fragment runs from an arbitrary initial state, so its wp must
    # hold unconditionally: this is the "initialization" VC.
    vcset.vcs.insert(0, VC(name="initialization", hypotheses=(),
                           conclusion=precondition))
    return vcset
