"""Template generation for invariants and postconditions (Secs. 4.3-4.5).

The synthesizer does not search the raw TOR grammar; that space is
astronomical (the paper reports 2^300 candidate combinations for some
problems).  Instead, QBS scans the fragment for patterns and emits a
*template*: a set of candidate clauses per unknown predicate.  This
module reproduces that scheme:

* **Postcondition candidates** for the result variable are translatable
  expressions built from the fragment's base relations, with selection /
  join predicates drawn from the guard atoms the feature scan recognised
  and projections dictated by the accumulated element's shape.

* **Invariant candidates** are *substitution instances* of the same
  shapes.  For a full-scan expression ``E`` over base relation ``r``:

  - the scanning loop's invariant pins the accumulator to
    ``E[r -> top_c(r)]`` (Fig. 10's rows);
  - an inner loop of a two-deep nest uses
    ``cat(E[r1 -> top_i(r1)], E[r1 -> [get(r1, i)], r2 -> top_j(r2)])``
    — exactly the shape of Fig. 12's inner invariant.

* **Incremental solving** (Sec. 4.5): the ``level`` parameter bounds how
  many predicate atoms and wrapper operators a candidate may use; the
  synthesizer retries with a higher level when synthesis fails.

* **Symmetry breaking** (Sec. 4.5): only canonical translatable forms
  are emitted — conjunctions in a fixed atom order, no nested sigmas,
  projection outside selection.  Passing ``symmetry_breaking=False``
  re-adds the redundant variants; the ablation benchmark measures the
  cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.features import (
    ContainsAtom,
    Features,
    JoinAtom,
    SelAtom,
    Update,
    _as_scan_ref,
    element_projection,
    extract_features,
    group_match_sigma,
)
from repro.core.logic import CmpClause, EqClause
from repro.kernel import ast as K
from repro.tor import ast as T


def exit_definitions(fragment: K.Fragment) -> Dict[str, T.TorNode]:
    """Symbolic values of variables after the fragment's top level.

    Only straight-line (non-loop) assignments are folded; variables
    modified inside loops stay as free :class:`~repro.tor.ast.Var`
    references so their occurrences can be replaced by full-scan
    candidate expressions.
    """
    defs: Dict[str, T.TorNode] = {}
    loop_modified: set = set()

    def visit(cmd: K.Command) -> None:
        if isinstance(cmd, K.Seq):
            for sub in cmd.commands:
                visit(sub)
        elif isinstance(cmd, K.While):
            for var in K.modified_vars(cmd.body):
                loop_modified.add(var)
                defs.pop(var, None)
        elif isinstance(cmd, K.If):
            for var in K.modified_vars(cmd):
                loop_modified.add(var)
                defs.pop(var, None)
        elif isinstance(cmd, K.Assign):
            mapping = {v: e for v, e in defs.items()
                       if v not in loop_modified}
            defs[cmd.var] = T.substitute(cmd.expr, mapping)

    visit(fragment.body)
    return defs


@dataclass
class LoopTemplate:
    """Candidate invariant clauses for one loop."""

    loop_id: str
    cmp_clauses: List[CmpClause] = field(default_factory=list)
    #: accumulator variable -> candidate defining expressions.
    eq_choices: Dict[str, List[T.TorNode]] = field(default_factory=dict)


@dataclass(frozen=True)
class GroupSpec:
    """A recognised GROUP BY-shaped accumulation (see ``_group_update``).

    The fragment shape::

        for l in r1:                 # outer scan (counter1)
            acc = 0
            for r in r2:             # inner scan (counter2)
                if phi_join(l, r) [and phi_sel2(r)]:
                    acc = acc + 1        # or acc + r.f
            if acc > 0:
                result.append({keys(l)..., out: acc})

    is the image of ``GroupAgg(keys, agg, phi_join, r1, sigma(r2))``.
    """

    outer_loop: str
    inner_loop: str
    r1: str
    r2: str
    counter1: str
    counter2: str
    acc: str
    agg: str                       # "count" | "sum"
    agg_field: Optional[str]
    out: str
    key_specs: Tuple[T.FieldSpec, ...]
    join_preds: Tuple[T.JoinFieldCmp, ...]
    sel2: Tuple[T.SelectPred, ...]


def _subsets(atoms: Sequence, max_size: int, min_size: int = 0):
    """All subsets of ``atoms`` up to ``max_size``, smallest first."""
    for size in range(min_size, min(len(atoms), max_size) + 1):
        yield from itertools.combinations(atoms, size)


def _sigma(preds: Tuple[T.SelectPred, ...], rel: T.TorNode) -> T.TorNode:
    if not preds:
        return rel
    return T.Sigma(T.SelectFunc(tuple(preds)), rel)


class TemplateGenerator:
    """Builds the candidate spaces for one fragment at one level."""

    def __init__(self, fragment: K.Fragment,
                 features: Optional[Features] = None,
                 level: int = 1,
                 symmetry_breaking: bool = True):
        self.fragment = fragment
        self.features = features or extract_features(fragment)
        self.level = level
        self.symmetry_breaking = symmetry_breaking

    # -- shared shape machinery ---------------------------------------------

    def _loop_chain(self, loop_id: str) -> List[str]:
        """Loop ids from the outermost enclosing loop down to ``loop_id``."""
        chain = [loop_id]
        info = self.features.loops[loop_id]
        while info.parent is not None:
            chain.insert(0, info.parent)
            info = self.features.loops[info.parent]
        return chain

    def _scan_of(self, loop_id: str) -> Optional[Tuple[str, str]]:
        """(counter, relation var) of a canonical scanning loop."""
        info = self.features.loops[loop_id]
        if info.counter is None:
            return None
        scanned = info.scanned
        if isinstance(scanned, T.Sort):
            scanned = scanned.rel
        if not isinstance(scanned, T.Var):
            return None
        return info.counter, scanned.name

    def full_exprs(self, update: Update) -> List[T.TorNode]:
        """Candidate full-scan expressions for one accumulator update.

        The returned expressions describe the accumulator's value after
        the scan completes, in terms of the base relation variables.
        """
        group = self._group_update(update)
        if group is not None:
            return self._group_exprs(update, group)

        if update.opaque_guards:
            minmax = self._minmax_exprs(update)
            return minmax if minmax is not None else []

        chain = self._loop_chain(update.loop_id)
        if any(self._scan_of(lid) is None for lid in chain):
            return []

        if len(chain) == 1:
            if update.contains_atoms:
                return self._contains_exprs(update, chain[0])
            return self._single_exprs(update, chain[0])
        if len(chain) == 2:
            return self._join_exprs(update, chain[0], chain[1])
        if len(chain) == 3:
            return self._join_exprs3(update, chain)
        return []  # deeper nests are outside the template space

    # -- single-relation shapes ----------------------------------------------

    def _single_exprs(self, update: Update, loop_id: str) -> List[T.TorNode]:
        counter, rel_var = self._scan_of(loop_id)
        base = T.Var(rel_var)
        atoms = [a.pred for a in update.sel_atoms if a.rel_var == rel_var]
        if any(a.rel_var != rel_var for a in update.sel_atoms):
            return []

        out: List[T.TorNode] = []
        for preds in _subsets(atoms, self.level):
            filtered = _sigma(tuple(preds), base)
            out.extend(self._finish(update, filtered, side_of={}))
            if not self.symmetry_breaking and len(preds) == 2:
                # Redundant symmetric variants for the ablation study:
                # nested sigmas and the flipped conjunction order.
                nested = _sigma((preds[1],), _sigma((preds[0],), base))
                out.extend(self._finish(update, nested, side_of={}))
                flipped = _sigma((preds[1], preds[0]), base)
                out.extend(self._finish(update, flipped, side_of={}))
        return out

    def _contains_exprs(self, update: Update, loop_id: str) -> List[T.TorNode]:
        counter, rel_var = self._scan_of(loop_id)
        base = T.Var(rel_var)
        sel_atoms = [a.pred for a in update.sel_atoms if a.rel_var == rel_var]
        out: List[T.TorNode] = []
        for catom in update.contains_atoms:
            if catom.rel_var != rel_var:
                continue
            member = T.RecordIn(catom.target, field=catom.field)
            for preds in _subsets(sel_atoms, max(0, self.level - 1)):
                filtered = T.Sigma(T.SelectFunc((member,) + tuple(preds)), base)
                out.extend(self._finish(update, filtered, side_of={}))
        return out

    # -- join shapes ----------------------------------------------------------

    def _join_exprs(self, update: Update, outer_id: str, inner_id: str
                    ) -> List[T.TorNode]:
        outer_counter, r1 = self._scan_of(outer_id)
        inner_counter, r2 = self._scan_of(inner_id)

        join_atoms = [a.pred for a in update.join_atoms
                      if a.left_var == r1 and a.right_var == r2]
        if len(join_atoms) != len(update.join_atoms):
            return []  # join predicates over unexpected relations
        sel1 = [a.pred for a in update.sel_atoms if a.rel_var == r1]
        sel2 = [a.pred for a in update.sel_atoms if a.rel_var == r2]
        if len(sel1) + len(sel2) != len(update.sel_atoms):
            return []

        min_join = 1 if self.level < 2 else 0  # cross joins from level 2
        side_of = {r1: "left", r2: "right"}
        out: List[T.TorNode] = []
        for join_preds in _subsets(join_atoms, self.level, min_size=min_join):
            sel_budget = max(0, self.level - max(1, len(join_preds)) + 1)
            for preds1 in _subsets(sel1, sel_budget):
                for preds2 in _subsets(sel2, sel_budget):
                    left = _sigma(tuple(preds1), T.Var(r1))
                    right = _sigma(tuple(preds2), T.Var(r2))
                    joined = T.Join(T.JoinFunc(tuple(join_preds)), left, right)
                    out.extend(self._finish(update, joined, side_of))
        return out

    def _join_exprs3(self, update: Update, chain: List[str]
                     ) -> List[T.TorNode]:
        """Candidates for a three-deep scan nest: a left-deep join chain.

        The shape is ``join(join(r1, r2), r3)``; predicates between the
        outer pair feed the inner join, predicates reaching ``r3`` feed
        the outer join with their left fields qualified through the
        pair's side (``left.f`` for ``r1`` fields, ``right.f`` for
        ``r2`` fields).  Both connecting predicates are required below
        level 2 (partial cross products only enter with the wider
        budget, mirroring the two-deep generator).
        """
        (c1, r1), (c2, r2), (c3, r3) = [self._scan_of(lid) for lid in chain]
        if len({r1, r2, r3}) != 3:
            return []

        pools = {(r1, r2): [], (r1, r3): [], (r2, r3): []}
        for atom in update.join_atoms:
            key = (atom.left_var, atom.right_var)
            if key not in pools:
                return []
            pools[key].append(atom.pred)
        sel = {r: [] for r in (r1, r2, r3)}
        for atom in update.sel_atoms:
            if atom.rel_var not in sel:
                return []
            sel[atom.rel_var].append(atom.pred)
        if update.contains_atoms:
            return []

        out: List[T.TorNode] = []
        budget = self.level + 1
        for preds12 in _subsets(pools[(r1, r2)], self.level):
            for preds13 in _subsets(pools[(r1, r3)], self.level):
                for preds23 in _subsets(pools[(r2, r3)], self.level):
                    total = len(preds12) + len(preds13) + len(preds23)
                    if total > budget:
                        continue
                    connected = bool(preds12) and bool(preds13 or preds23)
                    if self.level < 2 and not connected:
                        continue
                    sel_budget = max(0, budget - max(2, total))
                    inner_preds = tuple(preds12)
                    outer_preds = tuple(
                        T.JoinFieldCmp("left.%s" % p.left_field, p.op,
                                       p.right_field) for p in preds13
                    ) + tuple(
                        T.JoinFieldCmp("right.%s" % p.left_field, p.op,
                                       p.right_field) for p in preds23)
                    for p1 in _subsets(sel[r1], sel_budget):
                        for p2 in _subsets(sel[r2], sel_budget):
                            for p3 in _subsets(sel[r3], sel_budget):
                                inner = T.Join(T.JoinFunc(inner_preds),
                                               _sigma(tuple(p1), T.Var(r1)),
                                               _sigma(tuple(p2), T.Var(r2)))
                                joined = T.Join(T.JoinFunc(outer_preds),
                                                inner,
                                                _sigma(tuple(p3),
                                                       T.Var(r3)))
                                side_of = {r1: "left.left",
                                           r2: "left.right", r3: "right"}
                                out.extend(self._finish(update, joined,
                                                        side_of))
        return out

    # -- grouped aggregation ----------------------------------------------------

    def _scoped_aggregate(self, var: str
                          ) -> Optional[Tuple[Update, Update]]:
        """Match the per-outer-row accumulator pair (reset + inner agg).

        Returns ``(agg_update, reset_update)`` when ``var`` is reset to
        zero in an outer scanning loop and counted/summed in a directly
        nested inner scan — the accumulator of a GROUP BY-shaped nest.
        """
        updates = self.features.updates_for(var)
        if len(updates) != 2:
            return None
        # ``n = 0`` classifies as a flag reset (0 == False); a literal
        # ``track`` of Const(0) never survives that check, so both
        # spellings of the zero reset are accepted here.
        resets = [u for u in updates
                  if not u.guards
                  and (u.kind == "flag_false"
                       or (u.kind == "track" and u.elem == T.Const(0)))]
        aggs = [u for u in updates if u.kind in ("count", "sum")]
        if len(resets) != 1 or len(aggs) != 1:
            return None
        reset, agg = resets[0], aggs[0]
        agg_chain = self._loop_chain(agg.loop_id)
        if len(agg_chain) != 2 or agg_chain[0] != reset.loop_id:
            return None
        if any(self._scan_of(lid) is None for lid in agg_chain):
            return None
        return agg, reset

    def _group_update(self, update: Update) -> Optional[GroupSpec]:
        """Recognise the GROUP BY accumulation pattern (see GroupSpec)."""
        if update.kind != "append" or update.join_atoms \
                or update.contains_atoms:
            return None
        if len(update.opaque_guards) != 1 \
                or not isinstance(update.elem, T.RecordLit):
            return None
        guard = update.opaque_guards[0]
        if not (isinstance(guard, T.BinOp) and guard.op == ">"
                and guard.right == T.Const(0)
                and isinstance(guard.left, T.Var)):
            return None
        if self._loop_chain(update.loop_id) != [update.loop_id]:
            return None
        scan = self._scan_of(update.loop_id)
        if scan is None:
            return None
        counter1, r1 = scan

        scoped = self._scoped_aggregate(guard.left.name)
        if scoped is None:
            return None
        agg_up, _reset = scoped
        if self._loop_chain(agg_up.loop_id)[0] != update.loop_id:
            return None
        counter2, r2 = self._scan_of(agg_up.loop_id)
        if r2 == r1:
            return None

        join_preds = tuple(a.pred for a in agg_up.join_atoms
                           if a.left_var == r1 and a.right_var == r2)
        if not join_preds or len(join_preds) != len(agg_up.join_atoms):
            return None
        sel2 = tuple(a.pred for a in agg_up.sel_atoms if a.rel_var == r2)
        if len(sel2) != len(agg_up.sel_atoms) or agg_up.opaque_guards \
                or agg_up.contains_atoms:
            return None

        if agg_up.kind == "count":
            agg, agg_field = "count", None
        else:
            ref = _as_scan_ref(agg_up.elem, self.features.counters)
            if ref is None or ref.field is None or ref.rel_var != r2:
                return None
            agg, agg_field = "sum", ref.field

        # Element: outer-row key fields, the accumulator last (the
        # operator appends the aggregate after the keys).
        key_specs: List[T.FieldSpec] = []
        out_field: Optional[str] = None
        for name, value in update.elem.items:
            if value == T.Var(guard.left.name):
                if out_field is not None:
                    return None
                out_field = name
                continue
            if out_field is not None:
                return None  # aggregate field must come last
            ref = _as_scan_ref(value, self.features.counters)
            if ref is None or ref.field is None or ref.rel_var != r1:
                return None
            key_specs.append(T.FieldSpec(ref.field, name))
        if out_field is None:
            return None

        return GroupSpec(outer_loop=update.loop_id,
                         inner_loop=agg_up.loop_id,
                         r1=r1, r2=r2, counter1=counter1, counter2=counter2,
                         acc=guard.left.name, agg=agg, agg_field=agg_field,
                         out=out_field, key_specs=tuple(key_specs),
                         join_preds=join_preds, sel2=sel2)

    def _group_exprs(self, update: Update, spec: GroupSpec
                     ) -> List[T.TorNode]:
        """GroupAgg candidates for a recognised grouped accumulation."""
        sel1 = [a.pred for a in update.sel_atoms if a.rel_var == spec.r1]
        if len(sel1) != len(update.sel_atoms):
            return []
        right = _sigma(spec.sel2, T.Var(spec.r2))
        out: List[T.TorNode] = []
        for preds1 in _subsets(sel1, self.level):
            left = _sigma(tuple(preds1), T.Var(spec.r1))
            out.append(T.GroupAgg(
                fields=spec.key_specs, agg=spec.agg,
                agg_field=spec.agg_field, out=spec.out,
                pred=T.JoinFunc(spec.join_preds), left=left, right=right))
        return out

    def _scoped_partial(self, agg_up: Update) -> Optional[T.TorNode]:
        """The inner-loop invariant value of a scoped aggregate.

        At the head of the inner scan the accumulator equals the
        aggregate of the matching *prefix* of the inner relation,
        bound to the outer loop's current row.
        """
        spec = None
        for update in self.features.updates:
            candidate = self._group_update(update)
            if candidate is not None and candidate.acc == agg_up.var:
                spec = candidate
                break
        if spec is None:
            return None
        elem = T.Get(T.Var(spec.r1), T.Var(spec.counter1))
        prefix = T.Top(T.Var(spec.r2), T.Var(spec.counter2))
        matches = group_match_sigma(T.JoinFunc(spec.join_preds), elem,
                                    _sigma(spec.sel2, prefix))
        if spec.agg == "count":
            return T.Size(matches)
        return T.SumOp(T.Pi((T.FieldSpec(spec.agg_field, spec.agg_field),),
                            matches))

    # -- aggregates / wrappers -------------------------------------------------

    def _finish(self, update: Update, rel_expr: T.TorNode,
                side_of: Dict[str, str]) -> List[T.TorNode]:
        """Wrap a filtered/joined relation according to the update kind."""
        if update.kind in ("append", "set_add"):
            specs = element_projection(update.elem, self.features.counters,
                                       side_of)
            if specs is None:
                return []
            projected = T.Pi(specs, rel_expr) if specs else rel_expr
            if side_of and not specs:
                # Joins produce pair rows; an unprojected element can
                # only be the whole left/right side, which
                # element_projection would have reported.
                return []
            out = [projected]
            if update.kind == "set_add":
                out = [T.Unique(projected)]
            elif self.level >= 2:
                out.append(T.Unique(projected))
            if self.level >= 2:
                out.extend(self._top_variants(projected))
            return out

        if update.kind == "count":
            return [T.Size(rel_expr)]

        if update.kind == "sum":
            specs = element_projection(update.elem, self.features.counters,
                                       side_of)
            if not specs:
                return []
            return [T.SumOp(T.Pi(specs, rel_expr))]

        if update.kind == "flag_true":
            return [T.BinOp(">", T.Size(rel_expr), T.Const(0))]

        if update.kind == "flag_false":
            return [T.BinOp("=", T.Size(rel_expr), T.Const(0))]

        return []

    def _top_variants(self, expr: T.TorNode) -> List[T.TorNode]:
        """``top_k`` wrappers for loops bounded by a constant."""
        out = []
        for loop in self.features.loops.values():
            bound = getattr(loop, "bound_const", None)
            if bound is not None:
                out.append(T.Top(expr, T.Const(bound)))
        return out

    def _minmax_exprs(self, update: Update) -> Optional[List[T.TorNode]]:
        """Recognise running max/min tracking (category O / aggregates).

        Pattern: ``if (get(r, c).f > lv) lv := get(r, c).f`` — the guard
        compares the scanned field against the accumulator itself, which
        the atomizer necessarily reports as opaque.
        """
        if update.kind != "track" or len(update.opaque_guards) != 1:
            return None
        guard = update.opaque_guards[0]
        if not (isinstance(guard, T.BinOp) and guard.op in ("<", ">")):
            return None
        from repro.core.features import _as_scan_ref

        ref = _as_scan_ref(guard.left, self.features.counters)
        other = guard.right
        op = guard.op
        if ref is None:
            ref = _as_scan_ref(guard.right, self.features.counters)
            other = guard.left
            op = {"<": ">", ">": "<"}[guard.op]
        if ref is None or ref.field is None or other != T.Var(update.var):
            return None
        if update.elem is None:
            return None
        elem_ref = _as_scan_ref(update.elem, self.features.counters)
        if elem_ref != ref:
            return None

        chain = self._loop_chain(update.loop_id)
        if len(chain) != 1 or self._scan_of(chain[0]) is None:
            return None
        _, rel_var = self._scan_of(chain[0])
        if ref.rel_var != rel_var:
            return None
        sel_atoms = [a.pred for a in update.sel_atoms if a.rel_var == rel_var]
        agg = T.MaxOp if op == ">" else T.MinOp
        out: List[T.TorNode] = []
        for preds in _subsets(sel_atoms, self.level):
            filtered = _sigma(tuple(preds), T.Var(rel_var))
            out.append(agg(T.Pi((T.FieldSpec(ref.field, ref.field),),
                                filtered)))
        return out

    # -- postcondition / invariant assembly ------------------------------------

    def postcondition_exprs(self) -> List[T.TorNode]:
        """Candidate defining expressions for the result variable.

        Two shapes:

        * the result variable is itself a loop accumulator — candidates
          are its full-scan expressions;
        * the result is *derived* from accumulators (or directly from
          base relations) by straight-line code after the loops —
          ``return n > 0``, ``return len(issues)`` — in which case the
          defining expression is taken symbolically and each
          accumulator occurrence is replaced by its full-scan
          candidates.
        """
        result = self.fragment.result_var
        updates = self.features.updates_for(result)
        if updates:
            if len(updates) > 1:
                kinds = {u.kind for u in updates}
                if kinds != {"flag_true"} and kinds != {"flag_false"}:
                    return []
                updates = updates[:1]
            candidates = self.full_exprs(updates[0])
        else:
            candidates = self._derived_result_exprs(result)
        seen = set()
        unique: List[T.TorNode] = []
        for expr in sorted(candidates, key=lambda e: e.size()):
            if expr not in seen:
                seen.add(expr)
                unique.append(expr)
        return unique

    def _derived_result_exprs(self, result: str) -> List[T.TorNode]:
        base = exit_definitions(self.fragment).get(result)
        if base is None:
            return []
        acc_vars = sorted(
            v for v in T.free_vars(base) if self.features.updates_for(v))
        if not acc_vars:
            return [base]
        pools: List[List[T.TorNode]] = []
        for var in acc_vars:
            updates = self.features.updates_for(var)
            exprs = self.full_exprs(updates[0]) if len(updates) == 1 else []
            if not exprs:
                return []
            pools.append(exprs)
        out: List[T.TorNode] = []
        for combo in itertools.product(*pools):
            out.append(T.substitute(base, dict(zip(acc_vars, combo))))
        return out

    def loop_template(self, loop_id: str) -> LoopTemplate:
        """Candidate invariant clauses for one loop."""
        template = LoopTemplate(loop_id=loop_id)
        info = self.features.loops[loop_id]

        # Comparison clauses: bounds for this loop's counter and every
        # enclosing loop's counter.
        for lid in self._loop_chain(loop_id):
            scan = self._scan_of(lid)
            if scan is None:
                continue
            counter, rel_var = scan
            size = T.Size(T.Var(rel_var))
            template.cmp_clauses.append(
                CmpClause(T.BinOp(">=", T.Var(counter), T.Const(0))))
            template.cmp_clauses.append(
                CmpClause(T.BinOp("<=", T.Var(counter), size)))
            if lid != loop_id:
                template.cmp_clauses.append(
                    CmpClause(T.BinOp("<", T.Var(counter), size)))
            bound = getattr(self.features.loops[lid], "bound_const", None)
            if bound is not None:
                template.cmp_clauses.append(
                    CmpClause(T.BinOp("<=", T.Var(counter), T.Const(bound))))

        # Equality clauses for each accumulator the loop must pin.
        for var in info.accumulators:
            choices = self._invariant_exprs_for(var, loop_id)
            if choices:
                template.eq_choices[var] = choices

        # Grouped accumulations: the inner scan does not modify the
        # result list, but its invariant must still pin it (the outer
        # invariant cannot be re-established at inner exit otherwise).
        for var in self._frozen_group_accumulators(loop_id):
            if var not in template.eq_choices:
                choices = self._invariant_exprs_for(var, loop_id)
                if choices:
                    template.eq_choices[var] = choices
        return template

    def _frozen_group_accumulators(self, loop_id: str) -> List[str]:
        """Group-accumulation result vars frozen while ``loop_id`` runs."""
        out: List[str] = []
        info = self.features.loops[loop_id]
        for ancestor in self._loop_chain(loop_id)[:-1]:
            for var in self.features.loops[ancestor].accumulators:
                if var in info.modified or var in out:
                    continue
                updates = self.features.updates_for(var)
                if len(updates) == 1 \
                        and self._group_update(updates[0]) is not None:
                    out.append(var)
        return out

    def _invariant_exprs_for(self, var: str, loop_id: str) -> List[T.TorNode]:
        scoped = self._scoped_aggregate(var)
        if scoped is not None:
            # Per-outer-row aggregate: pinned to the matching prefix
            # inside its own loop, unconstrained at the outer head (its
            # incoming value there is the previous row's final count).
            agg_up, _reset = scoped
            if loop_id != agg_up.loop_id:
                return []
            partial = self._scoped_partial(agg_up)
            return [partial] if partial is not None else []

        updates = self.features.updates_for(var)
        if len(updates) != 1:
            updates = updates[:1] if updates else []
        if not updates:
            return []
        update = updates[0]
        full = self.full_exprs(update)
        if not full:
            return []

        chain = self._loop_chain(update.loop_id)
        out: List[T.TorNode] = []
        if loop_id in chain:
            # Invariant at nest position t: the completed outer
            # prefixes plus the partial current rows, one part per
            # enclosing loop (Fig. 10 rows for t=0, Fig. 12's inner
            # shape for t=1, and its three-part extension for t=2).
            t = chain.index(loop_id)
            scans = [self._scan_of(lid) for lid in chain]
            parts: List[Dict[str, T.TorNode]] = []
            for m in range(t + 1):
                subst: Dict[str, T.TorNode] = {}
                for k in range(m):
                    counter_k, rel_k = scans[k]
                    subst[rel_k] = T.Singleton(
                        T.Get(T.Var(rel_k), T.Var(counter_k)))
                counter_m, rel_m = scans[m]
                subst[rel_m] = T.Top(T.Var(rel_m), T.Var(counter_m))
                parts.append(subst)
            for expr in full:
                out.append(self._combine_parts(expr, parts))
        elif len(chain) == 1 and chain[0] in self._loop_chain(loop_id) \
                and self._group_update(update) is not None:
            # A grouped accumulation is updated in the *outer* loop but
            # its inner scan's invariant must still pin it: the value is
            # frozen at the outer prefix while the inner loop runs.
            counter, rel_var = self._scan_of(chain[0])
            prefix = T.Top(T.Var(rel_var), T.Var(counter))
            out = [T.substitute(e, {rel_var: prefix}) for e in full]
        else:
            return []

        seen = set()
        unique: List[T.TorNode] = []
        for expr in sorted(out, key=lambda e: e.size()):
            if expr not in seen:
                seen.add(expr)
                unique.append(expr)
        return unique

    def _combine_parts(self, expr: T.TorNode,
                       parts: List[Dict[str, T.TorNode]]) -> T.TorNode:
        """Combine the per-part substitution instances of ``expr``.

        Relation-valued shapes concatenate (right-associated, matching
        the prover's normal form); ``size``/``sum`` add; flag shapes
        (``size(...) > 0``) combine the underlying sizes; ``max``/
        ``min`` recombine over the concatenated relation.
        """
        if len(parts) == 1:
            return T.substitute(expr, parts[0])
        if isinstance(expr, (T.Size, T.SumOp)):
            combined = T.substitute(expr, parts[0])
            for subst in parts[1:]:
                combined = T.BinOp("+", combined, T.substitute(expr, subst))
            return combined
        if isinstance(expr, T.BinOp) and isinstance(expr.left, T.Size):
            # size(...) > 0  — combine the underlying sizes.
            combined = T.Size(T.substitute(expr.left.rel, parts[0]))
            for subst in parts[1:]:
                combined = T.BinOp("+", combined,
                                   T.Size(T.substitute(expr.left.rel,
                                                       subst)))
            return T.BinOp(expr.op, combined, expr.right)
        if isinstance(expr, (T.MaxOp, T.MinOp)):
            return type(expr)(self._cat_fold(
                [T.substitute(expr.rel, subst) for subst in parts]))
        return self._cat_fold([T.substitute(expr, subst)
                               for subst in parts])

    @staticmethod
    def _cat_fold(instances: List[T.TorNode]) -> T.TorNode:
        out = instances[-1]
        for part in reversed(instances[:-1]):
            out = T.Concat(part, out)
        return out
