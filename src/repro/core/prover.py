"""Formal validation of synthesized invariants (paper Sec. 5).

The paper validates candidate invariants/postconditions with Z3 plus the
TOR axioms of Appendix C.  Z3 is unavailable in this offline
environment, so this module implements the validation directly: an
*equational prover* that discharges each verification condition by
rewriting both sides of every equality goal to a normal form using the
TOR axioms, under the arithmetic facts of the VC's hypotheses.

The rewrite system encodes exactly the reasoning the paper's axioms
support:

* list structure — ``append(r, e) = cat(r, [e])``, associativity of
  ``cat``, unit laws for ``[]``;
* ``top`` unfolding — ``top(r, e+1) = cat(top(r, e), [get(r, e)])`` when
  the facts prove ``0 <= e < size(r)``; ``top(r, e) = r`` when they
  prove ``e >= size(r)``; ``top(r, 0) = []``;
* homomorphisms — ``sigma``/``pi``/``join``/``size``/``sum``/``max``/
  ``min`` distribute over ``cat`` and collapse on ``[]``/singletons;
* fact-conditioned steps — ``sigma_phi([e])`` reduces to ``[e]`` or
  ``[]`` when the facts prove or refute ``phi(e)``; the same for join
  predicates and for max/min one-step recombination;
* ``sort``/``unique`` are uninterpreted except for the algebraic
  properties the paper lists (Sec. 3.1) plus ``unique(cat(unique(x), y))
  = unique(cat(x, y))`` used by set-accumulation invariants.

Scalar goals go to the Fourier-Motzkin engine of
:mod:`repro.core.arith`.  The prover is *sound but incomplete* — exactly
the posture of the paper ("there are some formulas involving sort and
unique that we cannot prove") — and reports which goal it got stuck on,
which the driver surfaces in failure diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.arith import FactSet, delinearize, linearize
from repro.core.logic import (
    And,
    Assignment,
    Bool,
    Formula,
    Implies,
    NotF,
    Or,
    PredApp,
)
from repro.core.vcgen import VC, VCSet
from repro.tor import ast as T
from repro.tor.pretty import pretty


@dataclass
class ProofResult:
    """Outcome of validating one assignment against a VC set."""

    proved: bool
    failures: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.proved


class _BoolFacts:
    """Non-arithmetic boolean facts: proved-true and proved-false sets."""

    def __init__(self):
        self.true: Set[T.TorNode] = set()
        self.false: Set[T.TorNode] = set()
        self._sig: Optional[Tuple] = None

    def copy(self) -> "_BoolFacts":
        out = _BoolFacts()
        out.true = set(self.true)
        out.false = set(self.false)
        out._sig = self._sig
        return out

    def add(self, expr: T.TorNode, positive: bool) -> None:
        (self.true if positive else self.false).add(expr)
        self._sig = None

    def signature(self) -> Tuple:
        """Hashable content fingerprint for the normal-form cache."""
        if self._sig is None:
            self._sig = (frozenset(self.true), frozenset(self.false))
        return self._sig


class Prover:
    """Equational/inductive validation of a candidate assignment."""

    def __init__(self, vcset: VCSet, max_rewrite_passes: int = 60,
                 nf_cache: bool = True):
        self.vcset = vcset
        self.max_rewrite_passes = max_rewrite_passes
        # Integer-typed variables for the arithmetic engine: loop
        # counters and anything compared against a size.
        from repro.kernel.analysis import analyze_loops

        loops = analyze_loops(vcset.fragment)
        self.int_vars = {info.counter for info in loops.values()
                         if info.counter is not None}
        # Normal-form memo: (expr, facts signature, bools signature) ->
        # normalized expr.  Normalization is a pure function of the
        # expression and the fact context, so results are shared across
        # VCs, candidate assignments and case splits whose contexts
        # coincide — and across the repeated re-normalization of stable
        # subterms within a single fixpoint loop.
        self.use_nf_cache = nf_cache
        self._nf_cache: Dict[Tuple, T.TorNode] = {}
        self.nf_cache_hits = 0
        self.nf_cache_misses = 0

    # -- public API ----------------------------------------------------------

    def validate(self, assignment: Assignment) -> ProofResult:
        """Attempt to prove every VC; collect failures."""
        failures: List[str] = []
        for vc in self.vcset.vcs:
            failure = self._prove_vc(vc, assignment)
            if failure is not None:
                failures.append("%s: %s" % (vc.name, failure))
        return ProofResult(proved=not failures, failures=failures)

    # -- VC-level proof --------------------------------------------------------

    #: cap on hypothesis case-split combinations.
    MAX_CASES = 16

    def _prove_vc(self, vc: VC, assignment: Assignment) -> Optional[str]:
        facts = FactSet(int_vars=self.int_vars)
        bools = _BoolFacts()
        equations: Dict[str, T.TorNode] = {}
        disjunctions: List[List[T.TorNode]] = []

        for hyp in vc.hypotheses:
            self._assume(hyp, assignment, facts, bools, equations,
                         disjunctions)

        # Disjunctive hypotheses (e.g. the negated conjunction guard of
        # a constant-bounded scan, ``not (i < 10 and i < size(r))``)
        # require a case split: the conclusion must hold in every case.
        import itertools as _it

        combos = list(_it.product(*disjunctions)) if disjunctions else [()]
        if len(combos) > self.MAX_CASES:
            return "too many hypothesis cases (%d)" % len(combos)
        for combo in combos:
            case_facts = facts.copy()
            case_bools = bools.copy()
            for literal in combo:
                self._assume_bool(literal, case_facts, case_bools, equations)
            failure = self._prove(vc.conclusion, assignment, case_facts,
                                  case_bools, equations)
            if failure is not None:
                return failure
        return None

    def _assume(self, formula: Formula, assignment: Assignment,
                facts: FactSet, bools: _BoolFacts,
                equations: Dict[str, T.TorNode],
                disjunctions: Optional[List[List[T.TorNode]]] = None) -> None:
        """Add a hypothesis formula to the proof context."""
        if isinstance(formula, PredApp):
            predicate = assignment[formula.name]
            from repro.core.logic import CmpClause, EqClause

            # Bind by the application's parameter names (predicates may
            # declare their parameters in a different order).
            mapping = dict(zip(formula.params, formula.args))
            for clause in predicate.clauses:
                if isinstance(clause, EqClause):
                    target = mapping.get(clause.var, T.Var(clause.var))
                    defining = T.substitute(clause.expr, mapping)
                    if isinstance(target, T.Var):
                        equations[target.name] = defining
                    else:
                        self._assume_bool(T.BinOp("=", target, defining),
                                          facts, bools, equations,
                                          disjunctions)
                else:
                    self._assume_bool(T.substitute(clause.expr, mapping),
                                      facts, bools, equations, disjunctions)
            return
        if isinstance(formula, Bool):
            self._assume_bool(formula.expr, facts, bools, equations,
                              disjunctions)
            return
        if isinstance(formula, And):
            for part in formula.parts:
                self._assume(part, assignment, facts, bools, equations,
                             disjunctions)
            return
        if isinstance(formula, NotF):
            if isinstance(formula.part, Bool):
                self._assume_bool(T.Not(formula.part.expr), facts, bools,
                                  equations, disjunctions)
            return
        # Or / Implies hypotheses do not occur in generated VCs.

    def _assume_bool(self, expr: T.TorNode, facts: FactSet,
                     bools: _BoolFacts, equations: Dict[str, T.TorNode],
                     disjunctions: Optional[List[List[T.TorNode]]] = None
                     ) -> None:
        expr = T.substitute(expr, equations)
        expr = self._normalize(expr, facts, bools)
        self._assume_normalized(expr, facts, bools, positive=True,
                                disjunctions=disjunctions)

    def _assume_normalized(self, expr: T.TorNode, facts: FactSet,
                           bools: _BoolFacts, positive: bool,
                           disjunctions: Optional[List[List[T.TorNode]]]
                           = None) -> None:
        if isinstance(expr, T.Not):
            self._assume_normalized(expr.expr, facts, bools, not positive,
                                    disjunctions)
            return
        if isinstance(expr, T.BinOp) and expr.op == "and" and positive:
            self._assume_normalized(expr.left, facts, bools, True,
                                    disjunctions)
            self._assume_normalized(expr.right, facts, bools, True,
                                    disjunctions)
            return
        if isinstance(expr, T.BinOp) and expr.op == "or" and not positive:
            self._assume_normalized(expr.left, facts, bools, False,
                                    disjunctions)
            self._assume_normalized(expr.right, facts, bools, False,
                                    disjunctions)
            return
        if isinstance(expr, T.BinOp) and expr.op == "and" and not positive:
            # not (a and b): a case split between not-a and not-b.
            if disjunctions is not None:
                disjunctions.append([T.Not(expr.left), T.Not(expr.right)])
            return
        if isinstance(expr, T.BinOp) and expr.op == "or" and positive:
            if disjunctions is not None:
                disjunctions.append([expr.left, expr.right])
            return
        if isinstance(expr, T.BinOp) and expr.op in T.PREDICATE_OPS:
            from repro.core.features import NEGATED_OP

            op = expr.op if positive else NEGATED_OP[expr.op]
            if op != "!=":
                facts.add_comparison(op, expr.left, expr.right)
            bools.add(expr, positive)
            if op in ("=", "!="):
                flipped = T.BinOp(expr.op, expr.right, expr.left)
                bools.add(flipped, positive)
            return
        bools.add(expr, positive)

    # -- goal proving ------------------------------------------------------------

    def _prove(self, formula: Formula, assignment: Assignment,
               facts: FactSet, bools: _BoolFacts,
               equations: Dict[str, T.TorNode]) -> Optional[str]:
        """Prove a conclusion formula; return a failure message or None."""
        if isinstance(formula, And):
            for part in formula.parts:
                failure = self._prove(part, assignment, facts, bools, equations)
                if failure is not None:
                    return failure
            return None
        if isinstance(formula, Implies):
            # Assume the antecedent, prove the consequent.  A negated
            # conjunction antecedent (the else branch of a multi-clause
            # guard) contributes a disjunction, handled by case split.
            if isinstance(formula.antecedent, Bool):
                import itertools as _it

                branch_facts = facts.copy()
                branch_bools = bools.copy()
                local_disjunctions: List[List[T.TorNode]] = []
                self._assume_bool(formula.antecedent.expr, branch_facts,
                                  branch_bools, equations,
                                  local_disjunctions)
                combos = list(_it.product(*local_disjunctions)) \
                    if local_disjunctions else [()]
                if len(combos) > self.MAX_CASES:
                    return "too many branch cases (%d)" % len(combos)
                for combo in combos:
                    case_facts = branch_facts.copy()
                    case_bools = branch_bools.copy()
                    for literal in combo:
                        self._assume_bool(literal, case_facts, case_bools,
                                          equations)
                    failure = self._prove(formula.consequent, assignment,
                                          case_facts, case_bools, equations)
                    if failure is not None:
                        return failure
                return None
            return "unsupported implication antecedent"
        if isinstance(formula, PredApp):
            predicate = assignment[formula.name]
            expanded = predicate.as_formula_on(formula)
            return self._prove(expanded, assignment, facts, bools, equations)
        if isinstance(formula, Bool):
            return self._prove_bool(formula.expr, facts, bools, equations)
        if isinstance(formula, Or):
            for part in formula.parts:
                if self._prove(part, assignment, facts, bools,
                               equations) is None:
                    return None
            return "no disjunct provable: %s" % (formula,)
        if isinstance(formula, NotF):
            if isinstance(formula.part, Bool):
                return self._prove_bool(T.Not(formula.part.expr), facts,
                                        bools, equations)
            return "unsupported negated formula"
        return "unsupported formula %r" % (formula,)

    def _prove_bool(self, expr: T.TorNode, facts: FactSet,
                    bools: _BoolFacts,
                    equations: Dict[str, T.TorNode]) -> Optional[str]:
        expr = T.substitute(expr, equations)
        expr = self._normalize(expr, facts, bools)
        if self._holds(expr, facts, bools) is True:
            return None
        return "cannot prove %s" % pretty(expr)

    def _holds(self, expr: T.TorNode, facts: FactSet,
               bools: _BoolFacts) -> Optional[bool]:
        """Three-valued truth of a normalized boolean expression."""
        if isinstance(expr, T.Const) and isinstance(expr.value, bool):
            return expr.value
        if isinstance(expr, T.Not):
            inner = self._holds(expr.expr, facts, bools)
            return None if inner is None else not inner
        if isinstance(expr, T.BinOp) and expr.op == "and":
            left = self._holds(expr.left, facts, bools)
            right = self._holds(expr.right, facts, bools)
            if left is True and right is True:
                return True
            if left is False or right is False:
                return False
            return None
        if isinstance(expr, T.BinOp) and expr.op == "or":
            left = self._holds(expr.left, facts, bools)
            right = self._holds(expr.right, facts, bools)
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if expr in bools.true:
            return True
        if expr in bools.false:
            return False
        if isinstance(expr, T.BinOp) and expr.op in T.PREDICATE_OPS:
            if expr.op == "=" and self._relation_valued(expr.left):
                if expr.left == expr.right:
                    return True
                return None
            if facts.entails(expr.op, expr.left, expr.right):
                return True
            if facts.refutes(expr.op, expr.left, expr.right):
                return False
            # Fall back to the boolean store with flipped operands.
            flipped = T.BinOp(expr.op, expr.right, expr.left)
            if expr.op in ("=", "!=") and flipped in bools.true:
                return True
            if expr.op in ("=", "!=") and flipped in bools.false:
                return False
            return None
        return None

    @staticmethod
    def _relation_valued(expr: T.TorNode) -> bool:
        return isinstance(expr, (
            T.EmptyRelation, T.Concat, T.Singleton, T.Top, T.Pi, T.Sigma,
            T.Join, T.GroupAgg, T.Sort, T.Unique, T.Append, T.QueryOp))

    # -- the rewrite engine ---------------------------------------------------------

    def _normalize(self, expr: T.TorNode, facts: FactSet,
                   bools: _BoolFacts) -> T.TorNode:
        """Rewrite to normal form under the current facts."""
        key = None
        if self.use_nf_cache:
            key = (expr, facts.signature(), bools.signature())
            cached = self._nf_cache.get(key)
            if cached is not None:
                self.nf_cache_hits += 1
                return cached
            self.nf_cache_misses += 1
        current = expr
        for _ in range(self.max_rewrite_passes):
            rewritten = self._rewrite(current, facts, bools)
            if rewritten == current:
                break
            current = rewritten
        if key is not None:
            self._nf_cache[key] = current
        return current

    def _rewrite(self, expr: T.TorNode, facts: FactSet,
                 bools: _BoolFacts) -> T.TorNode:
        """One bottom-up rewrite pass."""
        expr = T.rebuild(expr, lambda child: self._rewrite(child, facts, bools))
        return self._rewrite_node(expr, facts, bools)

    def _rewrite_node(self, expr: T.TorNode, facts: FactSet,
                      bools: _BoolFacts) -> T.TorNode:
        # --- list constructors ------------------------------------------
        if isinstance(expr, T.Append):
            return T.Concat(expr.rel, T.Singleton(expr.elem))

        if isinstance(expr, T.Concat):
            if isinstance(expr.left, T.EmptyRelation):
                return expr.right
            if isinstance(expr.right, T.EmptyRelation):
                return expr.left
            if isinstance(expr.left, T.Concat):
                return T.Concat(expr.left.left,
                                T.Concat(expr.left.right, expr.right))
            return expr

        # --- scalars -----------------------------------------------------
        if isinstance(expr, T.BinOp) and expr.op in ("+", "-", "*"):
            return delinearize(linearize(expr))

        if isinstance(expr, T.Not):
            if isinstance(expr.expr, T.Const) and isinstance(expr.expr.value, bool):
                return T.Const(not expr.expr.value)
            if isinstance(expr.expr, T.Not):
                return expr.expr.expr
            return expr

        if isinstance(expr, T.FieldAccess):
            if isinstance(expr.expr, T.PairLit):
                path = expr.field.split(".", 1)
                side = expr.expr.left if path[0] == "left" else (
                    expr.expr.right if path[0] == "right" else None)
                if side is not None:
                    if len(path) == 1:
                        return side
                    return T.FieldAccess(side, path[1])
            if isinstance(expr.expr, T.RecordLit):
                for name, value in expr.expr.items:
                    if name == expr.field:
                        return value
            if isinstance(expr.expr, T.Get) and isinstance(expr.expr.rel, T.Pi):
                # get(pi_specs(r), e).f  ->  get(r, e).<source f>
                pi = expr.expr.rel
                for spec in pi.fields:
                    if spec.target == expr.field:
                        return T.FieldAccess(T.Get(pi.rel, expr.expr.idx),
                                             spec.source)
            return expr

        # --- top ------------------------------------------------------------
        if isinstance(expr, T.Top):
            count = linearize(expr.count)
            if count.is_constant and count.const == 0:
                return T.EmptyRelation()
            size_term = T.Size(expr.rel)
            if facts.entails(">=", expr.count, size_term):
                return expr.rel
            if not count.is_constant:
                # Canonicalise the count when the facts pin it to a
                # constant (e.g. i >= 10 and i <= 10 entail i = 10 on
                # the exit path of a constant-bounded scan).
                for const in facts.known_int_constants():
                    if facts.entails("=", expr.count, T.Const(const)):
                        return T.Top(expr.rel, T.Const(const))
            if isinstance(expr.rel, T.Top):
                if facts.entails("<=", expr.count, expr.rel.count):
                    return T.Top(expr.rel.rel, expr.count)
                if facts.entails("<=", expr.rel.count, expr.count):
                    return expr.rel
            # Unfold top(r, base + k) one step when 0 <= base+k-1 < size(r).
            if count.const >= 1:
                prev = delinearize(count.shift(-1))
                if (facts.entails(">=", prev, T.Const(0))
                        and facts.entails("<", prev, size_term)):
                    return T.Concat(T.Top(expr.rel, prev),
                                    T.Singleton(T.Get(expr.rel, prev)))
            return expr

        # --- selection ---------------------------------------------------------
        if isinstance(expr, T.Sigma):
            rel = expr.rel
            if isinstance(rel, T.EmptyRelation):
                return rel
            if isinstance(rel, T.Concat):
                return T.Concat(T.Sigma(expr.pred, rel.left),
                                T.Sigma(expr.pred, rel.right))
            if isinstance(rel, T.Singleton):
                truth = self._select_func_truth(expr.pred, rel.elem, facts,
                                                bools)
                if truth is True:
                    return rel
                if truth is False:
                    return T.EmptyRelation()
            return expr

        # --- projection -----------------------------------------------------------
        if isinstance(expr, T.Pi):
            rel = expr.rel
            if isinstance(rel, T.EmptyRelation):
                return rel
            if isinstance(rel, T.Concat):
                return T.Concat(T.Pi(expr.fields, rel.left),
                                T.Pi(expr.fields, rel.right))
            if isinstance(rel, T.Singleton):
                projected = self._project_row(expr.fields, rel.elem)
                if projected is not None:
                    return T.Singleton(projected)
            return expr

        # --- join ------------------------------------------------------------------
        if isinstance(expr, T.Join):
            left, right = expr.left, expr.right
            # Hoist selections out of join sides:
            # join(phi, r1, sigma(psi, r2)) = sigma(psi', join(phi, r1, r2))
            # with psi' reading the right pair component.  Sound because
            # the join pairs rows in order and the filter only inspects
            # one side; it lets singleton reasoning resolve the join
            # predicate before the selection predicate.
            if isinstance(right, T.Sigma):
                return T.Sigma(self._prefix_select(right.pred, "right"),
                               T.Join(expr.pred, left, right.rel))
            if isinstance(left, T.Sigma):
                return T.Sigma(self._prefix_select(left.pred, "left"),
                               T.Join(expr.pred, left.rel, right))
            if isinstance(left, T.EmptyRelation) or isinstance(
                    right, T.EmptyRelation):
                return T.EmptyRelation()
            if isinstance(left, T.Concat):
                return T.Concat(T.Join(expr.pred, left.left, right),
                                T.Join(expr.pred, left.right, right))
            if isinstance(left, T.Singleton) and isinstance(right, T.Concat):
                return T.Concat(T.Join(expr.pred, left, right.left),
                                T.Join(expr.pred, left, right.right))
            if isinstance(left, T.Singleton) and isinstance(right, T.Singleton):
                truth = self._join_func_truth(expr.pred, left.elem,
                                              right.elem, facts, bools)
                if truth is True:
                    return T.Singleton(T.PairLit(left.elem, right.elem))
                if truth is False:
                    return T.EmptyRelation()
            return expr

        # --- grouped aggregation -----------------------------------------------------
        if isinstance(expr, T.GroupAgg):
            left = expr.left
            if isinstance(left, T.EmptyRelation):
                return T.EmptyRelation()
            if isinstance(left, T.Concat):
                # Exact homomorphism: grouping is per left-row occurrence.
                return T.Concat(self._regroup(expr, left.left),
                                self._regroup(expr, left.right))
            if isinstance(left, T.Singleton):
                return self._group_singleton(expr, left.elem, facts, bools)
            return expr

        # --- aggregates ---------------------------------------------------------------
        if isinstance(expr, T.Size):
            rel = expr.rel
            if isinstance(rel, T.EmptyRelation):
                return T.Const(0)
            if isinstance(rel, T.Singleton):
                return T.Const(1)
            if isinstance(rel, T.Concat):
                return delinearize(linearize(
                    T.BinOp("+", T.Size(rel.left), T.Size(rel.right))))
            if isinstance(rel, (T.Pi, T.Sort)):
                return T.Size(rel.rel)
            return expr

        if isinstance(expr, T.SumOp):
            rel = expr.rel
            if isinstance(rel, T.EmptyRelation):
                return T.Const(0)
            if isinstance(rel, T.Concat):
                return delinearize(linearize(
                    T.BinOp("+", T.SumOp(rel.left), T.SumOp(rel.right))))
            if isinstance(rel, T.Singleton):
                scalar = self._row_scalar(rel.elem)
                if scalar is not None:
                    return scalar
            return expr

        if isinstance(expr, (T.MaxOp, T.MinOp)):
            rel = expr.rel
            is_max = isinstance(expr, T.MaxOp)
            if isinstance(rel, T.EmptyRelation):
                return T.Const(float("-inf") if is_max else float("inf"))
            if isinstance(rel, T.Singleton):
                scalar = self._row_scalar(rel.elem)
                if scalar is not None:
                    return scalar
            if isinstance(rel, T.Concat) and isinstance(rel.right, T.Singleton):
                scalar = self._row_scalar(rel.right.elem)
                rest = type(expr)(rel.left)
                if scalar is not None:
                    rest_n = self._normalize(rest, facts, bools)
                    op = ">" if is_max else "<"
                    if self._holds(T.BinOp(op, scalar, rest_n), facts,
                                   bools) is True:
                        return scalar
                    anti = "<=" if is_max else ">="
                    if self._holds(T.BinOp(anti, scalar, rest_n), facts,
                                   bools) is True:
                        return rest_n
                    if isinstance(rel.left, T.EmptyRelation):
                        return scalar
            return expr

        # --- unique / sort ---------------------------------------------------------------
        if isinstance(expr, T.Unique):
            rel = expr.rel
            if isinstance(rel, T.EmptyRelation):
                return rel
            if (isinstance(rel, T.Concat)
                    and isinstance(rel.left, T.Unique)):
                return T.Unique(T.Concat(rel.left.rel, rel.right))
            if isinstance(rel, T.Unique):
                return rel
            return expr

        # --- comparisons over normalized scalars -------------------------------------------
        if isinstance(expr, T.BinOp) and expr.op in T.PREDICATE_OPS:
            truth = self._holds(expr, facts, bools)
            if truth is not None and self._scalar_comparison(expr):
                return T.Const(truth)
            return expr

        return expr

    @staticmethod
    def _scalar_comparison(expr: T.TorNode) -> bool:
        return not Prover._relation_valued(expr.left) and \
            not Prover._relation_valued(expr.right)

    # -- predicate truth under facts -------------------------------------------

    def _select_func_truth(self, phi: T.SelectFunc, row: T.TorNode,
                           facts: FactSet, bools: _BoolFacts
                           ) -> Optional[bool]:
        results = []
        for pred in phi.preds:
            results.append(self._select_pred_truth(pred, row, facts, bools))
        if all(r is True for r in results):
            return True
        if any(r is False for r in results):
            return False
        return None

    def _select_pred_truth(self, pred: T.SelectPred, row: T.TorNode,
                           facts: FactSet, bools: _BoolFacts
                           ) -> Optional[bool]:
        if isinstance(pred, T.FieldCmpConst):
            lhs = self._normalize(self._path_access(row, pred.field),
                                  facts, bools)
            return self._holds(T.BinOp(pred.op, lhs, pred.const), facts, bools)
        if isinstance(pred, T.FieldCmpField):
            lhs = self._normalize(self._path_access(row, pred.field1),
                                  facts, bools)
            rhs = self._normalize(self._path_access(row, pred.field2),
                                  facts, bools)
            return self._holds(T.BinOp(pred.op, lhs, rhs), facts, bools)
        if isinstance(pred, T.RecordIn):
            subject = row if pred.field is None else self._path_access(
                row, pred.field)
            subject = self._normalize(subject, facts, bools)
            probe = T.Contains(subject, pred.rel)
            return self._holds(probe, facts, bools)
        return None

    def _join_func_truth(self, phi: T.JoinFunc, left: T.TorNode,
                         right: T.TorNode, facts: FactSet,
                         bools: _BoolFacts) -> Optional[bool]:
        if phi.is_true:
            return True
        results = []
        for pred in phi.preds:
            lhs = self._normalize(self._path_access(left, pred.left_field),
                                  facts, bools)
            rhs = self._normalize(self._path_access(right, pred.right_field),
                                  facts, bools)
            results.append(self._holds(T.BinOp(pred.op, lhs, rhs), facts,
                                       bools))
        if all(r is True for r in results):
            return True
        if any(r is False for r in results):
            return False
        return None

    @staticmethod
    def _regroup(group: T.GroupAgg, left: T.TorNode) -> T.GroupAgg:
        """The same grouped aggregation over a different left operand."""
        return T.GroupAgg(fields=group.fields, agg=group.agg,
                          agg_field=group.agg_field, out=group.out,
                          pred=group.pred, left=left, right=group.right)

    def _group_singleton(self, group: T.GroupAgg, elem: T.TorNode,
                         facts: FactSet, bools: _BoolFacts) -> T.TorNode:
        """``group([e], r)``: one group, or nothing, per the match count.

        The matching rows are the selection
        :func:`repro.core.features.group_match_sigma` builds — the same
        shape the template generator pins the inner count accumulator
        to, so the facts decide the group's presence (``size > 0`` /
        ``= 0``) and its aggregate value syntactically.
        """
        from repro.core.features import group_match_sigma

        matches = group_match_sigma(group.pred, elem, group.right)
        size_n = self._normalize(T.Size(matches), facts, bools)
        if self._holds(T.BinOp(">", size_n, T.Const(0)), facts,
                       bools) is True:
            if group.agg == "count":
                value: T.TorNode = size_n
            else:
                value = self._normalize(
                    T.SumOp(T.Pi((T.FieldSpec(group.agg_field,
                                              group.agg_field),),
                                 matches)), facts, bools)
            items = tuple(
                (spec.target,
                 self._normalize(self._path_access(elem, spec.source),
                                 facts, bools))
                for spec in group.fields) + ((group.out, value),)
            return T.Singleton(T.RecordLit(items))
        if self._holds(T.BinOp("=", size_n, T.Const(0)), facts,
                       bools) is True:
            return T.EmptyRelation()
        return self._regroup(group, T.Singleton(elem))

    @staticmethod
    def _prefix_select(phi: T.SelectFunc, side: str) -> T.SelectFunc:
        """Requalify selection predicates onto one pair side."""
        out = []
        for pred in phi.preds:
            if isinstance(pred, T.FieldCmpConst):
                out.append(T.FieldCmpConst("%s.%s" % (side, pred.field),
                                           pred.op, pred.const))
            elif isinstance(pred, T.FieldCmpField):
                out.append(T.FieldCmpField("%s.%s" % (side, pred.field1),
                                           pred.op,
                                           "%s.%s" % (side, pred.field2)))
            elif isinstance(pred, T.RecordIn):
                field = side if pred.field is None else "%s.%s" % (
                    side, pred.field)
                out.append(T.RecordIn(pred.rel, field))
            else:  # pragma: no cover - no other predicate kinds exist
                out.append(pred)
        return T.SelectFunc(tuple(out))

    @staticmethod
    def _row_scalar(row: T.TorNode) -> Optional[T.TorNode]:
        """Symbolic analogue of :func:`repro.tor.values.row_scalar`.

        Aggregate axioms apply to single-column rows; a symbolic
        single-field record literal exposes its value, anything else is
        unknown (None) and blocks the rewrite.
        """
        if isinstance(row, T.RecordLit) and len(row.items) == 1:
            return row.items[0][1]
        if isinstance(row, (T.FieldAccess, T.Const, T.Var, T.BinOp)):
            return row
        return None

    @staticmethod
    def _path_access(row: T.TorNode, path: str) -> T.TorNode:
        expr = row
        for part in path.split("."):
            if isinstance(expr, T.PairLit) and part == "left":
                expr = expr.left
            elif isinstance(expr, T.PairLit) and part == "right":
                expr = expr.right
            else:
                expr = T.FieldAccess(expr, part)
        return expr

    def _project_row(self, specs: Tuple[T.FieldSpec, ...],
                     row: T.TorNode) -> Optional[T.TorNode]:
        """Project a symbolic row; mirrors the evaluator's semantics."""
        if len(specs) == 1:
            value = self._path_access(row, specs[0].source)
            # A whole-side projection unwraps: the running example's pi
            # keeps the entire User record, matching the evaluator's
            # _normalise_projection behaviour.
            parts = specs[0].source.split(".")
            if all(part in ("left", "right") for part in parts):
                return value
            return T.RecordLit(((specs[0].target, value),))
        items = []
        for spec in specs:
            items.append((spec.target, self._path_access(row, spec.source)))
        return T.RecordLit(tuple(items))
