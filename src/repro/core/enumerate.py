"""Lazy best-first enumeration of scored cartesian products.

The synthesizer orders candidate combinations by total expression size
(simplest first, Sec. 4.5).  Materialising the full cartesian product
and sorting it — the seed implementation — costs memory and time
exponential in the number of choice axes even when the winning candidate
is among the very first combinations.  :func:`best_first_product`
produces the *same sequence* lazily: a heap-based k-way merge over
size-sorted axes that yields combinations in nondecreasing total size
while holding only the search frontier in memory.

Equivalence with ``sorted(itertools.product(*axes), key=total_size)`` is
exact, including tie order: Python's sort is stable, so equal-size
combinations stay in product order (lexicographic in the original
per-axis indices), and the heap tie-breaks on exactly that index vector.

The frontier stays small because each index vector is pushed exactly
once, by its unique predecessor: the predecessor of a vector is obtained
by decrementing its first non-zero coordinate, so a vector ``v`` may
only generate ``v + e_i`` when every coordinate before ``i`` is zero.
This removes the need for a visited set — memory is O(heap size), which
is bounded by the number of combinations *consumed* times the number of
axes, independent of both the total product size and the enumeration
cap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple


def merge_sorted_runs(runs: Sequence[Sequence[Any]],
                      key: Callable[[Any], Any]) -> Iterator[Any]:
    """Heap-based k-way merge of already-sorted runs, stable across runs.

    The sequence-merge primitive :func:`best_first_product` embodies,
    exposed directly: given runs each sorted by ``key`` (stably, i.e.
    equal keys keep their original relative order within a run), yields
    all items in nondecreasing ``key`` order, resolving ties to the
    *earlier run*, then the earlier position within it.  Concatenating
    partitions of a stably-sorted sequence and merging them therefore
    reproduces the original stable sort exactly — the property the
    partition-parallel ORDER BY operator
    (:class:`repro.sql.plan.physical.GatherMergeOp`) is built on.

    Holds one heap entry per run: O(k) memory for k runs.
    :func:`heapq.merge` implements exactly this contract (its tie-break
    counter is the iterable index), so the primitive delegates to it.
    """
    return heapq.merge(*runs, key=key)


@dataclass
class EnumerationStats:
    """Effort/memory accounting for one enumeration."""

    yielded: int = 0
    pushed: int = 0
    peak_frontier: int = 0


def best_first_product(axes: Sequence[Sequence[Any]],
                       size: Callable[[Any], int] = lambda item: item.size(),
                       stats: Optional[EnumerationStats] = None
                       ) -> Iterator[Tuple[Any, ...]]:
    """Yield tuples of ``product(*axes)`` in nondecreasing total ``size``.

    Produces exactly the sequence ``sorted(itertools.product(*axes),
    key=lambda c: sum(size(e) for e in c))`` without materialising the
    product.  ``stats``, when given, records how many combinations were
    yielded and the peak heap size (the memory high-water mark).
    """
    pools: List[List[Any]] = [list(axis) for axis in axes]
    if not pools:
        if stats is not None:
            stats.yielded = 1
        yield ()
        return
    if any(not pool for pool in pools):
        return

    sizes = [[size(item) for item in pool] for pool in pools]
    # Per axis: original indices sorted by (size, original position), so
    # walking an axis in this order is nondecreasing in size and, among
    # equal sizes, follows the original order.
    order = [sorted(range(len(pool)), key=lambda j, s=axis_sizes: (s[j], j))
             for pool, axis_sizes in zip(pools, sizes)]
    dims = len(pools)

    def entry(vec: Tuple[int, ...]):
        """Heap entry: (total size, original index vector, sorted vector).

        The original index vector is a bijection of ``vec``, so entries
        never compare equal and the heap order is total.  Along any
        successor edge the total size is nondecreasing and, when it
        ties, the original index vector strictly increases
        lexicographically — so heap pops come out globally sorted by
        (total, original indices), which is precisely the stable-sort
        order of the product.
        """
        total = 0
        orig = []
        for axis, idx in enumerate(vec):
            orig_idx = order[axis][idx]
            orig.append(orig_idx)
            total += sizes[axis][orig_idx]
        return total, tuple(orig), vec

    heap = [entry((0,) * dims)]
    if stats is not None:
        stats.pushed += 1
        stats.peak_frontier = max(stats.peak_frontier, 1)
    while heap:
        _, orig, vec = heapq.heappop(heap)
        if stats is not None:
            stats.yielded += 1
        yield tuple(pools[axis][orig_idx]
                    for axis, orig_idx in enumerate(orig))
        # Push successors with a unique-predecessor rule: v + e_i is
        # generated only when v[j] == 0 for every j < i.
        for axis in range(dims):
            if vec[axis] + 1 < len(pools[axis]):
                successor = vec[:axis] + (vec[axis] + 1,) + vec[axis + 1:]
                heapq.heappush(heap, entry(successor))
                if stats is not None:
                    stats.pushed += 1
                    if len(heap) > stats.peak_frontier:
                        stats.peak_frontier = len(heap)
            if vec[axis] != 0:
                break
