"""Feature extraction: how a fragment updates its accumulators.

Template generation (paper Sec. 4.3) "scans the input code fragment for
specific patterns".  This module performs that scan, producing:

* :class:`Update` — one accumulating assignment (append / set-add /
  counter increment / running sum / flag set / max-min tracking) with
  the path condition guarding it;
* *atoms* — the selection and join predicates mentioned by guards,
  classified relative to the loops' scan variables (``get(users, i).f``
  is field ``f`` of the relation scanned by the loop with counter
  ``i``);
* element shapes — which projection a loop body applies to scanned rows
  before accumulating them.

Everything here is purely syntactic; the synthesizer decides what to do
with the facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel import ast as K
from repro.kernel.analysis import LoopInfo, analyze_loops
from repro.tor import ast as T

#: Negation of each predicate operator, for `else`-branch guard atoms.
NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}

#: Operand-swap image of each predicate operator (``a op b`` = ``b op' a``).
FLIPPED_OP = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=",
              ">=": "<="}


@dataclass(frozen=True)
class ScanRef:
    """A reference to the current row of a scanning loop.

    ``rel_var`` is the relation variable being scanned, ``counter`` the
    loop counter, ``field`` the accessed field (``None`` for the whole
    row).
    """

    rel_var: str
    counter: str
    field: Optional[str] = None


@dataclass(frozen=True)
class SelAtom:
    """A selection predicate on one scanned relation's rows."""

    rel_var: str
    pred: T.SelectPred


@dataclass(frozen=True)
class JoinAtom:
    """A join predicate between two scanned relations' rows.

    ``left_var`` belongs to the outer loop, ``right_var`` to the inner
    one, matching the left-major order of the TOR join.
    """

    left_var: str
    right_var: str
    pred: T.JoinFieldCmp


@dataclass(frozen=True)
class ContainsAtom:
    """A ``contains(e, rel)`` guard: scanned rows filtered by membership."""

    rel_var: str            # the scanned relation being filtered
    field: Optional[str]    # field of the scanned row tested (None = whole)
    target: T.TorNode       # the relation searched (a Var, usually)


@dataclass
class Update:
    """One accumulator-modifying assignment inside a loop body."""

    var: str
    loop_id: str
    kind: str  # append | set_add | count | sum | flag_true | flag_false | track
    elem: Optional[T.TorNode]  # the appended/summed element expression
    guards: Tuple[T.TorNode, ...]  # path condition, outermost first

    #: atoms recognised in ``guards`` (filled by :func:`extract_features`).
    sel_atoms: Tuple[SelAtom, ...] = ()
    join_atoms: Tuple[JoinAtom, ...] = ()
    contains_atoms: Tuple[ContainsAtom, ...] = ()
    #: guard conjuncts that could not be atomized.
    opaque_guards: Tuple[T.TorNode, ...] = ()


@dataclass
class Features:
    """All extracted facts for one fragment."""

    fragment: K.Fragment
    loops: Dict[str, LoopInfo]
    #: loop counter name -> (relation var, loop id)
    counters: Dict[str, Tuple[str, str]]
    updates: List[Update] = field(default_factory=list)

    def updates_for(self, var: str) -> List[Update]:
        return [u for u in self.updates if u.var == var]

    def accumulators(self) -> List[str]:
        seen: List[str] = []
        for update in self.updates:
            if update.var not in seen:
                seen.append(update.var)
        return seen


def _as_scan_ref(expr: T.TorNode, counters: Dict[str, Tuple[str, str]]
                 ) -> Optional[ScanRef]:
    """Recognise ``get(rel, c)`` or ``get(rel, c).f`` for a scan counter."""
    if isinstance(expr, T.FieldAccess):
        base = _as_scan_ref(expr.expr, counters)
        if base is not None and base.field is None:
            return ScanRef(base.rel_var, base.counter, expr.field)
        return None
    if isinstance(expr, T.Get) and isinstance(expr.idx, T.Var):
        counter = expr.idx.name
        if counter in counters:
            rel_var, _ = counters[counter]
            rel = expr.rel
            # Allow get(sort_f(rel), c) — scanning a sorted copy.
            if isinstance(rel, T.Sort):
                rel = rel.rel
            if isinstance(rel, T.Var) and rel.name == rel_var:
                return ScanRef(rel_var, counter, None)
    return None


def _is_loop_free_scalar(expr: T.TorNode, fragment: K.Fragment,
                         modified: set) -> bool:
    """True when ``expr`` is a scalar constant/input not modified by loops."""
    for node in expr.walk():
        if isinstance(node, T.Var):
            if node.name in modified:
                return False
            info = fragment.var_info(node.name)
            if info is not None and info.kind == "relation":
                return False
        elif not isinstance(node, (T.Const, T.BinOp, T.Not, T.FieldAccess)):
            return False
    return True


def _loop_depth(features_counters: Dict[str, Tuple[str, str]],
                loops: Dict[str, LoopInfo], counter: str) -> int:
    _, loop_id = features_counters[counter]
    return loops[loop_id].depth


def atomize_condition(cond: T.TorNode, fragment: K.Fragment,
                      loops: Dict[str, LoopInfo],
                      counters: Dict[str, Tuple[str, str]],
                      modified: set, negate: bool = False
                      ) -> Tuple[List[SelAtom], List[JoinAtom],
                                 List[ContainsAtom], List[T.TorNode]]:
    """Classify a guard condition into predicate atoms.

    Returns ``(sel_atoms, join_atoms, contains_atoms, opaque)``; opaque
    collects conjuncts that do not fit the predicate grammar (their
    presence usually dooms synthesis, as the paper observes for custom
    comparators and type-based selections).
    """
    sel: List[SelAtom] = []
    join: List[JoinAtom] = []
    contains: List[ContainsAtom] = []
    opaque: List[T.TorNode] = []

    def visit(expr: T.TorNode, neg: bool) -> None:
        if isinstance(expr, T.Not):
            visit(expr.expr, not neg)
            return
        if isinstance(expr, T.BinOp) and expr.op == "and" and not neg:
            visit(expr.left, neg)
            visit(expr.right, neg)
            return
        if isinstance(expr, T.BinOp) and expr.op == "or" and neg:
            # De Morgan: not (a or b) = not a and not b.
            visit(expr.left, True)
            visit(expr.right, True)
            return
        if isinstance(expr, T.BinOp) and expr.op in T.PREDICATE_OPS:
            op = NEGATED_OP[expr.op] if neg else expr.op
            left_ref = _as_scan_ref(expr.left, counters)
            right_ref = _as_scan_ref(expr.right, counters)
            if left_ref is not None and right_ref is not None:
                if left_ref.rel_var == right_ref.rel_var:
                    if left_ref.field and right_ref.field:
                        sel.append(SelAtom(left_ref.rel_var, T.FieldCmpField(
                            left_ref.field, op, right_ref.field)))
                        return
                elif left_ref.field and right_ref.field:
                    # Order by loop depth: outer relation on the left.
                    ldepth = _loop_depth(counters, loops, left_ref.counter)
                    rdepth = _loop_depth(counters, loops, right_ref.counter)
                    if ldepth <= rdepth:
                        join.append(JoinAtom(
                            left_ref.rel_var, right_ref.rel_var,
                            T.JoinFieldCmp(left_ref.field, op, right_ref.field)))
                    else:
                        flipped = {"<": ">", ">": "<", "<=": ">=",
                                   ">=": "<=", "=": "=", "!=": "!="}[op]
                        join.append(JoinAtom(
                            right_ref.rel_var, left_ref.rel_var,
                            T.JoinFieldCmp(right_ref.field, flipped,
                                           left_ref.field)))
                    return
            elif left_ref is not None and left_ref.field is not None:
                if _is_loop_free_scalar(expr.right, fragment, modified):
                    sel.append(SelAtom(left_ref.rel_var, T.FieldCmpConst(
                        left_ref.field, op, expr.right)))
                    return
            elif right_ref is not None and right_ref.field is not None:
                if _is_loop_free_scalar(expr.left, fragment, modified):
                    flipped = FLIPPED_OP[op]
                    sel.append(SelAtom(right_ref.rel_var, T.FieldCmpConst(
                        right_ref.field, flipped, expr.left)))
                    return
            opaque.append(T.Not(expr) if neg else expr)
            return
        if isinstance(expr, T.Contains) and not neg:
            ref = _as_scan_ref(expr.elem, counters)
            if ref is not None:
                contains.append(ContainsAtom(ref.rel_var, ref.field, expr.rel))
                return
        opaque.append(T.Not(expr) if neg else expr)

    visit(cond, negate)
    return sel, join, contains, opaque


def _classify_assignment(cmd: K.Assign, modified: set
                         ) -> Tuple[str, Optional[T.TorNode]]:
    """Classify one accumulator assignment into an update kind."""
    expr = cmd.expr
    lv = cmd.var
    if isinstance(expr, T.Append) and expr.rel == T.Var(lv):
        return "append", expr.elem
    if (isinstance(expr, T.Unique) and isinstance(expr.rel, T.Append)
            and expr.rel.rel == T.Var(lv)):
        return "set_add", expr.rel.elem
    if isinstance(expr, T.BinOp) and expr.op == "+" and expr.left == T.Var(lv):
        if expr.right == T.Const(1):
            return "count", None
        return "sum", expr.right
    if isinstance(expr, T.BinOp) and expr.op == "+" and expr.right == T.Var(lv):
        if expr.left == T.Const(1):
            return "count", None
        return "sum", expr.left
    if expr == T.Const(True):
        return "flag_true", None
    if expr == T.Const(False):
        return "flag_false", None
    # Anything else (e.g. best := get(users, i).login) is a "track"
    # update: the accumulator follows the scan conditionally.
    return "track", expr


def extract_features(fragment: K.Fragment) -> Features:
    """Run the full feature scan over a fragment."""
    loops = analyze_loops(fragment)
    counters: Dict[str, Tuple[str, str]] = {}
    for info in loops.values():
        if info.counter is not None and isinstance(info.scanned, T.Var):
            counters[info.counter] = (info.scanned.name, info.loop_id)
        elif info.counter is not None and isinstance(info.scanned, T.Sort):
            inner = info.scanned.rel
            if isinstance(inner, T.Var):
                counters[info.counter] = (inner.name, info.loop_id)

    features = Features(fragment=fragment, loops=loops, counters=counters)
    modified = set(K.modified_vars(fragment.body))

    def walk(cmd: K.Command, loop_id: Optional[str],
             guards: Tuple[T.TorNode, ...]) -> None:
        if isinstance(cmd, K.Seq):
            for sub in cmd.commands:
                walk(sub, loop_id, guards)
            return
        if isinstance(cmd, K.If):
            walk(cmd.then_branch, loop_id, guards + (cmd.cond,))
            walk(cmd.else_branch, loop_id, guards + (T.Not(cmd.cond),))
            return
        if isinstance(cmd, K.While):
            walk(cmd.body, cmd.loop_id, ())
            return
        if isinstance(cmd, K.Assign) and loop_id is not None:
            info = loops[loop_id]
            if cmd.var == info.counter:
                return  # the scan counter itself
            if cmd.var in counters:
                return  # another loop's counter (e.g. j := 0 reset)
            kind, elem = _classify_assignment(cmd, modified)
            update = Update(var=cmd.var, loop_id=loop_id, kind=kind,
                            elem=elem, guards=guards)
            sel: List[SelAtom] = []
            join: List[JoinAtom] = []
            contains: List[ContainsAtom] = []
            opaque: List[T.TorNode] = []
            for guard in guards:
                s, j, c, o = atomize_condition(
                    guard, fragment, loops, counters, modified)
                sel.extend(s)
                join.extend(j)
                contains.extend(c)
                opaque.extend(o)
            update.sel_atoms = tuple(sel)
            update.join_atoms = tuple(join)
            update.contains_atoms = tuple(contains)
            update.opaque_guards = tuple(opaque)
            features.updates.append(update)

    walk(fragment.body, None, ())
    return features


def field_path_expr(base: T.TorNode, path: str) -> T.TorNode:
    """``base.f`` (or ``base.f.g`` for dotted paths) as field accesses."""
    expr = base
    for part in path.split("."):
        expr = T.FieldAccess(expr, part)
    return expr


def group_match_sigma(pred: T.JoinFunc, elem: T.TorNode,
                      right: T.TorNode) -> T.Sigma:
    """The matching rows of one left row, as a selection over ``right``.

    ``join([e], r, phi)``'s right-side participants equal
    ``sigma[r.f op' e.f'](r)`` with each join predicate flipped onto the
    right side and the left field read from ``elem``.  A selection
    already wrapping ``right`` folds into the same conjunction, so the
    template generator and the prover build byte-identical shapes (the
    prover matches them syntactically against invariant facts).
    """
    extra: Tuple[T.SelectPred, ...] = ()
    if isinstance(right, T.Sigma):
        extra = right.pred.preds
        right = right.rel
    bound = tuple(
        T.FieldCmpConst(p.right_field, FLIPPED_OP[p.op],
                        field_path_expr(elem, p.left_field))
        for p in pred.preds)
    return T.Sigma(T.SelectFunc(bound + extra), right)


def element_projection(elem: T.TorNode,
                       counters: Dict[str, Tuple[str, str]],
                       side_of: Dict[str, str]
                       ) -> Optional[Tuple[T.FieldSpec, ...]]:
    """Compute the projection a loop applies to scanned rows.

    ``side_of`` maps a relation variable to its join side prefix
    (``""`` when the element is drawn from a single relation, ``"left"``
    / ``"right"`` inside a join).  Returns the :class:`FieldSpec` tuple,
    ``()`` when the element is the whole (single) row unprojected, or
    ``None`` when the element does not come from the scans at all.
    """
    ref = _as_scan_ref(elem, counters)
    if ref is not None:
        side = side_of.get(ref.rel_var, "")
        if ref.field is None:
            if side:
                return (T.FieldSpec(side, "row"),)
            return ()
        source = "%s.%s" % (side, ref.field) if side else ref.field
        return (T.FieldSpec(source, ref.field),)
    if isinstance(elem, T.RecordLit):
        specs: List[T.FieldSpec] = []
        for name, value in elem.items:
            ref = _as_scan_ref(value, counters)
            if ref is None or ref.field is None:
                return None
            side = side_of.get(ref.rel_var, "")
            source = "%s.%s" % (side, ref.field) if side else ref.field
            specs.append(T.FieldSpec(source, name))
        return tuple(specs)
    return None
