"""A small linear-arithmetic entailment engine for the TOR prover.

The verification conditions' scalar obligations are linear facts over a
handful of *atoms* — loop counters, ``size(...)`` terms, aggregate terms
and record-field reads treated as opaque variables.  Examples from the
running example's proof:

    facts   i >= 0,  i <= size(users),  not (i < size(users))
    goal    i = size(users)                     (to collapse top_i)

    facts   i < size(users)
    goal    i + 1 <= size(users)                (integer reasoning)

This module implements Fourier-Motzkin elimination over rational
coefficients with strict/non-strict constraints.  Integer-typed atoms
(counters and ``size`` terms) get the usual tightening
``a < b  ==>  a + 1 <= b``; other atoms (field values, aggregates of
unknown type) keep real semantics, which is sound for the mixed goals
the prover asks about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.tor import ast as T

#: Atom — any non-linear scalar TOR expression, used as an FM variable.
Atom = T.TorNode


@dataclass
class LinExpr:
    """A linear expression: ``sum(coef * atom) + const``."""

    terms: Dict[Atom, Fraction] = field(default_factory=dict)
    const: Fraction = Fraction(0)

    def __add__(self, other: "LinExpr") -> "LinExpr":
        terms = dict(self.terms)
        for atom, coef in other.terms.items():
            terms[atom] = terms.get(atom, Fraction(0)) + coef
            if terms[atom] == 0:
                del terms[atom]
        return LinExpr(terms, self.const + other.const)

    def __neg__(self) -> "LinExpr":
        return LinExpr({a: -c for a, c in self.terms.items()}, -self.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + (-other)

    def scale(self, factor: Fraction) -> "LinExpr":
        if factor == 0:
            return LinExpr()
        return LinExpr({a: c * factor for a, c in self.terms.items()},
                       self.const * factor)

    def shift(self, delta) -> "LinExpr":
        return LinExpr(dict(self.terms), self.const + Fraction(delta))

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def atoms(self) -> Set[Atom]:
        return set(self.terms)


def linearize(expr: T.TorNode) -> LinExpr:
    """Convert a scalar TOR expression into a :class:`LinExpr`.

    Numeric constants become the constant part; ``+``/``-`` and
    multiplication by a constant distribute; anything else is an opaque
    atom with coefficient one.
    """
    if isinstance(expr, T.Const) and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        if expr.value in (float("inf"), float("-inf")):
            return LinExpr({expr: Fraction(1)})
        return LinExpr({}, Fraction(expr.value))
    if isinstance(expr, T.BinOp) and expr.op == "+":
        return linearize(expr.left) + linearize(expr.right)
    if isinstance(expr, T.BinOp) and expr.op == "-":
        return linearize(expr.left) - linearize(expr.right)
    if isinstance(expr, T.BinOp) and expr.op == "*":
        left, right = linearize(expr.left), linearize(expr.right)
        if left.is_constant:
            return right.scale(left.const)
        if right.is_constant:
            return left.scale(right.const)
    return LinExpr({expr: Fraction(1)})


def delinearize(lin: LinExpr) -> T.TorNode:
    """Rebuild a canonical TOR expression from a linear form.

    Used by the rewrite engine to normalise scalar sub-expressions:
    ``(i + 1) - 1`` round-trips to ``i``.
    """
    parts: List[T.TorNode] = []
    for atom in sorted(lin.terms, key=repr):
        coef = lin.terms[atom]
        if coef == 1:
            parts.append(atom)
        else:
            value = int(coef) if coef.denominator == 1 else float(coef)
            parts.append(T.BinOp("*", T.Const(value), atom))
    if lin.const != 0 or not parts:
        value = int(lin.const) if lin.const.denominator == 1 else float(lin.const)
        parts.append(T.Const(value))
    out = parts[0]
    for part in parts[1:]:
        out = T.BinOp("+", out, part)
    return out


@dataclass(frozen=True)
class Constraint:
    """``lin >= 0`` (non-strict) or ``lin > 0`` (strict)."""

    lin: LinExpr
    strict: bool = False


def _is_int_atom(atom: Atom, int_vars: Set[str]) -> bool:
    """Integer-typed atoms: sizes are cardinalities; counters are ints."""
    if isinstance(atom, T.Size):
        return True
    if isinstance(atom, T.Var):
        return atom.name in int_vars
    return False


class FactSet:
    """Accumulated arithmetic facts with entailment queries.

    Facts are added as comparison TOR expressions; queries ask whether a
    comparison is entailed.  ``size(...) >= 0`` is assumed implicitly
    for every ``size`` atom that appears anywhere in the system.
    """

    def __init__(self, int_vars: Optional[Set[str]] = None):
        self.constraints: List[Constraint] = []
        self.int_vars: Set[str] = set(int_vars or ())
        self._contradictory = False
        # Content signature, used by the prover's normal-form cache.
        # Entailment is a function of the ingested comparisons (plus
        # int_vars), so two FactSets with equal signatures answer every
        # query identically.
        self._sig_entries: List[Tuple[str, T.TorNode, T.TorNode]] = []
        self._sig: Optional[Tuple] = None

    def copy(self) -> "FactSet":
        out = FactSet(self.int_vars)
        out.constraints = list(self.constraints)
        out._contradictory = self._contradictory
        out._sig_entries = list(self._sig_entries)
        out._sig = self._sig
        return out

    def signature(self) -> Tuple:
        """Hashable content fingerprint (order-insensitive)."""
        if self._sig is None:
            self._sig = (frozenset(self._sig_entries),
                         frozenset(self.int_vars))
        return self._sig

    # -- fact ingestion ------------------------------------------------------

    def add_comparison(self, op: str, left: T.TorNode, right: T.TorNode) -> None:
        """Record ``left op right`` as a fact."""
        self._sig_entries.append((op, left, right))
        self._sig = None
        l, r = linearize(left), linearize(right)
        if op == "=":
            self.constraints.append(Constraint(r - l, strict=False))
            self.constraints.append(Constraint(l - r, strict=False))
        elif op == "!=":
            pass  # disequalities are kept by the prover's boolean store
        elif op == "<":
            self._add_strict(r - l)
        elif op == ">":
            self._add_strict(l - r)
        elif op == "<=":
            self.constraints.append(Constraint(r - l, strict=False))
        elif op == ">=":
            self.constraints.append(Constraint(l - r, strict=False))
        else:
            raise ValueError("not a comparison operator: %r" % op)

    def _add_strict(self, lin: LinExpr) -> None:
        # Integer tightening: over integer atoms, lin > 0 means lin >= 1.
        if all(_is_int_atom(a, self.int_vars) for a in lin.atoms()):
            self.constraints.append(Constraint(lin.shift(-1), strict=False))
        else:
            self.constraints.append(Constraint(lin, strict=True))

    def known_int_constants(self) -> List[int]:
        """Integer constants mentioned by any constraint.

        Used by the prover to canonicalise scalar terms that the facts
        pin to a constant value (``i >= 10`` with ``i <= 10``).
        """
        out: List[int] = []
        for con in self.constraints:
            value = con.lin.const
            for candidate in (value, -value, value + 1, -(value + 1),
                              value - 1):
                if candidate.denominator == 1:
                    ivalue = int(candidate)
                    if 0 <= ivalue <= 1_000_000 and ivalue not in out:
                        out.append(ivalue)
        return out

    # -- entailment ------------------------------------------------------------

    def entails(self, op: str, left: T.TorNode, right: T.TorNode) -> bool:
        """Is ``left op right`` entailed by the facts?"""
        l, r = linearize(left), linearize(right)
        if op == "=":
            return (self._entails_geq(r - l, strict=False)
                    and self._entails_geq(l - r, strict=False))
        if op == "<":
            return self._entails_geq(r - l, strict=True)
        if op == ">":
            return self._entails_geq(l - r, strict=True)
        if op == "<=":
            return self._entails_geq(r - l, strict=False)
        if op == ">=":
            return self._entails_geq(l - r, strict=False)
        if op == "!=":
            return (self._entails_geq(r - l, strict=True)
                    or self._entails_geq(l - r, strict=True))
        raise ValueError("not a comparison operator: %r" % op)

    def refutes(self, op: str, left: T.TorNode, right: T.TorNode) -> bool:
        """Is the *negation* of ``left op right`` entailed?"""
        negated = {"=": "!=", "!=": "=", "<": ">=", ">=": "<",
                   ">": "<=", "<=": ">"}[op]
        return self.entails(negated, left, right)

    def _entails_geq(self, lin: LinExpr, strict: bool) -> bool:
        """Facts entail ``lin >= 0`` (or ``> 0`` when strict)?

        Checked by refutation: add the negation and test feasibility via
        Fourier-Motzkin.  Negation of ``lin >= 0`` is ``-lin > 0``;
        negation of ``lin > 0`` is ``-lin >= 0`` (with integer
        tightening when applicable).
        """
        system = list(self.constraints)
        neg = -lin
        if strict:
            system.append(Constraint(neg, strict=False))
        else:
            if all(_is_int_atom(a, self.int_vars) for a in neg.atoms()):
                system.append(Constraint(neg.shift(-1), strict=False))
            else:
                system.append(Constraint(neg, strict=True))
        # Implicit size(...) >= 0 facts.
        seen_atoms: Set[Atom] = set()
        for con in system:
            seen_atoms |= con.lin.atoms()
        for atom in seen_atoms:
            if isinstance(atom, T.Size):
                self._ensure_size_nonneg(system, atom)
        return not _feasible(system)

    @staticmethod
    def _ensure_size_nonneg(system: List[Constraint], atom: Atom) -> None:
        system.append(Constraint(LinExpr({atom: Fraction(1)}), strict=False))


def _feasible(system: List[Constraint]) -> bool:
    """Fourier-Motzkin feasibility over the rationals.

    Sound and complete for rational systems; the integer tightening
    applied at ingestion recovers the integer consequences the prover
    needs.  Systems here are tiny (a dozen constraints, a handful of
    atoms), so the potential doubling per elimination is irrelevant.
    """
    constraints = list(system)
    while True:
        atoms: Set[Atom] = set()
        for con in constraints:
            atoms |= con.lin.atoms()
        if not atoms:
            break
        atom = sorted(atoms, key=repr)[0]
        upper: List[Constraint] = []  # coef < 0  ->  atom <= .../-coef
        lower: List[Constraint] = []  # coef > 0  ->  atom >= ...
        rest: List[Constraint] = []
        for con in constraints:
            coef = con.lin.terms.get(atom, Fraction(0))
            if coef > 0:
                lower.append(con)
            elif coef < 0:
                upper.append(con)
            else:
                rest.append(con)
        for lo in lower:
            for hi in upper:
                lo_coef = lo.lin.terms[atom]
                hi_coef = -hi.lin.terms[atom]
                combined = lo.lin.scale(hi_coef) + hi.lin.scale(lo_coef)
                combined.terms.pop(atom, None)
                rest.append(Constraint(combined,
                                       strict=lo.strict or hi.strict))
        constraints = rest
    for con in constraints:
        if con.strict and con.lin.const <= 0:
            return False
        if not con.strict and con.lin.const < 0:
            return False
    return True
