"""The QBS driver: kernel fragment in, SQL out (paper Fig. 5).

Pipeline stages, with the status taxonomy of Fig. 13 / Appendix A:

* **rejected** (``†``) — the fragment cannot even be expressed for
  synthesis: kernel-language violations (relational updates, unsupported
  types), or no persistent-data retrieval to push down.
* **failed** (``*``) — synthesis found no invariants/postcondition that
  both bounded-check and formally validate, at any template level, or
  the validated postcondition falls outside the translatable grammar.
* **translated** (``X``) — a postcondition was synthesized, proved
  against the verification conditions, and converted to SQL.

Formal validation runs *inside* the synthesis loop: a candidate that
survives bounded checking but fails the prover sends the search onward
(the paper's "ask the synthesizer to generate other candidates" retry,
Sec. 5), optionally after enlarging the bounded-checking relations.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.logic import Assignment
from repro.core.prover import Prover
from repro.core.synthesizer import (
    SynthesisOptions,
    SynthesisResult,
    SynthesisStats,
    Synthesizer,
)
from repro.kernel import ast as K
from repro.kernel.analysis import query_assignments
from repro.kernel.ast import KernelValidationError, validate_expression
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.tor import ast as T
from repro.tor.sqlgen import SQLTranslation, translate
from repro.tor.trans import NotTranslatableError


#: prover normal-form memo traffic, accumulated per fragment run.
_PROVER_NF_HITS = obs_metrics.counter(
    "repro_prover_nf_cache_hits_total",
    "prover normal-form memo hits")
_PROVER_NF_MISSES = obs_metrics.counter(
    "repro_prover_nf_cache_misses_total",
    "prover normal-form memo misses")


class QBSStatus(enum.Enum):
    """Outcome classes matching the paper's Appendix A markers."""

    TRANSLATED = "translated"   # X
    FAILED = "failed"           # * — no invariants found / not translatable
    REJECTED = "rejected"       # † — outside TOR / preprocessing limits

    @property
    def marker(self) -> str:
        return {"translated": "X", "failed": "*", "rejected": "†"}[self.value]


@dataclass
class QBSResult:
    """Everything QBS produced for one fragment."""

    fragment: K.Fragment
    status: QBSStatus
    sql: Optional[SQLTranslation] = None
    assignment: Optional[Assignment] = None
    postcondition_expr: Optional[T.TorNode] = None
    stats: Optional[SynthesisStats] = None
    reason: str = ""
    elapsed_seconds: float = 0.0
    #: pretty-printed postcondition and fragment name for results
    #: rebuilt from JSON (the ASTs themselves do not cross
    #: serialization boundaries).
    postcondition_text: str = ""
    fragment_name: Optional[str] = None

    @property
    def translated(self) -> bool:
        return self.status is QBSStatus.TRANSLATED

    # -- serialization (the service layer ships results as JSON) ----------

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe payload carrying everything the service reports.

        The kernel fragment and the predicate assignment stay behind:
        they are only meaningful in the process that synthesized them.
        """
        from repro.tor.pretty import pretty as pretty_tor

        postcondition = self.postcondition_text
        if self.postcondition_expr is not None:
            postcondition = pretty_tor(self.postcondition_expr)
        return {
            "fragment_name": (self.fragment.name if self.fragment
                              else self.fragment_name),
            "status": self.status.value,
            "marker": self.status.marker,
            "sql": ({"sql": self.sql.sql, "kind": self.sql.kind,
                     "columns": list(self.sql.columns)}
                    if self.sql is not None else None),
            "postcondition": postcondition or None,
            "stats": (dataclasses.asdict(self.stats)
                      if self.stats is not None else None),
            "reason": self.reason,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "QBSResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        sql = None
        if payload.get("sql") is not None:
            sql = SQLTranslation(sql=payload["sql"]["sql"],
                                 kind=payload["sql"]["kind"],
                                 columns=tuple(payload["sql"]["columns"]))
        stats = None
        if payload.get("stats") is not None:
            stats = SynthesisStats(**payload["stats"])
        return cls(fragment=None,
                   status=QBSStatus(payload["status"]),
                   sql=sql,
                   stats=stats,
                   reason=payload.get("reason", ""),
                   elapsed_seconds=payload.get("elapsed_seconds", 0.0),
                   postcondition_text=payload.get("postcondition") or "",
                   fragment_name=payload.get("fragment_name"))


@dataclass
class QBSOptions:
    """Driver configuration."""

    synthesis: SynthesisOptions = field(default_factory=SynthesisOptions)
    #: run the equational prover inside the synthesis loop.
    formal_validation: bool = True
    #: require SQL translatability inside the loop too, so the search
    #: skips postconditions that validate but cannot be emitted.
    require_translatable: bool = True


class QBS:
    """Query By Synthesis: infer SQL from imperative kernel fragments."""

    def __init__(self, options: Optional[QBSOptions] = None):
        self.options = options or QBSOptions()

    def run(self, fragment: K.Fragment) -> QBSResult:
        """Run the full pipeline on one kernel fragment."""
        start = time.time()

        rejection = self._rejection_reason(fragment)
        if rejection is not None:
            return QBSResult(fragment=fragment, status=QBSStatus.REJECTED,
                             reason=rejection,
                             elapsed_seconds=time.time() - start)

        synthesizer = Synthesizer(fragment, self.options.synthesis)
        prover = Prover(synthesizer.vcset) if self.options.formal_validation \
            else None
        bindings = dict(query_assignments(fragment))
        exit_bindings = self._exit_bindings(fragment, bindings)

        def accept(assignment: Assignment, pcon_expr: T.TorNode) -> bool:
            if self.options.require_translatable:
                try:
                    translate(pcon_expr, exit_bindings)
                except NotTranslatableError:
                    return False
            if prover is not None:
                with obs_trace.span("prove") as pspan:
                    proof = prover.validate(assignment)
                if pspan:
                    pspan.tag(proved=proof.proved,
                              nf_cache_hits=prover.nf_cache_hits,
                              nf_cache_misses=prover.nf_cache_misses)
                return proof.proved
            return True

        synth = synthesizer.synthesize(accept=accept)
        if prover is not None:
            _PROVER_NF_HITS.inc(prover.nf_cache_hits)
            _PROVER_NF_MISSES.inc(prover.nf_cache_misses)
        if not synth.succeeded:
            return QBSResult(fragment=fragment, status=QBSStatus.FAILED,
                             stats=synth.stats,
                             reason=synth.failure_reason or
                             "no valid invariants/postcondition found",
                             elapsed_seconds=time.time() - start)

        try:
            sql = translate(synth.postcondition_expr, exit_bindings)
        except NotTranslatableError as exc:
            return QBSResult(fragment=fragment, status=QBSStatus.FAILED,
                             stats=synth.stats,
                             assignment=synth.assignment,
                             postcondition_expr=synth.postcondition_expr,
                             reason="not translatable: %s" % exc,
                             elapsed_seconds=time.time() - start)

        return QBSResult(fragment=fragment, status=QBSStatus.TRANSLATED,
                         sql=sql, assignment=synth.assignment,
                         postcondition_expr=synth.postcondition_expr,
                         stats=synth.stats,
                         elapsed_seconds=time.time() - start)

    # -- stage helpers -----------------------------------------------------

    @staticmethod
    def _rejection_reason(fragment: K.Fragment) -> Optional[str]:
        """Pre-synthesis rejection checks (the paper's ``†`` class)."""
        if getattr(fragment, "rejected_reason", None):
            return fragment.rejected_reason  # set by the frontend
        has_query = False
        for cmd in fragment.body.walk():
            exprs = []
            if isinstance(cmd, K.Assign):
                exprs.append(cmd.expr)
            elif isinstance(cmd, (K.If, K.While)):
                exprs.append(cmd.cond)
            elif isinstance(cmd, K.Assert):
                exprs.append(cmd.expr)
            for expr in exprs:
                try:
                    validate_expression(expr)
                except KernelValidationError as exc:
                    return str(exc)
                if T.uses_operator(expr, T.QueryOp):
                    has_query = True
        if not has_query:
            return "fragment retrieves no persistent data"
        return None

    @staticmethod
    def _exit_bindings(fragment: K.Fragment,
                       query_bindings: Dict[str, T.QueryOp]
                       ) -> Dict[str, T.TorNode]:
        """Symbolic value of each base variable at fragment exit.

        Straight-line (non-loop) reassignments of query variables —
        ``records := sort_id(records)`` after the fetch — are folded so
        the SQL generator sees ``sort_id(Query(...))``.
        """
        bindings: Dict[str, T.TorNode] = {}

        def visit(cmd: K.Command) -> None:
            if isinstance(cmd, K.Seq):
                for sub in cmd.commands:
                    visit(sub)
            elif isinstance(cmd, K.Assign):
                expr = T.substitute(cmd.expr, bindings)
                if isinstance(cmd.expr, T.QueryOp) or (
                        cmd.var in bindings
                        and not T.uses_operator(expr, T.Var)):
                    bindings[cmd.var] = expr
                elif cmd.var in bindings and isinstance(cmd.expr, T.Sort):
                    bindings[cmd.var] = expr
            # Loops never rebind base relations (the frontend guarantees
            # this when carving out the fragment).

        visit(fragment.body)
        return bindings
