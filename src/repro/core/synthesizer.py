"""Invariant/postcondition synthesis (paper Sec. 4.2).

The paper drives Sketch's CEGIS loop over automatically generated
templates.  This module realises the same search with three cooperating
filters, ordered cheapest-first:

1. **Dynamic trace filtering** — the fragment is executed on the bounded
   world suite with a loop-head trace hook.  A clause that is false in
   *any* observed loop-head state cannot be part of a correct invariant,
   and a postcondition expression that disagrees with the fragment's
   actual result on *any* world is wrong.  This is the same insight as
   the dynamic invariant-detection work the paper cites ([13, 18]) and
   typically reduces each candidate pool to a handful of survivors.

2. **Houdini-style pruning** — surviving clauses are conjoined into a
   maximal candidate; when bounded checking finds a counterexample whose
   failing conclusion clauses are comparison clauses, those clauses are
   dropped and the check restarted.  A failing equality clause kills the
   whole combination instead (the accumulator's defining expression is
   wrong, not merely too strong).

3. **CEGIS bounded checking** — :class:`~repro.core.checker.BoundedChecker`
   validates every VC over all bounded states, replaying previously
   discovered counterexamples first.

Template *levels* widen incrementally (Sec. 4.5): synthesis retries with
a richer template space when a level yields no candidate, and reports
the level that succeeded (the paper observes < 3 iterations in
practice).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checker import BoundedChecker, Counterexample, eval_formula
from repro.core.enumerate import EnumerationStats, best_first_product
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.core.features import extract_features
from repro.core.logic import (
    And,
    Assignment,
    Bool,
    Clause,
    CmpClause,
    EqClause,
    Formula,
    Implies,
    NotF,
    Or,
    PredApp,
    Predicate,
)
from repro.core.templates import TemplateGenerator
from repro.core.vcgen import VCSet, generate_vcs, invariant_name
from repro.core.worlds import World, generate_worlds
from repro.kernel import ast as K
from repro.kernel.interp import ExecutionError, execute
from repro.tor import ast as T
from repro.tor.compile import Evaluator
from repro.tor.semantics import EvalError

# Synthesis metrics, recorded once per run from the aggregate
# SynthesisStats — never inside the enumeration or evaluation hot
# loops, so the counters cost nothing the benchmarks can see.
_SYNTH_RUNS = obs_metrics.counter(
    "repro_synthesis_runs_total", "synthesis runs by outcome")
_SYNTH_COMBINATIONS = obs_metrics.counter(
    "repro_synthesis_combinations_total",
    "template combinations bounded-checked")
_SYNTH_EVAL_REQUESTS = obs_metrics.counter(
    "repro_synthesis_eval_requests_total", "TOR evaluator requests")
_SYNTH_EVAL_EXECUTED = obs_metrics.counter(
    "repro_synthesis_eval_executed_total",
    "TOR evaluator requests that actually executed (memo misses)")
_SYNTH_EVAL_MEMO_HITS = obs_metrics.counter(
    "repro_synthesis_eval_memo_hits_total",
    "TOR evaluator requests answered from the memo")
_SYNTH_SECONDS = obs_metrics.histogram(
    "repro_synthesis_seconds", "synthesis wall clock per run")


def _record_synthesis_metrics(result: "SynthesisResult") -> None:
    stats = result.stats
    outcome = "succeeded" if result.assignment is not None else "failed"
    _SYNTH_RUNS.inc(outcome=outcome)
    _SYNTH_COMBINATIONS.inc(stats.combinations_checked)
    _SYNTH_EVAL_REQUESTS.inc(stats.eval_requests)
    _SYNTH_EVAL_EXECUTED.inc(stats.eval_executed)
    _SYNTH_EVAL_MEMO_HITS.inc(stats.eval_memo_hits)
    _SYNTH_SECONDS.observe(stats.elapsed_seconds)


@dataclass
class SynthesisStats:
    """Search-effort accounting, reported by the benchmarks."""

    level: int = 0
    postcondition_pool: int = 0
    postcondition_survivors: int = 0
    invariant_pool: int = 0
    invariant_survivors: int = 0
    combinations_checked: int = 0
    houdini_drops: int = 0
    elapsed_seconds: float = 0.0
    # Evaluator work (see repro.tor.compile.EvalStats): how many TOR
    # evaluations were requested vs. actually executed vs. answered
    # from the per-state memo.
    eval_requests: int = 0
    eval_executed: int = 0
    eval_memo_hits: int = 0
    # Candidate-enumeration memory: peak heap size of the best-first
    # enumerator (0 when eager enumeration was used).
    enum_peak_frontier: int = 0


@dataclass
class SynthesisResult:
    """Outcome of the synthesis search."""

    assignment: Optional[Assignment]
    postcondition_expr: Optional[T.TorNode]
    stats: SynthesisStats
    failure_reason: str = ""

    @property
    def succeeded(self) -> bool:
        return self.assignment is not None


@dataclass
class SynthesisOptions:
    max_level: int = 3
    symmetry_breaking: bool = True
    world_max_size: int = 3
    extra_random_worlds: int = 6
    houdini_rounds: int = 12
    max_combinations: int = 2000
    #: enumerate candidate combinations lazily in best-first order
    #: (O(frontier) memory) instead of sorting the full product.
    lazy_enumeration: bool = True
    #: evaluate TOR expressions through compiled, state-memoized
    #: closures; also enables the checker's state pre-indexing and
    #: CEGIS cache management.  Disabling both flags reproduces the
    #: seed implementation (the benchmarks' "seed" mode).
    compiled_eval: bool = True


class Synthesizer:
    """Searches the template space for VC-satisfying predicates."""

    def __init__(self, fragment: K.Fragment,
                 options: Optional[SynthesisOptions] = None):
        self.fragment = fragment
        self.options = options or SynthesisOptions()
        self.features = extract_features(fragment)
        self.vcset: VCSet = generate_vcs(fragment)
        self.worlds: List[World] = generate_worlds(
            fragment, max_size=self.options.world_max_size,
            extra_random=self.options.extra_random_worlds)
        # One evaluator for the whole search: its compile cache and
        # per-state memo are shared by the dynamic filters, the bounded
        # checker and Houdini blame analysis, so a clause reused across
        # levels or combinations is evaluated once per state.
        self.evaluator = Evaluator(compiled=self.options.compiled_eval)
        self.checker = BoundedChecker(self.vcset, self.worlds,
                                      evaluator=self.evaluator,
                                      optimized=self.options.compiled_eval)
        self._loop_states: Dict[str, List[Dict[str, Any]]] = {}
        self._final_envs: List[Tuple[World, Dict[str, Any]]] = []
        self._collect_traces()

    # -- trace collection -----------------------------------------------------

    def _collect_traces(self) -> None:
        """Execute the fragment on every world, recording loop states."""
        # Compiled closures speed up trace collection too; they bypass
        # the evaluator's counters in both modes (trace execution was
        # never billed as candidate-evaluation work).
        eval_fn = None
        if self.options.compiled_eval:
            fn_of = self.evaluator.fn
            eval_fn = lambda e, env, db: fn_of(e)(env, db)  # noqa: E731
        for world in self.worlds:
            env: Dict[str, Any] = dict(world.inputs)
            for name, info in self.fragment.inputs.items():
                env.setdefault(name, () if info.kind == "relation" else 0)
            states: List[Tuple[str, Dict[str, Any]]] = []
            try:
                execute(self.fragment.body, env, world.db,
                        trace=lambda lid, snap: states.append((lid, snap)),
                        fuel=200_000, eval_fn=eval_fn)
            except ExecutionError:
                continue  # world outside the fragment's domain
            for loop_id, snap in states:
                self._loop_states.setdefault(loop_id, []).append(snap)
            self._final_envs.append((world, env))

    def _has_evidence(self) -> bool:
        """At least one surviving world exercises real data."""
        for world, _ in self._final_envs:
            if any(len(rows) > 0 for rows in world.tables.values()):
                return True
        return False

    # -- dynamic filters --------------------------------------------------------

    def _postcondition_survivors(self, exprs: List[T.TorNode]
                                 ) -> List[T.TorNode]:
        """Keep expressions that reproduce the observed results."""
        result_var = self.fragment.result_var
        memoized = self.options.compiled_eval
        out = []
        for expr in exprs:
            ok = True
            for idx, (world, env) in enumerate(self._final_envs):
                # Final environments are collected once and never
                # mutated, so ("final", idx) soundly names this state
                # for the evaluator's memo — an expression that reaches
                # the same state again (the memo is per node object)
                # re-reads the cached verdict.
                try:
                    value = self.evaluator.eval(
                        expr, env, world.db,
                        key=("final", idx) if memoized else None)
                    if value != env.get(result_var):
                        ok = False
                        break
                except EvalError:
                    ok = False
                    break
            if ok:
                out.append(expr)
        return out

    def _clause_survives_traces(self, loop_id: str, clause: Clause) -> bool:
        """A clause must hold at every observed head state of its loop."""
        memoized = self.options.compiled_eval
        for idx, snap in enumerate(self._loop_states.get(loop_id, ())):
            key = ("snap", loop_id, idx) if memoized else None
            try:
                if isinstance(clause, EqClause):
                    if snap.get(clause.var, _MISSING) != self.evaluator.eval(
                            clause.expr, snap, self._db_for(snap), key=key):
                        return False
                else:
                    if not self.evaluator.eval(
                            clause.expr, snap, self._db_for(snap), key=key):
                        return False
            except EvalError:
                return False
        return True

    def _db_for(self, snap: Dict[str, Any]):
        # Trace snapshots never contain Query expressions (the frontend
        # binds queries to variables first), so no database is needed.
        return None

    # -- candidate assembly -------------------------------------------------------

    def synthesize(self, accept=None, profiler=None) -> SynthesisResult:
        """Run the full search across template levels.

        ``accept`` is an optional final filter — the driver passes the
        formal validator here, so a candidate that bounded-checks but
        does not prove sends the search onward instead of ending it
        (the paper's "ask the synthesizer for other candidates" loop,
        Sec. 5).

        ``profiler`` is an optional
        :class:`repro.obs.profile.Profiler`: the whole search runs
        under it (started only if idle), so Fig. 13 runs can be
        profiled end-to-end with samples attributed to the synthesis
        spans.  None (the default) is the seed path, untouched.
        """
        if profiler is not None:
            with profiler.sampling():
                # Samples attribute to spans, so profiling forces the
                # synthesis span into existence even without an ambient
                # trace (same move as Database.execute(profile=...)).
                return self._synthesize_observed(accept, force_trace=True)
        return self._synthesize_observed(accept)

    def _synthesize_observed(self, accept=None,
                             force_trace=False) -> SynthesisResult:
        span = obs_trace.span("synthesis", fragment=self.fragment.name)
        if force_trace and not span:
            span = obs_trace.Span("synthesis", fragment=self.fragment.name)
        with span:
            result = self._synthesize(accept)
        if span:
            stats = result.stats
            span.tag(succeeded=result.assignment is not None,
                     level=stats.level,
                     combinations=stats.combinations_checked,
                     houdini_drops=stats.houdini_drops,
                     eval_requests=stats.eval_requests,
                     eval_executed=stats.eval_executed,
                     eval_memo_hits=stats.eval_memo_hits,
                     enum_peak_frontier=stats.enum_peak_frontier,
                     cegis_cache=self.checker.cegis_cache_size)
        _record_synthesis_metrics(result)
        return result

    def _synthesize(self, accept=None) -> SynthesisResult:
        start = time.time()
        stats = SynthesisStats()
        if not self._has_evidence():
            # The fragment did not execute on any non-trivial bounded
            # world (e.g. a custom comparator the axioms cannot
            # evaluate, which only survives on empty tables): there is
            # no evidence to filter candidates with, and accepting one
            # vacuously would be unsound.
            self._finalize_stats(stats, start)
            return SynthesisResult(
                assignment=None, postcondition_expr=None, stats=stats,
                failure_reason="fragment is not executable on any "
                               "non-trivial bounded world")
        failure = "no candidate template produced"
        for level in range(1, self.options.max_level + 1):
            stats.level = level
            with obs_trace.span("level", level=level) as level_span:
                result = self._synthesize_at_level(level, stats, accept)
            if level_span:
                level_span.tag(found=result is not None,
                               pcon_pool=stats.postcondition_pool,
                               pcon_survivors=stats.postcondition_survivors)
            if result is not None:
                self._finalize_stats(stats, start)
                return SynthesisResult(assignment=result[0],
                                       postcondition_expr=result[1],
                                       stats=stats)
            failure = ("no valid candidate at any level up to %d"
                       % self.options.max_level)
        self._finalize_stats(stats, start)
        return SynthesisResult(assignment=None, postcondition_expr=None,
                               stats=stats, failure_reason=failure)

    def _finalize_stats(self, stats: SynthesisStats, start: float) -> None:
        stats.elapsed_seconds = time.time() - start
        evs = self.evaluator.stats
        stats.eval_requests = evs.requests
        stats.eval_executed = evs.executed
        stats.eval_memo_hits = evs.memo_hits

    def _synthesize_at_level(self, level: int, stats: SynthesisStats,
                             accept=None
                             ) -> Optional[Tuple[Assignment, T.TorNode]]:
        generator = TemplateGenerator(
            self.fragment, self.features, level=level,
            symmetry_breaking=self.options.symmetry_breaking)

        pcon_pool = generator.postcondition_exprs()
        stats.postcondition_pool += len(pcon_pool)
        pcon_survivors = self._postcondition_survivors(pcon_pool)
        stats.postcondition_survivors += len(pcon_survivors)
        if not pcon_survivors:
            return None

        # Per-loop clause pools, trace-filtered.
        loop_ids = [loop.loop_id for loop in self.fragment.loops()]
        cmp_clauses: Dict[str, List[CmpClause]] = {}
        eq_pools: Dict[str, Dict[str, List[T.TorNode]]] = {}
        for loop_id in loop_ids:
            template = generator.loop_template(loop_id)
            stats.invariant_pool += len(template.cmp_clauses) + sum(
                len(v) for v in template.eq_choices.values())
            cmp_clauses[loop_id] = [
                c for c in template.cmp_clauses
                if self._clause_survives_traces(loop_id, c)]
            eq_pools[loop_id] = {}
            for var, exprs in template.eq_choices.items():
                survivors = [
                    e for e in exprs
                    if self._clause_survives_traces(loop_id, EqClause(var, e))]
                eq_pools[loop_id][var] = survivors
            stats.invariant_survivors += len(cmp_clauses[loop_id]) + sum(
                len(v) for v in eq_pools[loop_id].values())

        # Every loop must pin the result variable and every relation
        # accumulator; scalar accumulators are pinned when candidates
        # exist (an unpinned one that the postcondition depends on just
        # fails bounded checking later).
        required: Dict[str, List[str]] = {}
        for loop_id in loop_ids:
            info = self.features.loops[loop_id]
            needed = []
            for var in info.accumulators:
                var_info = self.fragment.var_info(var)
                is_relation = var_info is not None and var_info.kind == "relation"
                must_pin = var == self.fragment.result_var or is_relation
                if must_pin and not eq_pools[loop_id].get(var):
                    return None
                if eq_pools[loop_id].get(var):
                    needed.append(var)
            # Templates may pin variables beyond the loop's own
            # accumulators (a grouped accumulation frozen during its
            # inner scan); include those choice axes too.
            for var in eq_pools[loop_id]:
                if var not in needed and eq_pools[loop_id][var]:
                    needed.append(var)
            required[loop_id] = needed

        # Enumerate combinations, simplest first.
        choice_axes: List[Tuple[str, str, List[T.TorNode]]] = []
        for loop_id in loop_ids:
            for var in required[loop_id]:
                choice_axes.append((loop_id, var, eq_pools[loop_id][var]))

        axes = [pcon_survivors] + [axis[2] for axis in choice_axes]
        if self.options.lazy_enumeration:
            # Best-first k-way merge: combinations arrive in the same
            # nondecreasing-total-size order as sort-then-slice, but
            # only the search frontier is ever materialized — memory is
            # bounded by the combinations actually consumed, not by the
            # product size or by ``max_combinations``.
            enum_stats = EnumerationStats()
            scored = itertools.islice(
                best_first_product(axes, stats=enum_stats),
                self.options.max_combinations)
        else:
            enum_stats = None
            scored = sorted(
                itertools.product(*axes),
                key=lambda combo: sum(e.size() for e in combo),
            )[: self.options.max_combinations]

        try:
            return self._check_combinations(scored, choice_axes, cmp_clauses,
                                            stats, accept)
        finally:
            if enum_stats is not None:
                stats.enum_peak_frontier = max(stats.enum_peak_frontier,
                                               enum_stats.peak_frontier)

    def _check_combinations(self, scored, choice_axes, cmp_clauses,
                            stats: SynthesisStats, accept
                            ) -> Optional[Tuple[Assignment, T.TorNode]]:
        for combo in scored:
            stats.combinations_checked += 1
            pcon_expr = combo[0]
            assignment = self._build_assignment(
                pcon_expr, choice_axes, combo[1:], cmp_clauses)
            final = self._houdini(assignment, stats)
            if final is not None:
                if accept is None or accept(final, pcon_expr):
                    return final, pcon_expr
        return None

    def _build_assignment(self, pcon_expr: T.TorNode,
                          choice_axes, chosen_exprs,
                          cmp_clauses: Dict[str, List[CmpClause]]
                          ) -> Assignment:
        assignment: Assignment = {}
        result_var = self.fragment.result_var
        assignment["pcon"] = Predicate(
            params=self.vcset.unknowns["pcon"],
            clauses=(EqClause(result_var, pcon_expr),))

        per_loop: Dict[str, List[Clause]] = {
            loop_id: list(clauses) for loop_id, clauses in cmp_clauses.items()}
        for (loop_id, var, _), expr in zip(choice_axes, chosen_exprs):
            per_loop[loop_id].append(EqClause(var, expr))
        for loop_id, clauses in per_loop.items():
            name = invariant_name(loop_id)
            assignment[name] = Predicate(
                params=self.vcset.unknowns[name], clauses=tuple(clauses))
        return assignment

    # -- Houdini refinement ---------------------------------------------------------

    def _houdini(self, assignment: Assignment, stats: SynthesisStats
                 ) -> Optional[Assignment]:
        """Iteratively weaken comparison clauses until the VCs check.

        Returns the surviving assignment, or None when a counterexample
        implicates an equality clause (the combination is hopeless) or
        the round budget runs out.
        """
        current = dict(assignment)
        for _ in range(self.options.houdini_rounds):
            cex = self.checker.check(current)
            if cex is None:
                return current
            blamed = self._blame(cex, current)
            if blamed is None:
                return None
            dropped_any = False
            for name, clause in blamed:
                if isinstance(clause, EqClause):
                    return None
                predicate = current[name]
                remaining = tuple(c for c in predicate.clauses if c != clause)
                if len(remaining) != len(predicate.clauses):
                    current[name] = Predicate(predicate.params, remaining)
                    dropped_any = True
                    stats.houdini_drops += 1
            if not dropped_any:
                return None
        return None

    def _blame(self, cex: Counterexample, assignment: Assignment
               ) -> Optional[List[Tuple[str, Clause]]]:
        """Find the conclusion clauses that are false in a counterexample."""
        vc = next((v for v in self.vcset.vcs if v.name == cex.vc_name), None)
        if vc is None:
            return None
        # Rebuild the full environment the checker used.
        env = dict(cex.env)
        db = cex.world.db
        try:
            from repro.core.logic import formula_pred_apps

            for hyp in vc.hypotheses:
                for app in formula_pred_apps(hyp):
                    predicate = assignment[app.name]
                    bound = {p: env[a.name]
                             for p, a in zip(app.params, app.args)
                             if isinstance(a, T.Var) and a.name in env}
                    derived = predicate.derive(bound, db,
                                               eval_fn=self.evaluator)
                    for param, arg in zip(app.params, app.args):
                        if isinstance(arg, T.Var) and param in derived:
                            env[arg.name] = derived[param]
        except EvalError:
            return None
        return self._false_clauses(vc.conclusion, env, db, assignment)

    def _false_clauses(self, formula: Formula, env, db,
                       assignment: Assignment
                       ) -> Optional[List[Tuple[str, Clause]]]:
        """Clauses of conclusion predicate applications that evaluate false."""
        out: List[Tuple[str, Clause]] = []
        eval_fn = self.evaluator

        def visit(f: Formula) -> None:
            if isinstance(f, And):
                for part in f.parts:
                    visit(part)
            elif isinstance(f, Implies):
                try:
                    if eval_formula(f.antecedent, env, db, assignment,
                                    eval_fn):
                        visit(f.consequent)
                except EvalError:
                    pass
            elif isinstance(f, PredApp):
                predicate = assignment[f.name]
                try:
                    values = {p: eval_fn(a, env, db)
                              for p, a in zip(f.params, f.args)}
                except EvalError:
                    return
                for clause in predicate.clauses:
                    try:
                        if isinstance(clause, EqClause):
                            ok = values[clause.var] == eval_fn(
                                clause.expr, values, db)
                        else:
                            ok = bool(eval_fn(clause.expr, values, db))
                    except EvalError:
                        ok = False
                    if not ok:
                        out.append((f.name, clause))

        visit(formula)
        return out or None


_MISSING = object()
