"""Test-world generation for bounded checking.

The synthesizer validates candidate invariants and postconditions by
bounded checking (paper Sec. 4.2): the verification conditions are
tested over all databases up to a small size bound.  A *world* is one
such database instance plus values for the fragment's scalar inputs.

Worlds are generated deterministically from the fragment's table
schemas.  Field-value pools are small integer ranges seeded with every
constant the fragment's code compares against (so a filter like
``role_id = 10`` sees both matching and non-matching rows), and the
pools of different tables overlap so join predicates find both matches
and non-matches.  The suite always includes the adversarial shapes that
kill most wrong candidates: empty tables, single rows, duplicate rows
and all-pairs-match / no-pairs-match joins.

The validator re-runs the same generator at a larger bound before the
prover runs (mirroring the paper's "increase the maximum relation size
and retry" loop, Sec. 5).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.kernel import ast as K
from repro.kernel.analysis import query_assignments
from repro.tor import ast as T
from repro.tor.values import Record


@dataclass
class World:
    """One bounded test database plus fragment input values."""

    tables: Dict[str, Tuple[Record, ...]]
    inputs: Dict[str, Any] = field(default_factory=dict)

    def db(self, query: T.QueryOp) -> Tuple[Record, ...]:
        """Database callback for the TOR evaluator / kernel interpreter.

        Queries that project a subset of the table's columns (``SELECT
        manager_id FROM process``) receive rows projected onto their
        declared schema, matching what the engine would return.
        """
        if query.table is not None and query.table in self.tables:
            rows = self.tables[query.table]
            if len(query.schema) == 1:
                # Single-column projections yield bare scalars, matching
                # the ORM's List<Long>-style results.
                (field,) = query.schema
                return tuple(row[field] if isinstance(row, Record) else row
                             for row in rows)
            if query.schema and rows and isinstance(rows[0], Record) \
                    and set(query.schema) < set(rows[0].fields):
                return tuple(row.project([(f, f) for f in query.schema])
                             for row in rows)
            return rows
        raise KeyError("world has no table for query %r" % (query.sql,))

    def max_table_size(self) -> int:
        if not self.tables:
            return 0
        return max(len(rows) for rows in self.tables.values())


def fragment_constants(fragment: K.Fragment) -> List[Any]:
    """Every scalar constant mentioned by the fragment's expressions."""
    constants: List[Any] = []
    for cmd in fragment.body.walk():
        exprs: List[T.TorNode] = []
        if isinstance(cmd, K.Assign):
            exprs.append(cmd.expr)
        elif isinstance(cmd, (K.If,)):
            exprs.append(cmd.cond)
        elif isinstance(cmd, K.While):
            exprs.append(cmd.cond)
        elif isinstance(cmd, K.Assert):
            exprs.append(cmd.expr)
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, T.Const) and not isinstance(node.value, bool):
                    if isinstance(node.value, (int, str)) and node.value not in constants:
                        constants.append(node.value)
    return constants


def _field_pool(field_name: str, constants: List[Any]) -> List[Any]:
    """Small value pool for one field.

    Base pool is ``{0, 1, 2}``; any fragment constant is added so that
    comparisons against it can go both ways.  String constants get a
    non-matching partner string.
    """
    pool: List[Any] = [0, 1, 2]
    for const in constants:
        if isinstance(const, str):
            if const not in pool:
                pool = [const, const + "_other"] + [p for p in pool if isinstance(p, str)]
        elif isinstance(const, int) and const not in pool:
            pool.append(const)
    return pool


def _table_rows(schema: Tuple[str, ...], size: int, rng: random.Random,
                constants: List[Any], style: str) -> Tuple[Record, ...]:
    """Build one table instance of ``size`` rows.

    ``style`` selects a generation strategy:

    * ``"random"`` — independent draws from the field pools;
    * ``"dup"`` — rows repeat (exercises ``unique`` / DISTINCT);
    * ``"const"`` — every field takes the first fragment constant it can
      (maximises predicate matches, exercises all-match joins).
    """
    rows: List[Record] = []
    for idx in range(size):
        values = {}
        for f in schema:
            pool = _field_pool(f, constants)
            if style == "const" and constants:
                # Prefer a constant of a matching type.
                preferred = [c for c in constants if isinstance(c, type(pool[0]))]
                values[f] = preferred[0] if preferred else pool[0]
            elif style == "dup" and rows:
                values[f] = rows[0][f]
            else:
                values[f] = rng.choice(pool)
        rows.append(Record(values))
    return tuple(rows)


def generate_worlds(fragment: K.Fragment, max_size: int = 3,
                    extra_random: int = 6, seed: int = 0) -> List[World]:
    """Build the bounded-checking world suite for a fragment.

    ``max_size`` bounds the number of rows per table; ``extra_random``
    adds randomized worlds on top of the systematic shapes.  Generation
    is deterministic in ``seed``.
    """
    rng = random.Random(seed)
    constants = fragment_constants(fragment)
    queries = query_assignments(fragment)

    # Table name -> schema: the union of every query's columns over the
    # table (projected queries see a subset via World.db).
    schemas: Dict[str, Tuple[str, ...]] = {}

    def note_query(query: T.QueryOp) -> None:
        if query.table is None:
            return
        existing = list(schemas.get(query.table, ()))
        for column in query.schema:
            if column not in existing:
                existing.append(column)
        schemas[query.table] = tuple(existing)

    for var, query in queries.items():
        note_query(query)
    for cmd in fragment.body.walk():
        if isinstance(cmd, K.Assign):
            for node in cmd.expr.walk():
                if isinstance(node, T.QueryOp):
                    note_query(node)

    input_scalars = [name for name, info in fragment.inputs.items()
                     if info.kind == "scalar"]

    def input_choices(rng_local: random.Random) -> Dict[str, Any]:
        pool = [0, 1, 2] + [c for c in constants if isinstance(c, int)]
        str_pool = [c for c in constants if isinstance(c, str)] or ["s0"]
        out = {}
        for name in input_scalars:
            # Alternate int/string guesses; fragments only ever compare
            # them, so a type mismatch simply never matches.
            out[name] = rng_local.choice(pool + str_pool[:1])
        return out

    worlds: List[World] = []

    def add_world(sizes: Dict[str, int], style: str) -> None:
        tables = {
            name: _table_rows(schema, sizes.get(name, 0), rng, constants, style)
            for name, schema in schemas.items()
        }
        worlds.append(World(tables=tables, inputs=input_choices(rng)))

    table_names = sorted(schemas)
    if not table_names:
        return [World(tables={}, inputs=input_choices(rng))]

    # Systematic shapes: empty, singleton, square, ragged; then styles
    # that force duplicates and forced predicate matches.
    size_shapes: List[Dict[str, int]] = [
        {name: 0 for name in table_names},
        {name: 1 for name in table_names},
        {name: 2 for name in table_names},
        {name: max_size for name in table_names},
    ]
    if len(table_names) > 1:
        first, rest = table_names[0], table_names[1:]
        size_shapes.append(dict({first: max_size}, **{r: 1 for r in rest}))
        size_shapes.append(dict({first: 1}, **{r: max_size for r in rest}))
        size_shapes.append(dict({first: max_size}, **{r: 0 for r in rest}))

    for shape in size_shapes:
        add_world(shape, "random")
    add_world({name: max_size for name in table_names}, "dup")
    add_world({name: max_size for name in table_names}, "const")
    add_world({name: 2 for name in table_names}, "const")

    for _ in range(extra_random):
        shape = {name: rng.randint(0, max_size) for name in table_names}
        add_world(shape, "random")

    return worlds
