"""The QBS algorithm: query inference by invariant/postcondition synthesis.

The pipeline (paper Fig. 5, Secs. 4–5) is:

1. :mod:`repro.core.vcgen` — compute Hoare-style verification conditions
   for a kernel fragment, with the loop invariants and the postcondition
   left as *unknown predicates* (Sec. 4.1, Fig. 11).
2. :mod:`repro.core.templates` — scan the fragment and build the space
   of candidate invariants/postconditions in the theory of ordered
   relations, widened incrementally and with symmetries broken
   (Secs. 4.3–4.5, Fig. 10).
3. :mod:`repro.core.synthesizer` — search that space: dynamic trace
   filtering, a Houdini-style inductive pruning pass, and CEGIS-style
   bounded checking against the VCs (Sec. 4.2).
4. :mod:`repro.core.prover` — formally validate the winning candidate by
   equational/inductive reasoning over the TOR axioms (Sec. 5; the
   paper uses Z3, which is unavailable offline — see DESIGN.md).
5. :mod:`repro.core.qbs` — the driver that ties the stages together and
   emits SQL through :mod:`repro.tor.sqlgen`.
"""

__all__ = ["QBS", "QBSResult", "QBSStatus"]


def __getattr__(name):
    # Lazy import: the driver pulls in every stage; submodules such as
    # vcgen must stay importable on their own.
    if name in __all__:
        from repro.core import qbs

        return getattr(qbs, name)
    raise AttributeError(name)
