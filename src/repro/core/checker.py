"""Bounded checking of verification conditions against candidate predicates.

This is the reproduction's stand-in for Sketch's bounded model checking
(paper Sec. 4.2): every VC is tested over all program states reachable
within a world suite — database tables up to the size bound, loop
counters over their full index ranges, and loop-modified variables
*derived* from the candidate invariant's equality clauses.

Derivation is the key trick.  A candidate invariant has the shape

    i <= size(users) and listUsers = pi(join(top(users, i), roles))

so rather than enumerating every possible value of ``listUsers`` (an
astronomically large space), the checker enumerates only the base
variables (``users``, ``roles`` from the world; ``i``, ``j`` over index
ranges) and computes ``listUsers`` from its defining expression.  States
that violate the invariant's comparison clauses are skipped — they make
the VC's hypothesis false, so the implication holds vacuously.

A returned :class:`Counterexample` records the world and base
environment that falsified a VC; the synthesizer keeps these in a CEGIS
cache and tries them first against subsequent candidates.

Performance architecture (optimized mode, the default):

* TOR expressions are evaluated through compiled closures
  (:mod:`repro.tor.compile`); each VC is further compiled into a *plan*
  — derivation steps plus hypothesis/conclusion closures — cached per
  (VC, clause structure), so the per-state loop runs no formula
  dispatch at all.
* Candidate assignments are fingerprinted by the clauses of exactly the
  predicates a VC mentions.  Fingerprints are interned to small ints,
  and every verdict memo (per world, per cached counterexample state)
  is keyed on them: thousands of combinations sharing a clause prefix
  reuse verdicts instead of re-walking states.
* State enumeration is pre-indexed per (VC, enumerable shape, world)
  and generated once, not per candidate.
* The CEGIS cache is deduplicated and its replay verdicts are memoized
  per clause structure; it lives as long as the checker — one per
  synthesizer — so killer states persist across template levels.
  Replay order matches the seed engine exactly: which counterexample
  comes back decides what Houdini blames, so reordering could change
  synthesis outcomes.

``optimized=False`` reproduces the seed implementation state-for-state
(used by the speed benchmark and the outcome-equivalence regression
test).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, \
    Tuple

from repro.core.logic import (
    And,
    Assignment,
    Bool,
    CmpClause,
    EqClause,
    Formula,
    Implies,
    NotF,
    Or,
    PredApp,
    formula_pred_apps,
)
from repro.core.vcgen import VC, VCSet
from repro.core.worlds import World
from repro.kernel import ast as K
from repro.tor import ast as T
from repro.tor.compile import Evaluator
from repro.tor.semantics import EvalError, evaluate


@dataclass
class Counterexample:
    """A VC falsification: which VC failed, in which state."""

    vc_name: str
    world: World
    env: Dict[str, Any]

    def __str__(self) -> str:
        bindings = ", ".join("%s=%r" % (k, v) for k, v in sorted(
            self.env.items(), key=lambda kv: kv[0]))
        return "%s falsified at {%s}" % (self.vc_name, bindings)


class UnpinnedVariableError(Exception):
    """A loop-modified relation variable has no defining equality.

    Such a candidate can never discharge its VCs — the conclusion would
    have to hold for *arbitrary* values of the variable — so the checker
    rejects it outright instead of searching for a counterexample.
    """


def _formula_vars(formula: Formula) -> set:
    if isinstance(formula, Bool):
        return T.free_vars(formula.expr)
    if isinstance(formula, (And, Or)):
        out = set()
        for part in formula.parts:
            out |= _formula_vars(part)
        return out
    if isinstance(formula, NotF):
        return _formula_vars(formula.part)
    if isinstance(formula, Implies):
        return _formula_vars(formula.antecedent) | _formula_vars(formula.consequent)
    if isinstance(formula, PredApp):
        out = set()
        for arg in formula.args:
            out |= T.free_vars(arg)
        return out
    raise TypeError(formula)


def _clause_expr(clause) -> T.TorNode:
    return clause.expr


_UNSET = object()


def eval_formula(formula: Formula, env: Dict[str, Any], db,
                 assignment: Assignment, eval_fn=None) -> bool:
    """Evaluate a VC formula under a full concrete environment.

    ``eval_fn`` substitutes a different TOR evaluation strategy for the
    formula's atoms (the checker passes its compiled evaluator); it must
    match :func:`repro.tor.semantics.evaluate` in signature and
    semantics.
    """
    if eval_fn is None:
        eval_fn = evaluate
    if isinstance(formula, Bool):
        return bool(eval_fn(formula.expr, env, db))
    if isinstance(formula, And):
        return all(eval_formula(p, env, db, assignment, eval_fn)
                   for p in formula.parts)
    if isinstance(formula, Or):
        return any(eval_formula(p, env, db, assignment, eval_fn)
                   for p in formula.parts)
    if isinstance(formula, NotF):
        return not eval_formula(formula.part, env, db, assignment, eval_fn)
    if isinstance(formula, Implies):
        if not eval_formula(formula.antecedent, env, db, assignment, eval_fn):
            return True
        return eval_formula(formula.consequent, env, db, assignment, eval_fn)
    if isinstance(formula, PredApp):
        predicate = assignment[formula.name]
        values = {param: eval_fn(arg, env, db)
                  for param, arg in zip(formula.params, formula.args)}
        return predicate.holds_env(values, db, eval_fn=eval_fn)
    raise TypeError(formula)


class _VCPlan:
    """One VC compiled against one clause structure.

    ``derivers`` mutate a state environment in hypothesis order (the
    pinned-variable derivation of :meth:`BoundedChecker._violates`);
    ``hyp_fns`` and ``concl_fn`` are closures ``fn(env, db, wkey) ->
    bool`` evaluating the hypotheses and the conclusion with no formula
    dispatch left at run time.  ``guard_fns`` holds the static guards
    omitted from ``hyp_fns`` because fresh-scan state lists are
    pre-filtered by them; the CEGIS replay path re-checks them, since
    replayed states may originate from a different derivation shape.
    """

    __slots__ = ("derivers", "hyp_fns", "concl_fn", "guard_fns")

    def __init__(self, derivers, hyp_fns, concl_fn, guard_fns):
        self.derivers = derivers
        self.hyp_fns = hyp_fns
        self.concl_fn = concl_fn
        self.guard_fns = guard_fns


class _PlanBuilder:
    """Compiles one VC into a :class:`_VCPlan` with state-memoized slots.

    The checker's state loop varies only the *enumerable* variables —
    everything else in a base environment is fixed per world, and every
    derived variable is a deterministic function of (world, enumerable
    values) under a fixed clause structure.  So each expression slot in
    the plan is memoized on ``(slot, world, values of the enumerables
    it transitively depends on)``: an expression mentioning only loop
    counter ``i`` is evaluated once per ``i``, not once per ``(i, j)``
    state, and world-fixed expressions once per world.

    Relevance is tracked statically while the plan is built: derived
    variables inherit the union of their defining expressions' relevant
    sets (mapped through the predicate's parameter/argument renaming,
    in derivation order).
    """

    def __init__(self, checker: "BoundedChecker", enumerable: List[str]):
        self.ev = checker.evaluator
        self.enum_set = set(enumerable)
        #: full_env variable -> enumerables its value depends on.
        self.var_rel: Dict[str, Tuple[str, ...]] = {}

    # -- relevance tracking -------------------------------------------------

    def rel_of_var(self, name: str) -> Tuple[str, ...]:
        if name in self.enum_set:
            return (name,)
        return self.var_rel.get(name, ())

    def rel_of_expr(self, expr: T.TorNode) -> Tuple[str, ...]:
        out: set = set()
        for name in T.free_vars(expr):
            out.update(self.rel_of_var(name))
        return tuple(sorted(out))

    # -- memoized slots -----------------------------------------------------

    def slot_fn(self, expr: T.TorNode, rel: Tuple[str, ...]):
        """Closure ``fn(eval_env, key_env, db, wkey)`` for one expression.

        ``eval_env`` is the environment the expression evaluates under
        (the VC state, or a predicate's parameter binding); ``key_env``
        always holds the enumerable variables, which may live in a
        different namespace than ``eval_env``.

        Variable references and constants compile to direct reads: no
        evaluator is entered at run time, so they are (correctly) not
        counted as evaluator invocations.  Other tiny expressions skip
        the memo — a dict probe costs more than evaluating them — but
        still count.
        """
        if isinstance(expr, T.Var):
            name = expr.name

            def run_var(eval_env, key_env, db, wkey):
                try:
                    return eval_env[name]
                except KeyError:
                    raise EvalError("unbound variable %r" % name) from None
            return run_var
        if isinstance(expr, T.Const):
            value = expr.value
            return lambda eval_env, key_env, db, wkey: value

        base = self.ev.fn(expr)
        stats = self.ev.stats
        # Memoize only when some enumerable is *irrelevant* to the
        # expression: then several states share its value.  When the
        # relevant set covers every enumerable (or a world has a single
        # state), each probe would miss — the memo is pure overhead.
        if not self.enum_set or set(rel) == self.enum_set:
            def run_plain(eval_env, key_env, db, wkey):
                stats.requests += 1
                stats.executed += 1
                return base(eval_env, db)
            return run_plain

        memo: Dict = {}

        def run(eval_env, key_env, db, wkey):
            key = (wkey,) + tuple(key_env[v] for v in rel) if rel else wkey
            stats.requests += 1
            hit = memo.get(key, _UNSET)
            if hit is not _UNSET:
                stats.memo_hits += 1
                ok, payload = hit
                if ok:
                    return payload
                # Traceback stripped: re-raising would append frames
                # to the cached exception on every hit.
                raise payload.with_traceback(None)
            stats.executed += 1
            try:
                value = base(eval_env, db)
            except EvalError as exc:
                memo[key] = (False, exc)
                raise
            memo[key] = (True, value)
            return value
        return run

    # -- derivation ---------------------------------------------------------

    def build_deriver(self, app: PredApp, predicate):
        """Compile one hypothesis application's pinned-variable derivation.

        Mirrors the interpretive path: bind parameters from plain-Var
        arguments present in the state, evaluate equality clauses in
        order extending the binding, then write derived parameter
        values back through the same arguments.
        """
        var_params = [(param, arg.name)
                      for param, arg in zip(app.params, app.args)
                      if isinstance(arg, T.Var)]
        # Parameter namespace -> relevant enumerables, built in
        # derivation order.
        param_rel: Dict[str, Tuple[str, ...]] = {
            param: self.rel_of_var(name) for param, name in var_params}
        eq_steps = []
        for clause in predicate.clauses:
            if not isinstance(clause, EqClause):
                continue
            rel: set = set()
            for name in T.free_vars(clause.expr):
                rel.update(param_rel.get(name, ()))
            rel_t = tuple(sorted(rel))
            param_rel[clause.var] = rel_t
            eq_steps.append((clause.var, self.slot_fn(clause.expr, rel_t)))
        # Record the write-back targets' relevance for later slots.
        for param, name in var_params:
            if param in param_rel and param_rel[param]:
                self.var_rel[name] = param_rel[param]

        def derive_into(full_env: Dict[str, Any], db, wkey) -> None:
            bound: Dict[str, Any] = {}
            for param, name in var_params:
                if name in full_env:
                    bound[param] = full_env[name]
            for var, fn in eq_steps:
                bound[var] = fn(bound, full_env, db, wkey)
            for param, name in var_params:
                if param in bound:
                    full_env[name] = bound[param]
        return derive_into

    # -- formulas -----------------------------------------------------------

    def build_formula(self, formula: Formula, assignment: Assignment):
        """Compile a VC formula to ``fn(env, db, wkey) -> bool``.

        Mirrors :func:`eval_formula` exactly; every expression
        evaluation bumps the evaluator's counters at the same
        granularity the interpretive path counts, so cross-mode
        comparisons stay honest.
        """
        if isinstance(formula, Bool):
            expr_fn = self.slot_fn(formula.expr,
                                   self.rel_of_expr(formula.expr))

            def run_bool(env, db, wkey):
                return bool(expr_fn(env, env, db, wkey))
            return run_bool
        if isinstance(formula, And):
            part_fns = [self.build_formula(p, assignment)
                        for p in formula.parts]
            return lambda env, db, wkey: all(fn(env, db, wkey)
                                             for fn in part_fns)
        if isinstance(formula, Or):
            part_fns = [self.build_formula(p, assignment)
                        for p in formula.parts]
            return lambda env, db, wkey: any(fn(env, db, wkey)
                                             for fn in part_fns)
        if isinstance(formula, NotF):
            part_fn = self.build_formula(formula.part, assignment)
            return lambda env, db, wkey: not part_fn(env, db, wkey)
        if isinstance(formula, Implies):
            ante_fn = self.build_formula(formula.antecedent, assignment)
            cons_fn = self.build_formula(formula.consequent, assignment)
            return lambda env, db, wkey: (not ante_fn(env, db, wkey)) \
                or cons_fn(env, db, wkey)
        if isinstance(formula, PredApp):
            predicate = assignment[formula.name]
            arg_fns = []
            param_rel: Dict[str, Tuple[str, ...]] = {}
            for param, arg in zip(formula.params, formula.args):
                rel = self.rel_of_expr(arg)
                param_rel[param] = rel
                arg_fns.append((param, self.slot_fn(arg, rel)))
            clause_fns = []
            for clause in predicate.clauses:
                if not isinstance(clause, (EqClause, CmpClause)):
                    continue
                rel_set: set = set()
                for name in T.free_vars(clause.expr):
                    rel_set.update(param_rel.get(name, ()))
                fn = self.slot_fn(clause.expr, tuple(sorted(rel_set)))
                clause_fns.append(
                    (clause.var if isinstance(clause, EqClause) else None,
                     fn))

            def run_pred(env: Dict[str, Any], db, wkey) -> bool:
                values = {}
                for param, fn in arg_fns:
                    values[param] = fn(env, env, db, wkey)
                for var, fn in clause_fns:
                    if var is not None:
                        if values[var] != fn(values, env, db, wkey):
                            return False
                    elif not fn(values, env, db, wkey):
                        return False
                return True
            return run_pred
        raise TypeError(formula)


class BoundedChecker:
    """Check a candidate assignment against every VC over a world suite."""

    def __init__(self, vcset: VCSet, worlds: List[World],
                 evaluator: Optional[Evaluator] = None,
                 optimized: bool = True):
        self.vcset = vcset
        self.worlds = worlds
        self.fragment = vcset.fragment
        self.optimized = optimized
        self.evaluator = evaluator if evaluator is not None \
            else Evaluator(compiled=optimized)
        # Loop-free derived relations (records := sort_id(Query(...)))
        # are computed from their symbolic definitions per world rather
        # than enumerated.
        from repro.core.templates import exit_definitions

        self._exit_defs = {
            name: expr for name, expr in exit_definitions(
                self.fragment).items()
            if not isinstance(expr, T.Var)}
        # CEGIS cache: states that falsified earlier candidates, tried
        # first for each new candidate.  Each entry carries a serial
        # number so replay verdicts can be memoized without hashing the
        # environment.  The cache lives as long as the checker — one
        # per synthesizer — so killer states persist across template
        # levels and across combinations sharing a clause prefix.
        self._cache: List[Tuple[VC, World, Dict[str, Any], int]] = []
        self._cache_keys: set = set()
        self._cache_serial = itertools.count()
        # Interned clause-structure fingerprints: structural tuple ->
        # small int.  All verdict memos key on the int, so candidate
        # trees are hashed once per check, not once per memo probe.
        self._sig_ids: Dict[Tuple, int] = {}
        self._vc_pred_names: Dict[str, frozenset] = {}
        # Memos and pre-indexed state enumeration (optimized mode).
        self._plan_cache: Dict[Tuple[str, int], _VCPlan] = {}
        self._classify_cache: Dict[Tuple[str, int], Tuple] = {}
        self._state_cache: Dict[Tuple, List[Dict[str, Any]]] = {}
        self._world_memo: Dict[Tuple, Optional[Dict[str, Any]]] = {}
        self._replay_memo: Dict[Tuple[int, int], bool] = {}
        self._world_index = {id(world): idx
                             for idx, world in enumerate(worlds)}
        # Static hypothesis guards: Bool hypotheses that mention no
        # *derived* variable have the same truth value for every
        # candidate sharing a derivation shape, so states falsifying
        # one are vacuous for all of them.  Optimized mode evaluates
        # such guards once while building a state list and filters
        # those states out (their verdict — no violation — is what
        # every candidate's check would conclude).
        self._static_guard_cache: Dict[Tuple, List] = {}

    @property
    def cegis_cache_size(self) -> int:
        """Counterexamples accumulated by the CEGIS loop — the number
        of killer states replayed against new candidates (surfaced on
        the ``synthesis`` trace span)."""
        return len(self._cache)

    # -- candidate fingerprints ---------------------------------------------

    def _sig_id(self, vc: VC, assignment: Assignment) -> int:
        """Interned fingerprint of the clauses of the predicates in ``vc``.

        A VC's verdict over any state depends only on this structure,
        so combinations that differ in *other* predicates share every
        memo keyed on it.
        """
        names = self._vc_pred_names.get(vc.name)
        if names is None:
            found = set()
            for hyp in vc.hypotheses:
                found.update(app.name for app in formula_pred_apps(hyp))
            found.update(app.name
                         for app in formula_pred_apps(vc.conclusion))
            names = frozenset(found)
            self._vc_pred_names[vc.name] = names
        sig = tuple(sorted((name, assignment[name].params,
                            assignment[name].clauses)
                           for name in names if name in assignment))
        sig_id = self._sig_ids.get(sig)
        if sig_id is None:
            sig_id = len(self._sig_ids)
            self._sig_ids[sig] = sig_id
        return sig_id

    def _plan(self, vc: VC, assignment: Assignment, sig_id: int) -> _VCPlan:
        """The compiled plan for ``vc`` under this clause structure."""
        key = (vc.name, sig_id)
        plan = self._plan_cache.get(key)
        if plan is None:
            enumerable, derived = self._classify_free_vars(vc, assignment,
                                                           sig_id)
            derived_set = set(derived)
            builder = _PlanBuilder(self, enumerable)
            derivers = [builder.build_deriver(app, assignment[app.name])
                        for hyp in vc.hypotheses
                        for app in formula_pred_apps(hyp)]
            # Static guards are enforced when the state list is built
            # (_filter_static_guards), so the per-state loop skips
            # them; they stay available for the replay path.
            hyp_fns = []
            guard_fns = []
            for hyp in vc.hypotheses:
                if self._is_static_guard(hyp, derived_set):
                    guard_fns.append(self.evaluator.fn(hyp.expr))
                else:
                    hyp_fns.append(builder.build_formula(hyp, assignment))
            concl_fn = builder.build_formula(vc.conclusion, assignment)
            plan = _VCPlan(derivers, hyp_fns, concl_fn, guard_fns)
            self._plan_cache[key] = plan
        return plan

    # -- state enumeration --------------------------------------------------

    def _classify_free_vars(self, vc: VC, assignment: Assignment,
                            sig_id: Optional[int] = None
                            ) -> Tuple[List[str], List[str]]:
        """Split a VC's free variables into enumerable and derived sets.

        Derived variables are pinned by an equality clause of a
        hypothesis predicate application; enumerable variables are
        everything else that the world does not already fix.  The split
        depends only on the VC and the fingerprinted clause structure,
        so optimized mode caches it.
        """
        if sig_id is None and self.optimized:
            sig_id = self._sig_id(vc, assignment)
        if sig_id is not None:
            hit = self._classify_cache.get((vc.name, sig_id))
            if hit is not None:
                ok, payload = hit
                if ok:
                    return payload
                raise payload.with_traceback(None)
            try:
                result = self._classify_free_vars_uncached(vc, assignment)
            except UnpinnedVariableError as exc:
                self._classify_cache[(vc.name, sig_id)] = (False, exc)
                raise
            self._classify_cache[(vc.name, sig_id)] = (True, result)
            return result
        return self._classify_free_vars_uncached(vc, assignment)

    def _classify_free_vars_uncached(self, vc: VC, assignment: Assignment
                                     ) -> Tuple[List[str], List[str]]:
        free = set()
        for hyp in vc.hypotheses:
            free |= _formula_vars(hyp)
        free |= _formula_vars(vc.conclusion)

        pinned = set()
        for hyp in vc.hypotheses:
            for app in formula_pred_apps(hyp):
                predicate = assignment[app.name]
                for param in predicate.pinned_params():
                    arg = app.arg_for(param)
                    if isinstance(arg, T.Var):
                        pinned.add(arg.name)

        # Variables the VC actually *reads*: conclusion plus boolean
        # hypothesis parts plus the defining expressions of pinned
        # variables.  An unconstrained relation that appears only as an
        # unused hypothesis argument is benign — any placeholder value
        # satisfies the VC vacuously.
        needed = _formula_vars(vc.conclusion)
        for hyp in vc.hypotheses:
            if not isinstance(hyp, PredApp):
                needed |= _formula_vars(hyp)
            else:
                predicate = assignment[hyp.name]
                for clause in predicate.clauses:
                    needed |= {p for p in T.free_vars(_clause_expr(clause))
                               if p in hyp.params}
                    if hasattr(clause, "var"):
                        needed.add(clause.var)

        enumerable: List[str] = []
        derived: List[str] = []
        for name in sorted(free):
            info = self.fragment.var_info(name)
            if name in pinned:
                derived.append(name)
            elif name in self.fragment.inputs:
                continue  # provided by the world
            elif info is not None and info.kind == "relation":
                if info.table is None:
                    if name in self._exit_defs:
                        continue  # computed from its symbolic definition
                    if name in needed:
                        raise UnpinnedVariableError(name)
                    continue  # benign: placeholder assigned in _base_envs
                continue  # provided by the world's table
            else:
                enumerable.append(name)
        return enumerable, derived

    def _base_envs(self, vc: VC, world: World, assignment: Assignment,
                   sig_id: Optional[int] = None
                   ) -> Iterable[Dict[str, Any]]:
        """Base environments (enumerables assigned, pins underived).

        In optimized mode the environment list is materialized once per
        (VC, enumerable shape, world) and reused across candidates —
        every combination walks the same state list, and the check
        never mutates the environments it is handed.
        """
        if not self.optimized:
            return self._generate_base_envs(vc, world, assignment)
        enumerable, derived = self._classify_free_vars(vc, assignment, sig_id)
        key = (vc.name, tuple(enumerable), tuple(derived),
               self._world_index[id(world)])
        envs = self._state_cache.get(key)
        if envs is None:
            envs = self._filter_static_guards(
                vc, world, self._generate_base_envs(vc, world, assignment),
                derived)
            self._state_cache[key] = envs
        return envs

    @staticmethod
    def _is_static_guard(hyp: Formula, derived_set: set) -> bool:
        """A hypothesis whose truth no candidate's derivation can change."""
        return isinstance(hyp, Bool) \
            and not (T.free_vars(hyp.expr) & derived_set)

    def _filter_static_guards(self, vc: VC, world: World,
                              envs: Iterable[Dict[str, Any]],
                              derived: List[str]
                              ) -> List[Dict[str, Any]]:
        """Drop states falsified by candidate-independent guards.

        Such states make the VC vacuously true for every candidate with
        this derivation shape, so filtering them once — while the state
        list is built — replaces a per-candidate hypothesis evaluation.
        Compiled plans omit the same guards (:meth:`_plan`), which is
        sound exactly because every fresh-scan state they see passed
        this filter; replayed CEGIS states may come from a different
        shape, so the replay path re-checks the guards
        (:meth:`_violates`).
        """
        guard_key = (vc.name, tuple(derived))
        guards = self._static_guard_cache.get(guard_key)
        if guards is None:
            derived_set = set(derived)
            guards = [self.evaluator.fn(hyp.expr) for hyp in vc.hypotheses
                      if self._is_static_guard(hyp, derived_set)]
            self._static_guard_cache[guard_key] = guards
        if not guards:
            return list(envs)
        stats = self.evaluator.stats
        db = world.db
        kept: List[Dict[str, Any]] = []
        for env in envs:
            ok = True
            for fn in guards:
                stats.requests += 1
                stats.executed += 1
                try:
                    if not fn(env, db):
                        ok = False
                        break
                except EvalError:
                    # Out of the axioms' domain: the unoptimized check
                    # also concludes "no violation" for this state.
                    ok = False
                    break
            if ok:
                kept.append(env)
        return kept

    def _generate_base_envs(self, vc: VC, world: World,
                            assignment: Assignment
                            ) -> Iterator[Dict[str, Any]]:
        enumerable, _ = self._classify_free_vars(vc, assignment)
        world_key = self._world_index[id(world)]
        base: Dict[str, Any] = dict(world.inputs)
        for name, info in self.fragment.all_vars().items():
            if info.kind == "relation" and info.table is not None:
                if info.table in world.tables:
                    base[name] = world.tables[info.table]
        for name, expr in self._exit_defs.items():
            info = self.fragment.var_info(name)
            if info is not None and info.kind == "relation" \
                    and name not in base:
                try:
                    base[name] = self.evaluator.eval(
                        expr, base, world.db,
                        key=("exit", name, world_key) if self.optimized
                        else None)
                except EvalError:
                    return  # definition outside this world's domain
        for name, info in self.fragment.all_vars().items():
            if info.kind == "relation":
                # Placeholder for benign unconstrained relations.
                base.setdefault(name, ())
        bound = world.max_table_size() + 1
        domains = [range(0, bound + 1) for _ in enumerable]
        for values in itertools.product(*domains):
            env = dict(base)
            env.update(zip(enumerable, values))
            yield env

    # -- checking -----------------------------------------------------------

    def _violates(self, vc: VC, world: World, env: Dict[str, Any],
                  assignment: Assignment,
                  plan: Optional[_VCPlan] = None,
                  replay: bool = False) -> bool:
        """Check one VC in one state; True means the state falsifies it."""
        db = world.db
        full_env = dict(env)

        if plan is not None:
            wkey = self._world_index.get(id(world))
            if replay:
                # Replayed states may come from a state list filtered
                # under a different derivation shape: re-check the
                # static guards the plan's hyp_fns omit.
                stats = self.evaluator.stats
                for fn in plan.guard_fns:
                    stats.requests += 1
                    stats.executed += 1
                    try:
                        if not fn(full_env, db):
                            return False
                    except EvalError:
                        return False
            try:
                for derive in plan.derivers:
                    derive(full_env, db, wkey)
                for hyp_fn in plan.hyp_fns:
                    if not hyp_fn(full_env, db, wkey):
                        return False  # hypothesis false: vacuously true
            except EvalError:
                return False  # hypothesis out of the axioms' domain: skip
            try:
                return not plan.concl_fn(full_env, db, wkey)
            except EvalError:
                # Conclusion undefined while hypotheses hold: violation.
                return True

        # Interpretive path (seed behaviour): derive pinned variables
        # from hypothesis equality clauses, then test the hypotheses
        # (comparison clauses and guards).
        eval_fn = self.evaluator
        try:
            for hyp in vc.hypotheses:
                for app in formula_pred_apps(hyp):
                    predicate = assignment[app.name]
                    # Parameters map 1:1 onto plain Var args in hypothesis
                    # position; evaluate the defining expressions.
                    bound_env = {p: full_env[a.name]
                                 for p, a in zip(app.params, app.args)
                                 if isinstance(a, T.Var) and a.name in full_env}
                    derived = predicate.derive(bound_env, db, eval_fn=eval_fn)
                    for param, arg in zip(app.params, app.args):
                        if isinstance(arg, T.Var) and param in derived:
                            full_env[arg.name] = derived[param]
            for hyp in vc.hypotheses:
                if not eval_formula(hyp, full_env, db, assignment, eval_fn):
                    return False  # hypothesis false: vacuously true
        except EvalError:
            return False  # hypothesis out of the axioms' domain: skip

        try:
            return not eval_formula(vc.conclusion, full_env, db, assignment,
                                    eval_fn)
        except EvalError:
            return True  # conclusion undefined while hypotheses hold

    def check(self, assignment: Assignment) -> Optional[Counterexample]:
        """Bounded-check every VC; return the first counterexample found."""
        try:
            # CEGIS: replay cached killer states first, in insertion
            # order.  The order is deliberately identical to the seed
            # engine's: which counterexample is returned decides what
            # Houdini blames, so any reordering could change synthesis
            # outcomes.  Replays are cheap regardless — verdicts are
            # memoized per (clause structure, state serial).
            for vc, world, env, serial in self._cache:
                if self._replay_violates(vc, world, env, serial, assignment):
                    return Counterexample(vc_name=vc.name, world=world,
                                          env=env)
            for vc in self.vcset.vcs:
                if self.optimized:
                    sig_id = self._sig_id(vc, assignment)
                    plan = self._plan(vc, assignment, sig_id)
                else:
                    sig_id = plan = None
                for world in self.worlds:
                    env = self._check_world(vc, world, assignment, sig_id,
                                            plan)
                    if env is not None:
                        self._remember(vc, world, env)
                        return Counterexample(vc_name=vc.name, world=world,
                                              env=env)
        except UnpinnedVariableError as exc:
            return Counterexample(
                vc_name="unpinned relation variable %s" % exc,
                world=self.worlds[0] if self.worlds else World(tables={}),
                env={})
        return None

    def _check_world(self, vc: VC, world: World, assignment: Assignment,
                     sig_id: Optional[int], plan: Optional[_VCPlan]
                     ) -> Optional[Dict[str, Any]]:
        """First falsifying base environment of ``vc`` in ``world``, if any.

        The verdict is memoized per (VC, clause fingerprint, world):
        the scan visits states in enumeration order, so the remembered
        environment is exactly the one the unmemoized scan would find
        first.
        """
        if sig_id is not None:
            memo_key = (vc.name, sig_id, self._world_index[id(world)])
            hit = self._world_memo.get(memo_key, _UNSET)
            if hit is not _UNSET:
                return hit
        found = None
        for env in self._base_envs(vc, world, assignment, sig_id):
            if self._violates(vc, world, env, assignment, plan):
                found = env
                break
        if sig_id is not None:
            self._world_memo[memo_key] = dict(found) if found is not None \
                else None
        return found

    def _replay_violates(self, vc: VC, world: World, env: Dict[str, Any],
                         serial: int, assignment: Assignment) -> bool:
        """Re-check one cached killer state, memoized per fingerprint."""
        if not self.optimized:
            return self._violates(vc, world, env, assignment)
        sig_id = self._sig_id(vc, assignment)
        memo_key = (sig_id, serial)
        hit = self._replay_memo.get(memo_key)
        if hit is not None:
            return hit
        violated = self._violates(vc, world, env, assignment,
                                  self._plan(vc, assignment, sig_id),
                                  replay=True)
        self._replay_memo[memo_key] = violated
        return violated

    def _remember(self, vc: VC, world: World, env: Dict[str, Any]) -> None:
        """Add a killer state to the CEGIS cache (deduplicated)."""
        if self.optimized:
            try:
                key = (vc.name, self._world_index[id(world)],
                       tuple(sorted(env.items())))
                if key in self._cache_keys:
                    return
                self._cache_keys.add(key)
            except TypeError:
                pass  # unhashable values: keep without deduplication
        self._cache.append((vc, world, dict(env), next(self._cache_serial)))
