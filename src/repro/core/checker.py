"""Bounded checking of verification conditions against candidate predicates.

This is the reproduction's stand-in for Sketch's bounded model checking
(paper Sec. 4.2): every VC is tested over all program states reachable
within a world suite — database tables up to the size bound, loop
counters over their full index ranges, and loop-modified variables
*derived* from the candidate invariant's equality clauses.

Derivation is the key trick.  A candidate invariant has the shape

    i <= size(users) and listUsers = pi(join(top(users, i), roles))

so rather than enumerating every possible value of ``listUsers`` (an
astronomically large space), the checker enumerates only the base
variables (``users``, ``roles`` from the world; ``i``, ``j`` over index
ranges) and computes ``listUsers`` from its defining expression.  States
that violate the invariant's comparison clauses are skipped — they make
the VC's hypothesis false, so the implication holds vacuously.

A returned :class:`Counterexample` records the world and base
environment that falsified a VC; the synthesizer keeps these in a CEGIS
cache and tries them first against subsequent candidates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.logic import (
    And,
    Assignment,
    Bool,
    Formula,
    Implies,
    NotF,
    Or,
    PredApp,
    formula_pred_apps,
)
from repro.core.vcgen import VC, VCSet
from repro.core.worlds import World
from repro.kernel import ast as K
from repro.tor import ast as T
from repro.tor.semantics import EvalError, evaluate


@dataclass
class Counterexample:
    """A VC falsification: which VC failed, in which state."""

    vc_name: str
    world: World
    env: Dict[str, Any]

    def __str__(self) -> str:
        bindings = ", ".join("%s=%r" % (k, v) for k, v in sorted(
            self.env.items(), key=lambda kv: kv[0]))
        return "%s falsified at {%s}" % (self.vc_name, bindings)


class UnpinnedVariableError(Exception):
    """A loop-modified relation variable has no defining equality.

    Such a candidate can never discharge its VCs — the conclusion would
    have to hold for *arbitrary* values of the variable — so the checker
    rejects it outright instead of searching for a counterexample.
    """


def _formula_vars(formula: Formula) -> set:
    if isinstance(formula, Bool):
        return T.free_vars(formula.expr)
    if isinstance(formula, (And, Or)):
        out = set()
        for part in formula.parts:
            out |= _formula_vars(part)
        return out
    if isinstance(formula, NotF):
        return _formula_vars(formula.part)
    if isinstance(formula, Implies):
        return _formula_vars(formula.antecedent) | _formula_vars(formula.consequent)
    if isinstance(formula, PredApp):
        out = set()
        for arg in formula.args:
            out |= T.free_vars(arg)
        return out
    raise TypeError(formula)


def _clause_expr(clause) -> T.TorNode:
    return clause.expr


def eval_formula(formula: Formula, env: Dict[str, Any], db,
                 assignment: Assignment) -> bool:
    """Evaluate a VC formula under a full concrete environment."""
    if isinstance(formula, Bool):
        return bool(evaluate(formula.expr, env, db))
    if isinstance(formula, And):
        return all(eval_formula(p, env, db, assignment) for p in formula.parts)
    if isinstance(formula, Or):
        return any(eval_formula(p, env, db, assignment) for p in formula.parts)
    if isinstance(formula, NotF):
        return not eval_formula(formula.part, env, db, assignment)
    if isinstance(formula, Implies):
        if not eval_formula(formula.antecedent, env, db, assignment):
            return True
        return eval_formula(formula.consequent, env, db, assignment)
    if isinstance(formula, PredApp):
        predicate = assignment[formula.name]
        values = {param: evaluate(arg, env, db)
                  for param, arg in zip(formula.params, formula.args)}
        return predicate.holds_env(values, db)
    raise TypeError(formula)


class BoundedChecker:
    """Check a candidate assignment against every VC over a world suite."""

    def __init__(self, vcset: VCSet, worlds: List[World]):
        self.vcset = vcset
        self.worlds = worlds
        self.fragment = vcset.fragment
        # Loop-free derived relations (records := sort_id(Query(...)))
        # are computed from their symbolic definitions per world rather
        # than enumerated.
        from repro.core.templates import exit_definitions

        self._exit_defs = {
            name: expr for name, expr in exit_definitions(
                self.fragment).items()
            if not isinstance(expr, T.Var)}
        # CEGIS cache: states that falsified earlier candidates, tried
        # first for each new candidate.
        self._cache: List[Tuple[VC, World, Dict[str, Any]]] = []

    # -- state enumeration --------------------------------------------------

    def _classify_free_vars(self, vc: VC, assignment: Assignment
                            ) -> Tuple[List[str], List[str]]:
        """Split a VC's free variables into enumerable and derived sets.

        Derived variables are pinned by an equality clause of a
        hypothesis predicate application; enumerable variables are
        everything else that the world does not already fix.
        """
        free = set()
        for hyp in vc.hypotheses:
            free |= _formula_vars(hyp)
        free |= _formula_vars(vc.conclusion)

        pinned = set()
        for hyp in vc.hypotheses:
            for app in formula_pred_apps(hyp):
                predicate = assignment[app.name]
                for param in predicate.pinned_params():
                    arg = app.arg_for(param)
                    if isinstance(arg, T.Var):
                        pinned.add(arg.name)

        # Variables the VC actually *reads*: conclusion plus boolean
        # hypothesis parts plus the defining expressions of pinned
        # variables.  An unconstrained relation that appears only as an
        # unused hypothesis argument is benign — any placeholder value
        # satisfies the VC vacuously.
        needed = _formula_vars(vc.conclusion)
        for hyp in vc.hypotheses:
            if not isinstance(hyp, PredApp):
                needed |= _formula_vars(hyp)
            else:
                predicate = assignment[hyp.name]
                for clause in predicate.clauses:
                    needed |= {p for p in T.free_vars(_clause_expr(clause))
                               if p in hyp.params}
                    if hasattr(clause, "var"):
                        needed.add(clause.var)

        enumerable: List[str] = []
        derived: List[str] = []
        for name in sorted(free):
            info = self.fragment.var_info(name)
            if name in pinned:
                derived.append(name)
            elif name in self.fragment.inputs:
                continue  # provided by the world
            elif info is not None and info.kind == "relation":
                if info.table is None:
                    if name in self._exit_defs:
                        continue  # computed from its symbolic definition
                    if name in needed:
                        raise UnpinnedVariableError(name)
                    continue  # benign: placeholder assigned in _base_envs
                continue  # provided by the world's table
            else:
                enumerable.append(name)
        return enumerable, derived

    def _base_envs(self, vc: VC, world: World, assignment: Assignment
                   ) -> Iterable[Dict[str, Any]]:
        """Yield base environments (enumerables assigned, pins underived)."""
        enumerable, _ = self._classify_free_vars(vc, assignment)
        base: Dict[str, Any] = dict(world.inputs)
        for name, info in self.fragment.all_vars().items():
            if info.kind == "relation" and info.table is not None:
                if info.table in world.tables:
                    base[name] = world.tables[info.table]
        for name, expr in self._exit_defs.items():
            info = self.fragment.var_info(name)
            if info is not None and info.kind == "relation" \
                    and name not in base:
                try:
                    base[name] = evaluate(expr, base, world.db)
                except EvalError:
                    return  # definition outside this world's domain
        for name, info in self.fragment.all_vars().items():
            if info.kind == "relation":
                # Placeholder for benign unconstrained relations.
                base.setdefault(name, ())
        bound = world.max_table_size() + 1
        domains = [range(0, bound + 1) for _ in enumerable]
        for values in itertools.product(*domains):
            env = dict(base)
            env.update(zip(enumerable, values))
            yield env

    # -- checking -----------------------------------------------------------

    def _check_state(self, vc: VC, world: World, env: Dict[str, Any],
                     assignment: Assignment) -> Optional[Counterexample]:
        """Check one VC in one state; None means no violation here."""
        db = world.db
        full_env = dict(env)

        # Derive pinned variables from hypothesis equality clauses, then
        # test the hypotheses (comparison clauses and guards).
        try:
            for hyp in vc.hypotheses:
                for app in formula_pred_apps(hyp):
                    predicate = assignment[app.name]
                    # Parameters map 1:1 onto plain Var args in hypothesis
                    # position; evaluate the defining expressions.
                    bound_env = {p: full_env[a.name]
                                 for p, a in zip(app.params, app.args)
                                 if isinstance(a, T.Var) and a.name in full_env}
                    derived = predicate.derive(bound_env, db)
                    for param, arg in zip(app.params, app.args):
                        if isinstance(arg, T.Var) and param in derived:
                            full_env[arg.name] = derived[param]
            for hyp in vc.hypotheses:
                if not eval_formula(hyp, full_env, db, assignment):
                    return None  # hypothesis false: vacuously true
        except EvalError:
            return None  # hypothesis out of the axioms' domain: skip

        try:
            if eval_formula(vc.conclusion, full_env, db, assignment):
                return None
        except EvalError:
            pass  # conclusion undefined while hypotheses hold: a violation
        return Counterexample(vc_name=vc.name, world=world, env=env)

    def check(self, assignment: Assignment) -> Optional[Counterexample]:
        """Bounded-check every VC; return the first counterexample found."""
        try:
            # CEGIS: replay cached killer states first.
            for vc, world, env in self._cache:
                cex = self._check_state(vc, world, env, assignment)
                if cex is not None:
                    return cex
            for vc in self.vcset.vcs:
                for world in self.worlds:
                    for env in self._base_envs(vc, world, assignment):
                        cex = self._check_state(vc, world, env, assignment)
                        if cex is not None:
                            self._cache.append((vc, world, dict(env)))
                            return cex
        except UnpinnedVariableError as exc:
            return Counterexample(
                vc_name="unpinned relation variable %s" % exc,
                world=self.worlds[0] if self.worlds else World(tables={}),
                env={})
        return None
