"""Predicate logic over TOR expressions, with unknown predicates.

Verification conditions (paper Fig. 11) are implications whose atoms are
boolean TOR expressions and *applications of unknown predicates* —
``oInv(i, users, roles, listUsers)``, ``pcon(listUsers, users, roles)``
and so on.  The synthesizer's job is to find a :class:`Predicate` for
each unknown name that makes every VC valid.

A candidate :class:`Predicate` is a conjunction of clauses of two forms
(Sec. 4.3):

* :class:`EqClause` — ``lv = e`` pinning a variable modified by the loop
  to a TOR expression over the other parameters (Fig. 10's rows);
* :class:`CmpClause` — a scalar boolean constraint such as
  ``i <= size(users)``.

``EqClause`` is what makes bounded checking tractable: given values for
the un-pinned parameters, every pinned parameter's value is *derived*
from its defining expression instead of being enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.tor import ast as T
from repro.tor.pretty import pretty
from repro.tor.semantics import DatabaseFn, EvalError, evaluate


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of the VC formula language."""

    __slots__ = ()


@dataclass(frozen=True)
class Bool(Formula):
    """An embedded boolean TOR expression."""

    expr: T.TorNode


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]


@dataclass(frozen=True)
class NotF(Formula):
    part: Formula


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula


@dataclass(frozen=True)
class PredApp(Formula):
    """Application of an unknown predicate to TOR argument expressions.

    ``name`` identifies the unknown (``"inv_loop0"``, ``"pcon"``);
    ``params`` records the parameter names, positionally matching
    ``args``.  Weakest-precondition substitution rewrites ``args`` —
    e.g. the preservation VC applies the invariant to
    ``append(listUsers, get(users, i))`` in the ``listUsers`` slot.
    """

    name: str
    params: Tuple[str, ...]
    args: Tuple[T.TorNode, ...]

    def arg_for(self, param: str) -> T.TorNode:
        return self.args[self.params.index(param)]


def conj(*parts: Formula) -> Formula:
    """Flattening conjunction constructor."""
    flat = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        elif part == Bool(T.Const(True)):
            continue
        else:
            flat.append(part)
    if not flat:
        return Bool(T.Const(True))
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def formula_substitute(formula: Formula, mapping: Dict[str, T.TorNode]) -> Formula:
    """Substitute TOR variables throughout a formula."""
    if isinstance(formula, Bool):
        return Bool(T.substitute(formula.expr, mapping))
    if isinstance(formula, And):
        return And(tuple(formula_substitute(p, mapping) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(formula_substitute(p, mapping) for p in formula.parts))
    if isinstance(formula, NotF):
        return NotF(formula_substitute(formula.part, mapping))
    if isinstance(formula, Implies):
        return Implies(formula_substitute(formula.antecedent, mapping),
                       formula_substitute(formula.consequent, mapping))
    if isinstance(formula, PredApp):
        return PredApp(formula.name, formula.params,
                       tuple(T.substitute(a, mapping) for a in formula.args))
    raise TypeError("unknown formula %r" % (formula,))


def formula_pred_apps(formula: Formula) -> Iterator[PredApp]:
    """Yield every unknown-predicate application in the formula."""
    if isinstance(formula, PredApp):
        yield formula
    elif isinstance(formula, (And, Or)):
        for part in formula.parts:
            yield from formula_pred_apps(part)
    elif isinstance(formula, NotF):
        yield from formula_pred_apps(formula.part)
    elif isinstance(formula, Implies):
        yield from formula_pred_apps(formula.antecedent)
        yield from formula_pred_apps(formula.consequent)


def pretty_formula(formula: Formula) -> str:
    """Paper-style rendering of a formula."""
    if isinstance(formula, Bool):
        return pretty(formula.expr)
    if isinstance(formula, And):
        return " and ".join(_paren(p) for p in formula.parts)
    if isinstance(formula, Or):
        return " or ".join(_paren(p) for p in formula.parts)
    if isinstance(formula, NotF):
        return "not %s" % _paren(formula.part)
    if isinstance(formula, Implies):
        return "%s -> %s" % (_paren(formula.antecedent),
                             _paren(formula.consequent))
    if isinstance(formula, PredApp):
        return "%s(%s)" % (formula.name, ", ".join(pretty(a) for a in formula.args))
    return repr(formula)


def _paren(formula: Formula) -> str:
    text = pretty_formula(formula)
    if isinstance(formula, (And, Or, Implies)):
        return "(%s)" % text
    return text


# ---------------------------------------------------------------------------
# Candidate predicates
# ---------------------------------------------------------------------------


class Clause:
    """Base class for candidate-predicate clauses."""

    __slots__ = ()


@dataclass(frozen=True)
class EqClause(Clause):
    """``var = expr`` — pins a loop-modified variable to a TOR expression.

    ``expr`` refers to the predicate's *parameters* as free variables.
    """

    var: str
    expr: T.TorNode

    def __str__(self) -> str:
        return "%s = %s" % (self.var, pretty(self.expr))


@dataclass(frozen=True)
class CmpClause(Clause):
    """A scalar boolean side constraint, e.g. ``i <= size(users)``."""

    expr: T.TorNode

    def __str__(self) -> str:
        return pretty(self.expr)


@dataclass(frozen=True)
class Predicate:
    """A concrete candidate for one unknown predicate.

    The predicate denotes the conjunction of its clauses over the
    parameter list ``params``.
    """

    params: Tuple[str, ...]
    clauses: Tuple[Clause, ...]

    def __str__(self) -> str:
        if not self.clauses:
            return "True"
        return " and ".join(str(c) for c in self.clauses)

    def binding(self, args: Tuple[Any, ...]) -> Dict[str, Any]:
        """Bind parameter names to concrete argument values."""
        if len(args) != len(self.params):
            raise ValueError("predicate arity mismatch")
        return dict(zip(self.params, args))

    def holds(self, args: Tuple[Any, ...], db: Optional[DatabaseFn] = None) -> bool:
        """Evaluate the predicate on concrete argument values.

        Raises :class:`~repro.tor.semantics.EvalError` when a clause is
        outside the axioms' domain for these values (callers treat that
        as "does not hold").
        """
        return self.holds_env(self.binding(args), db)

    def holds_env(self, env: Dict[str, Any],
                  db: Optional[DatabaseFn] = None,
                  eval_fn: Optional[Callable] = None) -> bool:
        """Evaluate the predicate under a name -> value environment.

        Robust to parameter-order differences between this predicate and
        the :class:`PredApp` it is checked against, since binding is by
        name.  ``eval_fn`` substitutes a different evaluation strategy
        (the checker passes its compiled evaluator); it must match
        :func:`repro.tor.semantics.evaluate`'s signature and semantics.
        """
        if eval_fn is None:
            eval_fn = evaluate
        for clause in self.clauses:
            if isinstance(clause, EqClause):
                if env[clause.var] != eval_fn(clause.expr, env, db):
                    return False
            elif isinstance(clause, CmpClause):
                if not eval_fn(clause.expr, env, db):
                    return False
        return True

    def pinned_params(self) -> Tuple[str, ...]:
        """Parameters defined by an equality clause (derivable)."""
        return tuple(c.var for c in self.clauses if isinstance(c, EqClause))

    def derive(self, env: Dict[str, Any], db: Optional[DatabaseFn] = None,
               eval_fn: Optional[Callable] = None) -> Dict[str, Any]:
        """Extend ``env`` with values for every pinned parameter.

        ``env`` must provide all un-pinned parameters.  Returns a new
        environment; raises ``EvalError`` when a defining expression is
        outside the axioms' domain.
        """
        if eval_fn is None:
            eval_fn = evaluate
        out = dict(env)
        for clause in self.clauses:
            if isinstance(clause, EqClause):
                out[clause.var] = eval_fn(clause.expr, out, db)
        return out

    def as_formula_on(self, app: PredApp) -> "Formula":
        """Instantiate this predicate on a :class:`PredApp`'s arguments.

        Each clause becomes a boolean TOR expression with parameters
        replaced by the application's argument expressions — this is how
        the prover expands unknown predicates into concrete goals.
        Binding is by the *application's* parameter names, so predicates
        built with a different parameter order still expand correctly.
        """
        mapping = dict(zip(app.params, app.args))
        parts = []
        for clause in self.clauses:
            if isinstance(clause, EqClause):
                lhs = mapping.get(clause.var, T.Var(clause.var))
                rhs = T.substitute(clause.expr, mapping)
                parts.append(Bool(T.BinOp("=", lhs, rhs)))
            else:
                parts.append(Bool(T.substitute(clause.expr, mapping)))
        return conj(*parts)


#: A full solution: unknown predicate name -> candidate predicate.
Assignment = Dict[str, Predicate]
