"""Source transformation: run the inferred query in place of the code.

Paper Sec. 5.1 patches the generated SQL back into the application.  In
this reproduction the patched method is represented by
:class:`TransformedFragment`: a callable that executes the inferred SQL
through the bundled engine and adapts the result to the shape the
original fragment produced (row list / scalar / boolean), so the two
versions can be compared for both equivalence and performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.qbs import QBSResult, QBSStatus
from repro.sql.database import Database
from repro.tor.values import Record


class TransformationError(Exception):
    """The QBS result cannot be executed (not translated, bad params)."""


@dataclass
class TransformedFragment:
    """The executable form of a translated fragment."""

    result: QBSResult

    def __post_init__(self):
        if self.result.status is not QBSStatus.TRANSLATED:
            raise TransformationError(
                "fragment %s was not translated (%s)"
                % (getattr(self.result.fragment, "name", "?"),
                   self.result.status.value))

    @property
    def sql(self) -> str:
        return self.result.sql.sql

    def execute(self, db: Database,
                params: Optional[Dict[str, Any]] = None) -> Any:
        """Run the inferred query; adapt to the fragment's result shape."""
        query_result = db.execute(self.sql, params)
        kind = self.result.sql.kind
        if kind == "relation":
            return tuple(query_result.rows)
        if kind == "scalar":
            value = query_result.scalar()
            return value
        if kind == "bool":
            return bool(query_result.scalar())
        raise TransformationError("unknown result kind %r" % kind)


def entity_rows(values) -> Tuple[Record, ...]:
    """Normalise original-code results for equivalence comparison.

    The original fragment returns ORM entities, plain dicts (value
    objects built by record-literal appends) or scalars; the
    transformed fragment returns plain records.  This helper projects
    everything down to records so the two can be compared.
    """
    if isinstance(values, (list, tuple)):
        return tuple(_as_record(v) for v in values)
    if isinstance(values, set):
        return tuple(sorted((_as_record(v) for v in values), key=repr))
    return values


def _as_record(value):
    from repro.orm.session import Entity

    if isinstance(value, Entity):
        return value.record
    if isinstance(value, dict):
        return Record(value)
    return value
