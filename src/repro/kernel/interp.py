"""Reference interpreter for the kernel language.

The interpreter serves three purposes:

* **ground truth** — the bounded observational-equivalence check runs a
  fragment and compares its result variable with the evaluation of a
  synthesized postcondition;
* **dynamic invariant filtering** — a ``trace`` callback fires at every
  loop head with the loop id and a snapshot of the environment, giving
  the synthesizer concrete states that any correct loop invariant must
  satisfy (in the spirit of the dynamic-detection work the paper cites);
* **testing** — the corpus tests execute every fragment directly.

Loops are bounded by ``fuel`` to keep runaway candidates from hanging
the test suite; exceeding the budget raises :class:`ExecutionError`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.kernel import ast as K
from repro.tor import ast as T
from repro.tor.semantics import DatabaseFn, EvalError, evaluate

#: Trace callback type: ``trace(loop_id, env_snapshot)``.
TraceFn = Callable[[str, Dict[str, Any]], None]

DEFAULT_FUEL = 1_000_000


class ExecutionError(Exception):
    """Raised on assertion failure, evaluation error or fuel exhaustion."""


def execute(cmd: K.Command, env: Dict[str, Any],
            db: Optional[DatabaseFn] = None,
            trace: Optional[TraceFn] = None,
            fuel: int = DEFAULT_FUEL,
            eval_fn: Optional[Callable] = None) -> Dict[str, Any]:
    """Execute ``cmd``, mutating and returning ``env``.

    ``env`` maps variable names to TOR runtime values.  ``db`` resolves
    ``Query`` expressions.  ``trace`` is invoked at every loop-head
    evaluation (including the final one whose condition is false),
    *before* the condition is tested, mirroring where a loop invariant
    must hold.  ``eval_fn`` substitutes a different TOR evaluation
    strategy (the synthesizer passes compiled closures for its trace
    collection); it must match :func:`repro.tor.semantics.evaluate` in
    signature and semantics.
    """
    budget = [fuel]
    _exec(cmd, env, db, trace, budget, eval_fn or evaluate)
    return env


def _spend(budget, amount: int = 1) -> None:
    budget[0] -= amount
    if budget[0] < 0:
        raise ExecutionError("fuel exhausted: fragment loop did not terminate "
                             "within the configured budget")


def _eval(expr: T.TorNode, env: Dict[str, Any], db: Optional[DatabaseFn],
          eval_fn: Callable) -> Any:
    try:
        return eval_fn(expr, env, db)
    except EvalError as exc:
        raise ExecutionError(str(exc)) from exc


def _exec(cmd: K.Command, env: Dict[str, Any], db: Optional[DatabaseFn],
          trace: Optional[TraceFn], budget, eval_fn: Callable) -> None:
    if isinstance(cmd, K.Skip):
        return

    if isinstance(cmd, K.Assign):
        env[cmd.var] = _eval(cmd.expr, env, db, eval_fn)
        return

    if isinstance(cmd, K.Seq):
        for sub in cmd.commands:
            _exec(sub, env, db, trace, budget, eval_fn)
        return

    if isinstance(cmd, K.If):
        if _eval(cmd.cond, env, db, eval_fn):
            _exec(cmd.then_branch, env, db, trace, budget, eval_fn)
        else:
            _exec(cmd.else_branch, env, db, trace, budget, eval_fn)
        return

    if isinstance(cmd, K.While):
        while True:
            _spend(budget)
            if trace is not None:
                trace(cmd.loop_id, dict(env))
            if not _eval(cmd.cond, env, db, eval_fn):
                break
            _exec(cmd.body, env, db, trace, budget, eval_fn)
        return

    if isinstance(cmd, K.Assert):
        if not _eval(cmd.expr, env, db, eval_fn):
            raise ExecutionError("assertion failed: %r" % (cmd.expr,))
        return

    raise ExecutionError("unknown command %r" % (cmd,))


def run_fragment(fragment: K.Fragment, db: Optional[DatabaseFn] = None,
                 inputs: Optional[Dict[str, Any]] = None,
                 trace: Optional[TraceFn] = None,
                 fuel: int = DEFAULT_FUEL) -> Any:
    """Run a fragment and return the value of its result variable.

    ``inputs`` supplies values for the fragment's input parameters;
    missing relation inputs default to the empty relation and missing
    scalars to 0, which keeps small smoke tests terse.
    """
    env: Dict[str, Any] = {}
    for name, info in fragment.inputs.items():
        if inputs is not None and name in inputs:
            env[name] = inputs[name]
        elif info.kind == "relation":
            env[name] = ()
        else:
            env[name] = 0
    execute(fragment.body, env, db, trace, fuel)
    try:
        return env[fragment.result_var]
    except KeyError:
        raise ExecutionError(
            "fragment %s never assigned its result variable %r"
            % (fragment.name, fragment.result_var)) from None
