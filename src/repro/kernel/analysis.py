"""Structural analysis of kernel fragments.

The template generator (paper Sec. 4.3/4.4) scans the input fragment for
specific patterns — which relation a loop iterates over, which variable
is its counter, which variables accumulate results — and builds the
candidate invariant space from them.  This module extracts those facts.

A canonical scanning loop looks like (paper Fig. 2)::

    while (i < size(rel)) {
        ... get(rel, i) ...
        i := i + 1;
    }

Loops whose guard does not bound a counter by the size of a relation
(for example ``while (get(records, i).id < 10)`` from Sec. 7.3) yield a
:class:`LoopInfo` with ``counter=None``; the synthesizer then has no
``top_i``-shaped template to offer and the fragment fails translation,
exactly as the paper reports for that idiom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel import ast as K
from repro.tor import ast as T


@dataclass
class LoopInfo:
    """Facts about one ``while`` loop used to direct template generation.

    ``loop``            the :class:`~repro.kernel.ast.While` node.
    ``depth``           nesting depth (0 = outermost).
    ``parent``          enclosing loop id, if any.
    ``counter``         name of the scan counter, when the loop matches
                        the canonical pattern.
    ``scanned``         TOR expression for the relation being scanned
                        (usually a ``Var``, possibly ``sort_f(Var)``).
    ``modified``        variables assigned in the body (including the
                        counter and inner-loop variables).
    ``accumulators``    modified variables that are not scan counters —
                        the variables invariants must pin.
    ``inner_loops``     loop ids nested directly inside this one.
    """

    loop: K.While
    depth: int
    parent: Optional[str] = None
    counter: Optional[str] = None
    scanned: Optional[T.TorNode] = None
    bound_const: Optional[int] = None
    modified: Tuple[str, ...] = ()
    accumulators: Tuple[str, ...] = ()
    inner_loops: Tuple[str, ...] = ()

    @property
    def loop_id(self) -> str:
        return self.loop.loop_id


def _match_scan_guard(cond: T.TorNode
                      ) -> Optional[Tuple[str, T.TorNode, Optional[int]]]:
    """Match the canonical scan guard shapes.

    Recognised forms (and their symmetric spellings):

    * ``i < size(rel)`` — a full scan;
    * ``i < k and i < size(rel)`` — a constant-bounded scan (the
      "first k rows" idiom of Sec. 7.3, which translates to LIMIT k).

    Returns ``(counter_name, scanned_relation_expr, bound_const)``.
    """
    simple = _match_size_bound(cond)
    if simple is not None:
        return simple[0], simple[1], None
    if isinstance(cond, T.BinOp) and cond.op == "and":
        left_size = _match_size_bound(cond.left)
        right_size = _match_size_bound(cond.right)
        left_const = _match_const_bound(cond.left)
        right_const = _match_const_bound(cond.right)
        if left_size and right_const and left_size[0] == right_const[0]:
            return left_size[0], left_size[1], right_const[1]
        if right_size and left_const and right_size[0] == left_const[0]:
            return right_size[0], right_size[1], left_const[1]
    return None


def _match_size_bound(cond: T.TorNode) -> Optional[Tuple[str, T.TorNode]]:
    """``i < size(rel)`` or ``size(rel) > i``."""
    if isinstance(cond, T.BinOp) and cond.op == "<":
        if isinstance(cond.left, T.Var) and isinstance(cond.right, T.Size):
            return cond.left.name, cond.right.rel
    if isinstance(cond, T.BinOp) and cond.op == ">":
        if isinstance(cond.right, T.Var) and isinstance(cond.left, T.Size):
            return cond.right.name, cond.left.rel
    return None


def _match_const_bound(cond: T.TorNode) -> Optional[Tuple[str, int]]:
    """``i < k`` for an integer constant ``k``."""
    if isinstance(cond, T.BinOp) and cond.op == "<":
        if (isinstance(cond.left, T.Var) and isinstance(cond.right, T.Const)
                and isinstance(cond.right.value, int)):
            return cond.left.name, cond.right.value
    if isinstance(cond, T.BinOp) and cond.op == ">":
        if (isinstance(cond.right, T.Var) and isinstance(cond.left, T.Const)
                and isinstance(cond.left.value, int)):
            return cond.right.name, cond.left.value
    return None


def _increments_by_one(body: K.Command, var: str) -> bool:
    """True when ``body`` contains exactly ``var := var + 1``."""
    for cmd in body.walk():
        if isinstance(cmd, K.Assign) and cmd.var == var:
            expr = cmd.expr
            if (isinstance(expr, T.BinOp) and expr.op == "+"
                    and expr.left == T.Var(var) and expr.right == T.Const(1)):
                continue
            return False
    return True


def analyze_loops(fragment: K.Fragment) -> Dict[str, LoopInfo]:
    """Compute :class:`LoopInfo` for every loop of the fragment."""
    infos: Dict[str, LoopInfo] = {}

    def visit(cmd: K.Command, depth: int, parent: Optional[str]) -> List[str]:
        """Return loop ids directly nested in ``cmd``."""
        direct: List[str] = []
        if isinstance(cmd, K.Seq):
            for sub in cmd.commands:
                direct.extend(visit(sub, depth, parent))
        elif isinstance(cmd, K.If):
            direct.extend(visit(cmd.then_branch, depth, parent))
            direct.extend(visit(cmd.else_branch, depth, parent))
        elif isinstance(cmd, K.While):
            info = LoopInfo(loop=cmd, depth=depth, parent=parent)
            info.modified = K.modified_vars(cmd.body)
            match = _match_scan_guard(cmd.cond)
            if match is not None:
                counter, scanned, bound_const = match
                if counter in info.modified and _increments_by_one(cmd.body, counter):
                    info.counter = counter
                    info.scanned = scanned
                    info.bound_const = bound_const
            infos[cmd.loop_id] = info
            inner = visit(cmd.body, depth + 1, cmd.loop_id)
            info.inner_loops = tuple(inner)
            direct.append(cmd.loop_id)
        return direct

    visit(fragment.body, 0, None)

    # Accumulators: everything modified in the body except this loop's
    # own counter and the counters of nested loops.
    all_counters = {info.counter for info in infos.values() if info.counter}
    for info in infos.values():
        info.accumulators = tuple(
            v for v in info.modified if v not in all_counters)
    return infos


def scope_vars(fragment: K.Fragment, loop: K.While) -> Tuple[str, ...]:
    """Program variables in scope at the head of ``loop``.

    Used as the parameter list of the loop's unknown invariant predicate.
    We take every fragment variable that is assigned before or inside the
    loop, plus all fragment inputs — a sound over-approximation of the
    textual scope (extra parameters are harmless: the synthesizer simply
    never mentions them).
    """
    names: List[str] = list(fragment.inputs)

    found = [False]

    def visit(cmd: K.Command) -> None:
        if cmd is loop:
            found[0] = True
        if isinstance(cmd, K.Assign):
            if cmd.var not in names:
                names.append(cmd.var)
            return
        if isinstance(cmd, K.Seq):
            for sub in cmd.commands:
                visit(sub)
            return
        if isinstance(cmd, K.If):
            visit(cmd.then_branch)
            visit(cmd.else_branch)
            return
        if isinstance(cmd, K.While):
            for sub in cmd.body.walk():
                if isinstance(sub, K.Assign) and sub.var not in names:
                    names.append(sub.var)
            return

    visit(fragment.body)
    return tuple(names)


def query_assignments(fragment: K.Fragment) -> Dict[str, T.QueryOp]:
    """Map variable name -> the ``Query`` expression assigned to it.

    Only direct ``v := Query(...)`` bindings count; these are the base
    relations that postconditions are built from.
    """
    out: Dict[str, T.QueryOp] = {}
    for cmd in fragment.body.walk():
        if isinstance(cmd, K.Assign) and isinstance(cmd.expr, T.QueryOp):
            out[cmd.var] = cmd.expr
    return out
