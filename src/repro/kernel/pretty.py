"""Source-like rendering of kernel-language programs.

Mirrors the layout of paper Fig. 2 — assignments, nested whiles and the
``Query`` retrievals — so that examples and reports can show "the code
QBS actually reasons about" next to the original source.
"""

from __future__ import annotations

from repro.kernel import ast as K
from repro.tor.pretty import pretty as pretty_expr


def pretty_command(cmd: K.Command, indent: int = 0) -> str:
    """Render a command with two-space indentation."""
    pad = "  " * indent

    if isinstance(cmd, K.Skip):
        return pad + "skip;"

    if isinstance(cmd, K.Assign):
        return "%s%s := %s;" % (pad, cmd.var, pretty_expr(cmd.expr))

    if isinstance(cmd, K.Seq):
        return "\n".join(pretty_command(sub, indent) for sub in cmd.commands)

    if isinstance(cmd, K.If):
        lines = ["%sif (%s) {" % (pad, pretty_expr(cmd.cond)),
                 pretty_command(cmd.then_branch, indent + 1)]
        if not isinstance(cmd.else_branch, K.Skip):
            lines.append(pad + "} else {")
            lines.append(pretty_command(cmd.else_branch, indent + 1))
        lines.append(pad + "}")
        return "\n".join(lines)

    if isinstance(cmd, K.While):
        return "\n".join([
            "%swhile (%s) {  // %s" % (pad, pretty_expr(cmd.cond), cmd.loop_id),
            pretty_command(cmd.body, indent + 1),
            pad + "}",
        ])

    if isinstance(cmd, K.Assert):
        return "%sassert %s;" % (pad, pretty_expr(cmd.expr))

    return pad + repr(cmd)


def pretty_fragment(fragment: K.Fragment) -> str:
    """Render a whole fragment with its header metadata."""
    lines = ["// fragment %s" % fragment.name]
    for name, info in fragment.inputs.items():
        lines.append("// input %s : %s%s" % (
            name, info.kind,
            "(%s)" % ", ".join(info.schema) if info.schema else ""))
    lines.append(pretty_command(fragment.body))
    lines.append("return %s;" % fragment.result_var)
    return "\n".join(lines)
