"""The kernel language of paper Fig. 4.

Candidate code fragments are lowered into this small imperative language
before query inference.  It operates on three types of values — scalars,
immutable records and immutable lists — and its expressions are a strict
subset of the theory of ordered relations (:mod:`repro.tor`), which makes
verification-condition generation a matter of substitution rather than
translation.

Modules
-------
``ast``       commands (skip, assign, if, while, seq, assert) and the
              expression-subset validator.
``interp``    a reference interpreter with loop-head trace hooks, used by
              the synthesizer's dynamic candidate filter and by the
              bounded observational-equivalence check.
``analysis``  structural facts about a fragment: loop nesting, modified
              variables, loop counters and the relations they scan.
``pretty``    source-like rendering of kernel programs.
"""

from repro.kernel.ast import (
    Assert,
    Assign,
    Command,
    Fragment,
    If,
    KernelValidationError,
    Seq,
    Skip,
    VarInfo,
    While,
    validate_expression,
)
from repro.kernel.interp import ExecutionError, execute, run_fragment
from repro.kernel.pretty import pretty_command, pretty_fragment

__all__ = [
    "Assert",
    "Assign",
    "Command",
    "Fragment",
    "If",
    "KernelValidationError",
    "Seq",
    "Skip",
    "VarInfo",
    "While",
    "validate_expression",
    "ExecutionError",
    "execute",
    "run_fragment",
    "pretty_command",
    "pretty_fragment",
]
