"""Abstract syntax of the kernel language (paper Fig. 4).

Commands::

    c ::= skip | var := e | if (e) then c1 else c2
        | while (e) do c | c1 ; c2 | assert e

Expressions are shared with the theory of ordered relations: the kernel
expression grammar of Fig. 4 is exactly the TOR node set

    Const | [] | Var | e.f | {fi = ei} | e1 op e2 | not e
    | Query(...) | size(e) | get_es(er) | append(er, es) | unique(e)

plus ``singleton``/``concat`` which the frontend uses to model list
literals and set insertion.  :func:`validate_expression` enforces the
subset so that a fragment containing, say, a ``sort`` smuggled in as an
expression is rejected loudly instead of silently accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.tor import ast as T

#: TOR node types that may appear in kernel-language expressions.
KERNEL_EXPRESSION_NODES = (
    T.Const,
    T.EmptyRelation,
    T.Var,
    T.FieldAccess,
    T.RecordLit,
    T.BinOp,
    T.Not,
    T.QueryOp,
    T.Size,
    T.Get,
    T.Append,
    T.Unique,
    T.Singleton,
    T.Concat,
    T.Contains,
    T.FieldSpec,
    # ``sort`` is how the frontend models Collections.sort(...) calls on
    # fetched lists (Sec. 7.3); QBS treats it as an uninterpreted
    # operation with a handful of algebraic properties.
    T.Sort,
    # ``remove`` models List.remove(Object): evaluable but outside the
    # template space, so removal fragments fail synthesis (category N).
    T.RemoveFirst,
)


class KernelValidationError(Exception):
    """Raised when an expression falls outside the kernel subset."""


def validate_expression(expr: T.TorNode) -> T.TorNode:
    """Check that ``expr`` only uses kernel-language constructs.

    Returns the expression unchanged on success so callers can validate
    inline; raises :class:`KernelValidationError` otherwise.
    """
    for node in expr.walk():
        if not isinstance(node, KERNEL_EXPRESSION_NODES):
            raise KernelValidationError(
                "%s is not a kernel-language expression construct"
                % type(node).__name__
            )
    return expr


class Command:
    """Base class for kernel-language commands."""

    __slots__ = ()

    def walk(self) -> Iterator["Command"]:
        """Yield this command and all nested sub-commands, pre-order."""
        yield self
        for child in self._sub_commands():
            yield from child.walk()

    def _sub_commands(self) -> Iterator["Command"]:
        return iter(())


@dataclass(frozen=True)
class Skip(Command):
    """``skip`` — the no-op command."""


@dataclass(frozen=True)
class Assign(Command):
    """``var := e``."""

    var: str
    expr: T.TorNode


@dataclass(frozen=True)
class If(Command):
    """``if (cond) then then_branch else else_branch``."""

    cond: T.TorNode
    then_branch: Command
    else_branch: Command = Skip()

    def _sub_commands(self) -> Iterator[Command]:
        yield self.then_branch
        yield self.else_branch


@dataclass(frozen=True)
class While(Command):
    """``while (cond) do body``.

    ``loop_id`` names the loop so verification conditions can refer to
    its (initially unknown) invariant; the frontend assigns ids in
    program order (``loop0`` is the outermost / first).
    """

    cond: T.TorNode
    body: Command
    loop_id: str

    def _sub_commands(self) -> Iterator[Command]:
        yield self.body


@dataclass(frozen=True)
class Seq(Command):
    """``c1 ; c2 ; ...`` — sequential composition, flattened."""

    commands: Tuple[Command, ...]

    def _sub_commands(self) -> Iterator[Command]:
        return iter(self.commands)


@dataclass(frozen=True)
class Assert(Command):
    """``assert e``."""

    expr: T.TorNode


def seq(*commands: Command) -> Command:
    """Smart constructor: flatten nested sequences and drop skips."""
    flat = []
    for cmd in commands:
        if isinstance(cmd, Seq):
            flat.extend(cmd.commands)
        elif not isinstance(cmd, Skip):
            flat.append(cmd)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


# ---------------------------------------------------------------------------
# Fragments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarInfo:
    """Static information about one fragment variable.

    ``kind``
        ``"relation"`` for ordered-relation variables, ``"scalar"`` for
        booleans/numbers/strings, ``"record"`` for single records.
    ``schema``
        Field names of the rows for relation variables (empty for
        scalar-element relations), or of the record for record variables.
    ``table``
        The database table this relation was fetched from, when it is
        the direct result of a ``Query``.
    ``element_scalar``
        True for relations whose rows are bare scalars (projected
        single columns collected into plain lists).
    """

    kind: str
    schema: Tuple[str, ...] = ()
    table: Optional[str] = None
    element_scalar: bool = False


@dataclass(frozen=True)
class Fragment:
    """A candidate code fragment in kernel form (paper Sec. 2/6).

    ``body``
        The kernel command sequence.
    ``result_var``
        The variable whose final value the fragment produces (detected
        by the frontend, Sec. 2.1).
    ``inputs``
        Parameters the fragment receives from its context (scalars used
        in selection criteria, for instance), name -> :class:`VarInfo`.
    ``locals``
        Variables assigned inside the fragment, name -> :class:`VarInfo`.
    ``name``
        Diagnostic label (e.g. ``wilos/RoleService.getRoleUser``).
    """

    body: Command
    result_var: str
    inputs: Dict[str, VarInfo] = field(default_factory=dict)
    locals: Dict[str, VarInfo] = field(default_factory=dict)
    name: str = "<fragment>"

    # Fragment carries dicts, so opt out of hashing/equality-by-value.
    def __hash__(self):  # pragma: no cover - identity hashing only
        return id(self)

    def var_info(self, name: str) -> Optional[VarInfo]:
        """Look up a variable in inputs then locals."""
        if name in self.inputs:
            return self.inputs[name]
        return self.locals.get(name)

    def all_vars(self) -> Dict[str, VarInfo]:
        """Union of inputs and locals (locals win on a clash)."""
        merged = dict(self.inputs)
        merged.update(self.locals)
        return merged

    def loops(self) -> Tuple[While, ...]:
        """All while loops of the body, outermost first, program order."""
        return tuple(cmd for cmd in self.body.walk() if isinstance(cmd, While))


def modified_vars(cmd: Command) -> Tuple[str, ...]:
    """Variables assigned anywhere inside ``cmd``, in first-write order."""
    seen = []
    for node in cmd.walk():
        if isinstance(node, Assign) and node.var not in seen:
            seen.append(node.var)
    return tuple(seen)
