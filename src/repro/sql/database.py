"""The public database facade."""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sql.catalog import Catalog, Table
from repro.sql.executor import (
    ExecutionStats,
    Executor,
    ExecutorOptions,
    QueryResult,
    merge_stats,
)
from repro.sql.parser import parse
from repro.tor import ast as T

#: per-query totals and latency, recorded once per Database.execute.
_QUERIES = obs_metrics.counter(
    "repro_queries_total", "queries executed, by engine mode")
_QUERY_SECONDS = obs_metrics.histogram(
    "repro_query_seconds", "query wall-clock latency")


class Database:
    """An in-memory relational database.

    >>> db = Database()
    >>> _ = db.create_table("users", ["id", "name"])
    >>> db.insert("users", {"id": 1, "name": "alice"})
    >>> [r.name for r in db.execute("SELECT * FROM users")]
    ['alice']

    ``options`` selects the execution mode: the planning engine by
    default, the seed single-pass pipeline with
    ``ExecutorOptions(planner=False)``, partition-parallel execution
    with ``ExecutorOptions(parallel=K)``.  All modes are pinned
    row/column/stats-identical by the regression suites; ``view``
    opens a second mode over the same data for exactly that kind of
    comparison.
    """

    def __init__(self, options: Optional[ExecutorOptions] = None):
        self.catalog = Catalog()
        self.executor = Executor(self.catalog, options)
        self._plan_cache: Dict[str, Any] = {}
        #: cumulative statistics across every executed query.
        self.total_stats = ExecutionStats()

    # -- schema / data -----------------------------------------------------

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        return self.catalog.create_table(name, columns)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def insert(self, table: str, row: Dict[str, Any]) -> None:
        self.catalog.table(table).insert(row)

    def insert_many(self, table: str, rows: Iterable[Dict[str, Any]]) -> None:
        self.catalog.table(table).insert_many(rows)

    def create_index(self, table: str, column: str) -> None:
        self.catalog.table(table).create_index(column)

    def analyze(self, table: Optional[str] = None) -> None:
        """Refresh optimizer statistics (ANALYZE): one table, or all.

        Statistics (row counts, per-column NDV/min/max — see
        :mod:`repro.sql.stats`) are maintained incrementally by
        ``insert``/``insert_many``; call this after loading rows
        behind the table API to bring them back in sync.
        """
        self.catalog.analyze(table)

    def view(self, options: Optional[ExecutorOptions] = None) -> "Database":
        """A second engine over this database's catalog.

        The returned :class:`Database` shares tables and indexes with
        this one but executes under its own ``options`` — the standard
        way to compare execution modes on identical data (equivalence
        tests, the planner and partition benchmarks):

        >>> db = Database()
        >>> _ = db.create_table("users", ["id", "name"])
        >>> db.insert("users", {"id": 1, "name": "alice"})
        >>> legacy = db.view(ExecutorOptions(planner=False))
        >>> parallel = db.view(ExecutorOptions(parallel=2))
        >>> sql = "SELECT u.name FROM users u"
        >>> (db.execute(sql).rows == legacy.execute(sql).rows
        ...     == parallel.execute(sql).rows)
        True
        """
        other = Database(options)
        other.catalog = self.catalog
        other.executor.catalog = self.catalog
        return other

    # -- querying --------------------------------------------------------------

    def execute(self, sql: str,
                params: Optional[Dict[str, Any]] = None,
                trace: bool = False,
                profile: Optional[Any] = None) -> QueryResult:
        """Parse (with caching) and execute one SELECT statement.

        ``trace=True`` runs the query under a trace span: every
        physical operator opens a child span (timed, tagged with its
        description and observed rows; parallel partitions stitch in
        partition-index order), and the root comes back as
        ``result.trace``.  The same happens when an ambient trace is
        already active (e.g. a traced service job), in which case the
        query span also parents into it.  Off by default — the
        untraced path is the seed execution, bit for bit.

        ``profile`` runs the query under the sampling profiler
        (:mod:`repro.obs.profile`): pass ``True`` for a fresh
        :class:`~repro.obs.profile.Profiler` or an existing instance
        to accumulate across queries (started only if idle).  Samples
        attribute to the query's spans, so profiling implies the
        traced path; the profiler comes back as ``result.profile``
        (and the span tree as ``result.trace``).  Fork-backend
        partitions ship their sample buffers home beside their stats.
        With ``profile`` unset (the default) this path does not run at
        all — results, EXPLAIN, traces and metrics are byte-identical,
        pinned by ``tests/obs/test_profile.py``.
        """
        plan = self._plan_cache.get(sql)
        if plan is None:
            plan = parse(sql)
            self._plan_cache[sql] = plan
        mode = "planner" if self.executor.options.planner else "legacy"
        started = time.perf_counter()
        if profile is not None and profile is not False:
            from repro.obs import profile as obs_profile

            profiler = obs_profile.Profiler() if profile is True \
                else profile
            root = obs_trace.span("query", sql=sql, mode=mode)
            if not root:
                root = obs_trace.Span("query", sql=sql, mode=mode)
            with profiler.sampling():
                with root:
                    result = self.executor.execute(plan, params)
            root.tag(rows=len(result.rows))
            result.trace = root
            result.profile = profiler
        elif trace or obs_trace.enabled():
            root = obs_trace.span("query", sql=sql, mode=mode)
            if not root:
                root = obs_trace.Span("query", sql=sql, mode=mode)
            with root:
                result = self.executor.execute(plan, params)
            root.tag(rows=len(result.rows))
            result.trace = root
        else:
            result = self.executor.execute(plan, params)
        _QUERY_SECONDS.observe(time.perf_counter() - started)
        _QUERIES.inc(mode=mode)
        self._accumulate(result.stats)
        return result

    def explain(self, sql: str, params: Optional[Dict[str, Any]] = None,
                analyze: bool = False, timing: bool = False) -> str:
        """EXPLAIN one SELECT: the optimizer's physical operator tree.

        With ``analyze=True`` the query is executed and each operator
        line reports its observed output cardinality; ``timing=True``
        (implies analyze) additionally times each operator under a
        trace and prints ``time=``.
        """
        return self.executor.explain(parse(sql), params, analyze=analyze,
                                     timing=timing)

    def _accumulate(self, stats: ExecutionStats) -> None:
        merge_stats(self.total_stats, stats)

    # -- TOR integration -----------------------------------------------------------

    def tor_db(self):
        """Adapter for the TOR evaluator / kernel interpreter.

        Resolves ``Query`` nodes by running their SQL through the
        engine, so a kernel fragment can execute against real tables.
        """

        def resolve(query: T.QueryOp):
            result = self.execute(query.sql)
            if len(result.columns) == 1 and len(query.schema) == 1:
                column = result.columns[0]
                return tuple(row[column] for row in result.rows)
            return tuple(result.rows)

        return resolve
