"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.sql import ast as S
from repro.sql.errors import SQLParseError
from repro.sql.lexer import Token, tokenize


def parse(sql: str) -> S.Select:
    """Parse one SELECT statement."""
    parser = _Parser(tokenize(sql))
    select = parser.select()
    parser.expect_eof()
    return select


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[str]:
        if self.current.kind == "keyword" and self.current.value in words:
            return self.advance().value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SQLParseError("expected %s at offset %d (found %r)"
                                % (word, self.current.position,
                                   self.current.value))

    def accept_op(self, *ops: str) -> Optional[str]:
        if self.current.kind == "op" and self.current.value in ops:
            return self.advance().value
        return None

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SQLParseError("expected %r at offset %d (found %r)"
                                % (op, self.current.position,
                                   self.current.value))

    def expect_name(self) -> str:
        if self.current.kind == "name":
            return self.advance().value
        raise SQLParseError("expected identifier at offset %d (found %r)"
                            % (self.current.position, self.current.value))

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise SQLParseError("trailing input at offset %d: %r"
                                % (self.current.position, self.current.value))

    # -- grammar ------------------------------------------------------------------

    def select(self) -> S.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.select_item()]
        while self.accept_op(","):
            items.append(self.select_item())
        self.expect_keyword("FROM")
        sources = [self.source()]
        while self.accept_op(","):
            sources.append(self.source())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expr()
        group_by: Tuple[S.Expr, ...] = ()
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            groups = [self.expr()]
            while self.accept_op(","):
                groups.append(self.expr())
            group_by = tuple(groups)
            if self.accept_keyword("HAVING"):
                having = self.expr()
        order_by: Tuple[S.OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            orders = [self.order_item()]
            while self.accept_op(","):
                orders.append(self.order_item())
            order_by = tuple(orders)
        limit = None
        if self.accept_keyword("LIMIT"):
            if self.current.kind != "number":
                raise SQLParseError("LIMIT expects an integer")
            limit = int(self.advance().value)
        return S.Select(items=tuple(items), sources=tuple(sources),
                        where=where, group_by=group_by, having=having,
                        order_by=order_by, limit=limit, distinct=distinct)

    def select_item(self) -> S.SelectItem:
        if self.accept_op("*"):
            return S.SelectItem(S.Star(None))
        # alias.* lookahead
        if (self.current.kind == "name"
                and self.tokens[self.index + 1].kind == "op"
                and self.tokens[self.index + 1].value == "."
                and self.tokens[self.index + 2].value == "*"):
            alias = self.expect_name()
            self.expect_op(".")
            self.expect_op("*")
            return S.SelectItem(S.Star(alias))
        expr = self.expr()
        as_name = None
        if self.accept_keyword("AS"):
            as_name = self.expect_name()
        return S.SelectItem(expr, as_name)

    def source(self) -> S.Source:
        if self.accept_op("("):
            query = self.select()
            self.expect_op(")")
            alias = self._source_alias()
            if alias is None:
                raise SQLParseError("subquery in FROM requires an alias")
            return S.SubquerySource(query, alias)
        table = self.expect_name()
        alias = self._source_alias() or table
        return S.TableSource(table, alias)

    def _source_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_name()
        if self.current.kind == "name":
            return self.advance().value
        return None

    def order_item(self) -> S.OrderItem:
        column = self.column_ref()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return S.OrderItem(column, descending)

    def column_ref(self) -> S.ColumnRef:
        first = self.expect_name()
        if self.accept_op("."):
            return S.ColumnRef(first, self.expect_name())
        return S.ColumnRef(None, first)

    # -- expressions -------------------------------------------------------------------

    def expr(self) -> S.Expr:
        return self.or_expr()

    def or_expr(self) -> S.Expr:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = S.BinOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> S.Expr:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = S.BinOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> S.Expr:
        if self.accept_keyword("NOT"):
            return S.NotOp(self.not_expr())
        return self.comparison()

    def comparison(self) -> S.Expr:
        left = self.primary()
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            self.expect_op("(")
            query = self.select()
            self.expect_op(")")
            return S.InSubquery(left, query, negated=negated)
        if negated:
            raise SQLParseError("NOT must be followed by IN here")
        op = self.accept_op("=", "!=", "<", ">", "<=", ">=")
        if op is not None:
            return S.BinOp(op, left, self.primary())
        return left

    def primary(self) -> S.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            return S.Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return S.Literal(token.value[1:-1].replace("''", "'"))
        if token.kind == "param":
            self.advance()
            return S.Param(token.value[1:])
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return S.Literal(token.value == "TRUE")
        if token.kind == "keyword" and token.value == "NULL":
            self.advance()
            return S.Literal(None)
        if token.kind == "keyword" and token.value in (
                "COUNT", "SUM", "MAX", "MIN", "AVG"):
            name = self.advance().value
            self.expect_op("(")
            if name == "COUNT" and self.accept_op("*"):
                self.expect_op(")")
                return S.FuncCall("COUNT", None)
            arg = self.expr()
            self.expect_op(")")
            return S.FuncCall(name, arg)
        if token.kind == "op" and token.value == "(":
            self.advance()
            inner = self.expr()
            self.expect_op(")")
            return inner
        if token.kind == "name":
            name = self.advance().value
            if self.accept_op("."):
                return S.ColumnRef(name, self.expect_name())
            # A bare name is a column if it resolves later, or a row
            # reference when used as an IN subject; the planner decides.
            return S.ColumnRef(None, name)
        raise SQLParseError("unexpected token %r at offset %d"
                            % (token.value, token.position))
