"""Table statistics: the planner's view of the data.

Every :class:`~repro.sql.catalog.Table` owns a :class:`TableStats`
(SimpleDB's ``StatInfo``, kept honest): the row count plus, per column,
the number of distinct values (NDV) and the min/max bounds.  The cost
model in :mod:`repro.sql.plan.optimizer` turns these into selectivity
and cardinality estimates — ``1/ndv`` for an equality predicate,
``|A|·|B|/max(ndv)`` for an equality join — which drive join ordering,
access-path choice and the ``parallel="auto"`` partition-count rule.

Maintenance is **incremental**: :meth:`TableStats.observe` runs on
every ``Table.insert`` (a set membership test and two comparisons per
column), so stats are exact for data that arrives through the table
API.  Rows smuggled in behind the API (``table.rows.append``, bulk
loaders) leave the stats stale; ``Database.analyze()`` /
:meth:`TableStats.refresh` recompute everything from the stored rows.

Unhashable column values make the NDV sketch impossible and
incomparable ones (ints next to strings) break min/max; both cases
degrade per column to "unknown" (:meth:`ndv` / bounds return ``None``)
rather than guessing, and the optimizer falls back to its default
selectivities.  ``None`` values are simply ignored by the bounds (SQL
NULL semantics), so the result never depends on load order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: The synthetic storage-order column every table exposes.  Its stats
#: need no sketch: ``_rowid`` is dense and unique by construction.
ROWID = "_rowid"


class ColumnStats:
    """NDV sketch and min/max bounds for one column."""

    __slots__ = ("_distinct", "_min", "_max", "_hashable", "_comparable")

    def __init__(self):
        self._distinct = set()
        self._min: Any = None
        self._max: Any = None
        self._hashable = True
        self._comparable = True

    @property
    def ndv(self) -> Optional[int]:
        """Distinct-value count; ``None`` when values were unhashable."""
        return len(self._distinct) if self._hashable else None

    @property
    def min(self) -> Any:
        return self._min if (self._comparable and self._distinct_seen()) \
            else None

    @property
    def max(self) -> Any:
        return self._max if (self._comparable and self._distinct_seen()) \
            else None

    def _distinct_seen(self) -> bool:
        return bool(self._distinct) or not self._hashable

    def observe(self, value: Any) -> None:
        if self._hashable:
            try:
                self._distinct.add(value)
            except TypeError:
                self._hashable = False
                self._distinct = set()
        if self._comparable and value is not None:
            # None is ignored by the bounds (SQL NULL semantics) so the
            # result never depends on where in the load a None appears.
            try:
                if self._min is None or value < self._min:
                    self._min = value
                if self._max is None or value > self._max:
                    self._max = value
            except TypeError:
                self._comparable = False
                self._min = self._max = None


class TableStats:
    """Row count plus per-column :class:`ColumnStats` for one table."""

    def __init__(self, columns: Tuple[str, ...]):
        self.columns = tuple(columns)
        self.row_count = 0
        self.column_stats: Dict[str, ColumnStats] = {
            column: ColumnStats() for column in self.columns}

    # -- incremental maintenance (Table.insert) ---------------------------

    def observe(self, record: Mapping[str, Any]) -> None:
        """Fold one inserted row into the statistics."""
        self.row_count += 1
        for column in self.columns:
            self.column_stats[column].observe(record[column])

    # -- full refresh (ANALYZE) -------------------------------------------

    def refresh(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Recompute everything from the stored rows (stale-proof)."""
        self.row_count = 0
        self.column_stats = {column: ColumnStats()
                             for column in self.columns}
        for record in rows:
            self.observe(record)

    # -- planner accessors -------------------------------------------------

    def ndv(self, column: str) -> Optional[int]:
        """Distinct values in ``column``; ``None`` when unknown."""
        if column == ROWID:
            return self.row_count
        stats = self.column_stats.get(column)
        return stats.ndv if stats is not None else None

    def bounds(self, column: str) -> Tuple[Any, Any]:
        """(min, max) of ``column``; ``(None, None)`` when unknown."""
        if column == ROWID:
            if self.row_count == 0:
                return None, None
            return 0, self.row_count - 1
        stats = self.column_stats.get(column)
        if stats is None:
            return None, None
        return stats.min, stats.max

    def __repr__(self) -> str:
        return "TableStats(rows=%d, columns=%s)" % (
            self.row_count,
            {c: self.column_stats[c].ndv for c in self.columns})
