"""Tables and the catalog.

Rows are :class:`~repro.tor.values.Record` objects stored in insertion
order; each row's position doubles as its ``_rowid``, the storage order
the ``Order`` function of the SQL generator relies on.  Hash indexes
are created explicitly (or automatically by the ORM layer, mirroring
Hibernate's index DDL) and maintained on insert.

Every table also maintains a :class:`~repro.sql.stats.TableStats`
(row count, per-column NDV/min/max) incrementally on insert; the
cost-based planner reads it and ``Catalog.analyze()`` /
``Table.analyze()`` recompute it from the stored rows when stats have
gone stale (rows written behind the ``insert`` API).
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sql.errors import SQLExecutionError
from repro.sql.indexes import HashIndex
from repro.sql.stats import TableStats
from repro.tor.values import Record

#: process-unique table identities, folded into content digests so two
#: different tables can never collide on an empty/equal digest cache
#: entry by accident of naming.
_TABLE_UIDS = itertools.count(1)


class Table:
    """One base table: named columns, ordered rows, optional indexes."""

    def __init__(self, name: str, columns: Tuple[str, ...]):
        if not columns:
            raise SQLExecutionError("table %r needs at least one column" % name)
        self.name = name
        self.columns = tuple(columns)
        self.rows: List[Record] = []
        self.indexes: Dict[str, HashIndex] = {}
        #: optimizer statistics, maintained incrementally on insert.
        self.stats = TableStats(self.columns)
        #: scan statistics for the benchmark harness.
        self.rows_scanned = 0
        #: monotone content version, bumped by every mutation (insert,
        #: index creation, stats refresh).  The worker-pool cache keys
        #: shipped tables on it: an unchanged version means the cached
        #: content digest — and the worker's cached copy — are current.
        self.data_version = 0
        self._uid = next(_TABLE_UIDS)
        self._digest_cache: Optional[Tuple[int, str]] = None

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert one row; returns its rowid (= position)."""
        record = row if isinstance(row, Record) else Record(row)
        if tuple(record.fields) != self.columns:
            # Accept any order / dict input but normalise to the schema.
            try:
                record = Record({c: record[c] for c in self.columns})
            except KeyError as exc:
                raise SQLExecutionError(
                    "row for table %r is missing column %s"
                    % (self.name, exc)) from None
        position = len(self.rows)
        self.rows.append(record)
        self.stats.observe(record)
        for index in self.indexes.values():
            index.add(record[index.column], position)
        self.data_version += 1
        return position

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def create_index(self, column: str) -> HashIndex:
        """Create (or return) a hash index on ``column``."""
        if column not in self.columns:
            raise SQLExecutionError("no column %r in table %r"
                                    % (column, self.name))
        if column in self.indexes:
            return self.indexes[column]
        index = HashIndex(column)
        for position, record in enumerate(self.rows):
            index.add(record[column], position)
        self.indexes[column] = index
        self.data_version += 1
        return index

    def analyze(self) -> TableStats:
        """Recompute the optimizer statistics from the stored rows."""
        self.stats.refresh(self.rows)
        self.data_version += 1
        return self.stats

    def content_digest(self) -> str:
        """A stable digest of this table's servable content (columns,
        rows, index set), memoized by ``data_version``.

        This is the worker pool's cache key: a worker holding a table
        under this digest can execute against it without any rows being
        re-shipped.  The digest folds in the table's process-unique id,
        so the key identifies *this* table at *this* content version —
        a deliberate choice: equality across coincidentally identical
        tables is not worth risking staleness of derived state (stats,
        index layout) that rides along with the shipped copy.
        """
        cached = self._digest_cache
        if cached is not None and cached[0] == self.data_version:
            return cached[1]
        body = pickle.dumps(
            (self._uid, self.data_version, self.columns,
             tuple(sorted(self.indexes)), len(self.rows)),
            protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(body).hexdigest()[:24]
        self._digest_cache = (self.data_version, digest)
        return digest

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return "Table(%s, %d rows)" % (self.name, len(self.rows))


class Catalog:
    """All tables of one database."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        #: schema version, bumped on create/drop; with each table's
        #: ``data_version`` it forms the pool's catalog cache key.
        self.version = 0

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        if name in self.tables:
            raise SQLExecutionError("table %r already exists" % name)
        table = Table(name, tuple(columns))
        self.tables[name] = table
        self.version += 1
        return table

    def content_key(self) -> Tuple:
        """The catalog's full content identity: schema version plus
        every table's content digest.  Two equal keys mean a worker's
        cached catalog needs zero rows re-shipped."""
        return (self.version,
                tuple(sorted((name, table.content_digest())
                             for name, table in self.tables.items())))

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SQLExecutionError("unknown table %r" % name) from None

    def analyze(self, name: Optional[str] = None) -> None:
        """Refresh optimizer statistics for one table (or all of them)."""
        if name is not None:
            self.table(name).analyze()
            return
        for table in self.tables.values():
            table.analyze()

    def drop_table(self, name: str) -> None:
        if self.tables.pop(name, None) is not None:
            self.version += 1
