"""Tables and the catalog.

Rows are :class:`~repro.tor.values.Record` objects stored in insertion
order; each row's position doubles as its ``_rowid``, the storage order
the ``Order`` function of the SQL generator relies on.  Hash indexes
are created explicitly (or automatically by the ORM layer, mirroring
Hibernate's index DDL) and maintained on insert.

Every table also maintains a :class:`~repro.sql.stats.TableStats`
(row count, per-column NDV/min/max) incrementally on insert; the
cost-based planner reads it and ``Catalog.analyze()`` /
``Table.analyze()`` recompute it from the stored rows when stats have
gone stale (rows written behind the ``insert`` API).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sql.errors import SQLExecutionError
from repro.sql.indexes import HashIndex
from repro.sql.stats import TableStats
from repro.tor.values import Record


class Table:
    """One base table: named columns, ordered rows, optional indexes."""

    def __init__(self, name: str, columns: Tuple[str, ...]):
        if not columns:
            raise SQLExecutionError("table %r needs at least one column" % name)
        self.name = name
        self.columns = tuple(columns)
        self.rows: List[Record] = []
        self.indexes: Dict[str, HashIndex] = {}
        #: optimizer statistics, maintained incrementally on insert.
        self.stats = TableStats(self.columns)
        #: scan statistics for the benchmark harness.
        self.rows_scanned = 0

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert one row; returns its rowid (= position)."""
        record = row if isinstance(row, Record) else Record(row)
        if tuple(record.fields) != self.columns:
            # Accept any order / dict input but normalise to the schema.
            try:
                record = Record({c: record[c] for c in self.columns})
            except KeyError as exc:
                raise SQLExecutionError(
                    "row for table %r is missing column %s"
                    % (self.name, exc)) from None
        position = len(self.rows)
        self.rows.append(record)
        self.stats.observe(record)
        for index in self.indexes.values():
            index.add(record[index.column], position)
        return position

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def create_index(self, column: str) -> HashIndex:
        """Create (or return) a hash index on ``column``."""
        if column not in self.columns:
            raise SQLExecutionError("no column %r in table %r"
                                    % (column, self.name))
        if column in self.indexes:
            return self.indexes[column]
        index = HashIndex(column)
        for position, record in enumerate(self.rows):
            index.add(record[column], position)
        self.indexes[column] = index
        return index

    def analyze(self) -> TableStats:
        """Recompute the optimizer statistics from the stored rows."""
        self.stats.refresh(self.rows)
        return self.stats

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return "Table(%s, %d rows)" % (self.name, len(self.rows))


class Catalog:
    """All tables of one database."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        if name in self.tables:
            raise SQLExecutionError("table %r already exists" % name)
        table = Table(name, tuple(columns))
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SQLExecutionError("unknown table %r" % name) from None

    def analyze(self, name: Optional[str] = None) -> None:
        """Refresh optimizer statistics for one table (or all of them)."""
        if name is not None:
            self.table(name).analyze()
            return
        for table in self.tables.values():
            table.analyze()

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)
