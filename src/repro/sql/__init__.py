"""An in-memory relational engine for executing QBS-generated queries.

The paper's performance evaluation (Fig. 14) runs the original
imperative fragments and the QBS-transformed queries against a real
DBMS behind Hibernate.  This package is that substrate: a small but
honest SQL engine with

* a lexer/parser for the SQL subset QBS emits (SELECT with DISTINCT,
  multi-table FROM, WHERE conjunctions, IN subqueries, aggregates,
  COUNT(*) comparisons, ORDER BY including the hidden ``_rowid``
  storage order, LIMIT, named parameters);
* a catalog of tables with insertion-ordered rows and hash indexes;
* a planner that pushes selection predicates into scans, uses indexes
  for equality lookups, and — crucially for Fig. 14c — implements
  equality joins as hash joins (O(n)) rather than nested loops (O(n²));
* an executor with per-query statistics (rows scanned, index probes)
  that the benchmarks report alongside wall-clock time.

The engine preserves insertion order for unordered scans, which is the
"record order in the database" that the ``Order`` function of Fig. 9
relies on.
"""

from repro.sql.database import Database, QueryResult
from repro.sql.errors import SQLError, SQLParseError, SQLExecutionError

__all__ = [
    "Database",
    "QueryResult",
    "SQLError",
    "SQLParseError",
    "SQLExecutionError",
]
