"""An in-memory relational engine for executing QBS-generated queries.

The paper's performance evaluation (Fig. 14) runs the original
imperative fragments and the QBS-transformed queries against a real
DBMS behind Hibernate.  This package is that substrate: a small but
honest SQL engine with

* a lexer/parser for the SQL subset QBS emits (SELECT with DISTINCT,
  multi-table FROM, WHERE conjunctions, IN subqueries, aggregates,
  COUNT(*) comparisons, GROUP BY / HAVING, ORDER BY including the
  hidden ``_rowid`` storage order, LIMIT, named parameters);
* a catalog of tables with insertion-ordered rows and hash indexes;
* a query planner (:mod:`repro.sql.plan`) with an explicit logical plan
  IR, a rule optimizer that pushes selection predicates into scans,
  chooses index scans for equality lookups, and — crucially for
  Fig. 14c — orders equality joins into build/probe hash-join chains
  (O(n)) rather than nested loops (O(n²)), plus an EXPLAIN printer;
* an executor with per-query statistics (rows scanned, index probes)
  and per-operator cardinalities that the benchmarks report alongside
  wall-clock time; the seed single-pass pipeline remains available as
  ``ExecutorOptions(planner=False)``.

The engine preserves insertion order for unordered scans, which is the
"record order in the database" that the ``Order`` function of Fig. 9
relies on; GROUP BY emits groups in first-encounter order, the grouped
analogue of the same guarantee.
"""

from repro.sql.database import Database, QueryResult
from repro.sql.errors import SQLError, SQLParseError, SQLExecutionError
from repro.sql.executor import ExecutorOptions

__all__ = [
    "Database",
    "ExecutorOptions",
    "QueryResult",
    "SQLError",
    "SQLParseError",
    "SQLExecutionError",
]
