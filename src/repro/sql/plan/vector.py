"""Batch-at-a-time expression compilation for vectorized execution.

The vectorized operators (``ExecutorOptions(vectorized=True)``) stream
:class:`Batch` objects — per-alias lists of the engine's ``(rowid,
Record)`` pairs — instead of one environment dict per row.  Scalar
expressions are compiled **once per query** into closures that evaluate
a whole batch per call (:func:`compile_scalar` /
:func:`compile_filter`), amortizing the interpreter's per-row dispatch
the same way ``tor/compile.py`` did for synthesis evaluation.

The compiled semantics mirror ``Executor._eval`` exactly — same values,
same error messages, same short-circuit evaluation sets for AND/OR
(the right side is evaluated only over the rows the left side admits,
via a masked sub-batch) — so the vectorized mode stays pinned
row/column/stats-identical to the row-at-a-time baseline.  Anything
the compiler cannot reproduce bit for bit (subqueries, aggregate
calls) raises :class:`Unvectorizable`; the lowering gates on
:func:`vectorizable` and falls back to the row operators there, which
are identical by construction.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Tuple

from repro.sql import ast as S
from repro.sql.errors import SQLExecutionError
from repro.sql.executor import _param, _truthy
from repro.tor.values import Record

#: One in-flight row of one source: (rowid, record) — the same pair
#: object the row-at-a-time operators carry, so identity (and the
#: trivial env rebuild in :meth:`Batch.envs`) is preserved.
Pair = Tuple[int, Record]

#: Comparison operators with an exact vector counterpart; mirrors
#: ``executor._apply_op`` (AND/OR are compiled separately, with
#: short-circuit parity).
_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}


class Unvectorizable(Exception):
    """Raised by the compiler for expression shapes it cannot
    reproduce with exact row-mode parity (subqueries, aggregates);
    the lowering falls back to the row operators there."""


class Batch:
    """A column batch: parallel per-alias lists of ``(rowid, record)``.

    ``aliases`` is the join-chain order (the same order the row mode
    builds environment dicts in); every alias's pair list has length
    ``n``.  Extracted column vectors are cached per ``(alias, column)``
    so repeated references inside one predicate pay extraction once.
    """

    __slots__ = ("aliases", "pairs", "n", "_cols")

    def __init__(self, aliases: Tuple[str, ...],
                 pairs: Dict[str, List[Pair]], n: int):
        self.aliases = aliases
        self.pairs = pairs
        self.n = n
        self._cols: Dict[Tuple[str, str], List[Any]] = {}

    @classmethod
    def from_pairs(cls, alias: str, pairs: List[Pair]) -> "Batch":
        return cls((alias,), {alias: pairs}, len(pairs))

    @classmethod
    def from_envs(cls, envs: List[Dict[str, Pair]],
                  aliases: Tuple[str, ...]) -> "Batch":
        pairs = {a: [env[a] for env in envs] for a in aliases}
        return cls(aliases, pairs, len(envs))

    def column(self, alias: str, column: str) -> List[Any]:
        """The column's value vector (``_rowid`` -> the rowid vector).

        A missing column raises the row mode's qualified-reference
        error; callers resolving *bare* names check membership first
        (the row mode's bare path never raises this message).
        """
        key = (alias, column)
        got = self._cols.get(key)
        if got is None:
            rows = self.pairs[alias]
            if column == "_rowid":
                got = [pair[0] for pair in rows]
            else:
                try:
                    got = [pair[1][column] for pair in rows]
                except KeyError:
                    raise SQLExecutionError(
                        "no column %r in source %r" % (column, alias)
                    ) from None
            self._cols[key] = got
        return got

    def records(self, alias: str) -> List[Record]:
        """The whole-row vector (RowRef / bare-alias references)."""
        return [pair[1] for pair in self.pairs[alias]]

    def select(self, indices: List[int]) -> "Batch":
        """A compacted sub-batch of the given row positions, in order."""
        pairs = {a: [rows[i] for i in indices]
                 for a, rows in self.pairs.items()}
        return Batch(self.aliases, pairs, len(indices))

    def envs(self) -> List[Dict[str, Pair]]:
        """Rebuild row-mode environment dicts (alias -> pair).

        Insertion order is the chain order, exactly as the row-mode
        join operators build them.
        """
        aliases = self.aliases
        if len(aliases) == 1:
            alias = aliases[0]
            return [{alias: pair} for pair in self.pairs[alias]]
        columns = [self.pairs[a] for a in aliases]
        return [dict(zip(aliases, row)) for row in zip(*columns)]


def vectorizable(expr: S.Expr) -> bool:
    """Whether :func:`compile_scalar` accepts this expression.

    The compilable subset: literals, parameters, column / whole-row
    references, the six comparisons, AND/OR/NOT.  Subqueries and
    aggregate calls are excluded — their evaluation touches engine
    statistics or group state the compiler cannot reproduce exactly.
    """
    if isinstance(expr, (S.Literal, S.Param, S.ColumnRef, S.RowRef)):
        return True
    if isinstance(expr, S.BinOp):
        if expr.op not in _OPS and expr.op not in ("AND", "OR"):
            return False
        return vectorizable(expr.left) and vectorizable(expr.right)
    if isinstance(expr, S.NotOp):
        return vectorizable(expr.expr)
    return False


#: compile_scalar's result: (is_const, fn).  Constant closures take
#: ``(params)`` and return one scalar; vector closures take
#: ``(batch, params)`` and return a list of length ``batch.n``.
Compiled = Tuple[bool, Callable]


def compile_scalar(expr: S.Expr) -> Compiled:
    """Compile one scalar expression for batch evaluation.

    Returns ``(is_const, fn)``: a constant closure (no row
    dependence — literals, parameters, and operators over them) is
    evaluated once and broadcast by the caller; a vector closure maps
    a batch to a value list.  Raises :class:`Unvectorizable` for
    unsupported shapes — gate with :func:`vectorizable` first.
    """
    if isinstance(expr, S.Literal):
        value = expr.value
        return True, lambda params: value
    if isinstance(expr, S.Param):
        name = expr.name
        return True, lambda params: _param(params, name)
    if isinstance(expr, S.ColumnRef):
        return False, _compile_column(expr)
    if isinstance(expr, S.RowRef):
        alias = expr.alias

        def rows_fn(batch, params):
            if alias not in batch.pairs:
                raise SQLExecutionError("unknown alias %r" % alias)
            return batch.records(alias)

        return False, rows_fn
    if isinstance(expr, S.BinOp):
        if expr.op in ("AND", "OR"):
            return _compile_logical(expr.op, expr.left, expr.right)
        if expr.op in _OPS:
            return _compile_comparison(expr.op, expr.left, expr.right)
        raise Unvectorizable("operator %r" % expr.op)
    if isinstance(expr, S.NotOp):
        inner_const, inner = compile_scalar(expr.expr)
        if inner_const:
            return True, lambda params: not _truthy(inner(params))
        return False, lambda batch, params: [
            not _truthy(v) for v in inner(batch, params)]
    raise Unvectorizable("expression %r" % (expr,))


def _compile_column(ref: S.ColumnRef) -> Callable:
    """A column reference, mirroring ``Executor._column_value``.

    Qualified names resolve against the reference's alias (unknown
    alias / missing column raise the row mode's messages); bare names
    resolve a source alias to the whole row, then scan the chain for
    the first source carrying the column (``_rowid`` resolves to the
    first source's rowids, as the row mode's env-iteration does).
    """
    alias, column = ref.alias, ref.column
    if alias is not None:
        def qualified(batch, params):
            if alias not in batch.pairs:
                raise SQLExecutionError("unknown alias %r" % alias)
            return batch.column(alias, column)

        return qualified

    def bare(batch, params):
        if column in batch.pairs:
            return batch.records(column)
        for a in batch.aliases:
            if column == "_rowid":
                return batch.column(a, "_rowid")
            rows = batch.pairs[a]
            if rows and column in rows[0][1].fields:
                return batch.column(a, column)
        raise SQLExecutionError("cannot resolve column %r" % column)

    return bare


def _compile_comparison(op: str, left: S.Expr, right: S.Expr) -> Compiled:
    op_fn = _OPS[op]
    lconst, lf = compile_scalar(left)
    rconst, rf = compile_scalar(right)
    if lconst and rconst:
        return True, lambda params: op_fn(lf(params), rf(params))
    if lconst:
        def const_left(batch, params):
            lval = lf(params)
            return [op_fn(lval, v) for v in rf(batch, params)]

        return False, const_left
    if rconst:
        def const_right(batch, params):
            # Left before right, like the row evaluator.
            lvec = lf(batch, params)
            rval = rf(params)
            return [op_fn(v, rval) for v in lvec]

        return False, const_right

    def both(batch, params):
        lvec = lf(batch, params)
        rvec = rf(batch, params)
        return [op_fn(a, b) for a, b in zip(lvec, rvec)]

    return False, both


def _compile_logical(op: str, left: S.Expr, right: S.Expr) -> Compiled:
    """AND/OR with short-circuit *evaluation-set* parity.

    The row evaluator never evaluates the right side for rows the left
    side already decides; the compiled form evaluates the right side
    over a masked sub-batch of exactly those undecided rows (and not
    at all when there are none), so error behaviour — e.g. an unbound
    parameter on the right of an always-false AND — matches.
    """
    is_and = op == "AND"
    lconst, lf = compile_scalar(left)
    rconst, rf = compile_scalar(right)
    if lconst and rconst:
        if is_and:
            return True, lambda params: (_truthy(lf(params))
                                         and _truthy(rf(params)))
        return True, lambda params: (_truthy(lf(params))
                                     or _truthy(rf(params)))
    if lconst:
        def const_left(batch, params):
            lval = _truthy(lf(params))
            if is_and and not lval:
                return [False] * batch.n
            if not is_and and lval:
                return [True] * batch.n
            return [_truthy(v) for v in rf(batch, params)]

        return False, const_left

    def vector_left(batch, params):
        mask = [_truthy(v) for v in lf(batch, params)]
        if is_and:
            hits = [i for i, v in enumerate(mask) if v]
        else:
            hits = [i for i, v in enumerate(mask) if not v]
        if not hits:
            return mask
        if rconst:
            rval = _truthy(rf(params))
            for i in hits:
                mask[i] = rval
            return mask
        sub = batch.select(hits)
        rvec = rf(sub, params)
        for j, i in enumerate(hits):
            mask[i] = _truthy(rvec[j])
        return mask

    return False, vector_left


def compile_filter(predicates: Tuple[S.Expr, ...]) -> Callable:
    """Compile a conjunct list into one batch-filtering closure.

    ``apply(batch, params)`` returns the batch of surviving rows
    (possibly the input batch unchanged when everything passes).
    Conjuncts apply in order, each over the previous one's survivors —
    the row mode's evaluation set exactly.
    """
    compiled = [compile_scalar(p) for p in predicates]

    def apply(batch: Batch, params) -> Batch:
        for is_const, fn in compiled:
            if batch.n == 0:
                return batch
            if is_const:
                if not _truthy(fn(params)):
                    return batch.select([])
            else:
                vec = fn(batch, params)
                keep = [i for i, v in enumerate(vec) if _truthy(v)]
                if len(keep) != batch.n:
                    batch = batch.select(keep)
        return batch

    return apply
