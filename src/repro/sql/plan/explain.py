"""EXPLAIN: render a physical plan as an indented operator tree.

``render`` produces the static plan; after :meth:`PhysicalPlan.execute`
has run (or via ``Database.explain(sql, analyze=True)``) each line also
carries the operator's observed output cardinality — per-operator
execution statistics in the style of ``EXPLAIN ANALYZE``::

    Project(t0.login, t2.descriptor_name)  [rows=7]
     └─ HashJoin(t2.role_id = t1.role_id)  [rows=7]
         ├─ HashJoin(t0.role_id = t1.role_id)  [rows=9]
         │   ├─ FullScan(participant AS t0)  [rows=9]
         │   └─ FullScan(role AS t1)  [rows=3]
         └─ IndexScan(role_descriptor AS t2, role_id = 1)  [rows=4]

Partition-parallel plans (``ExecutorOptions(parallel=K)``) print their
partition count statically (``partitions=K`` in the operator body) and,
under ``analyze``, each partitioned operator's per-partition output
counts in partition-index order::

    Gather(partitions=2)  [rows=9]
     └─ PartitionedHashJoin(t0.role_id = t1.role_id)  [rows=9, parts=5|4]
         ├─ PartitionedScan(FullScan(participant AS t0), partitions=2)  [rows=9, parts=5|4]
         └─ FullScan(role AS t1)  [rows=3]

The full format is documented in ``docs/explain.md``.
"""

from __future__ import annotations

from typing import List

from repro.sql.plan.physical import PhysicalOp


def _estimate(value: float) -> str:
    """Compact estimate rendering: integral values drop the fraction."""
    if float(value).is_integer():
        return "%d" % int(value)
    return "%.1f" % value


def render(root: PhysicalOp, analyze: bool = False,
           timing: bool = False) -> str:
    """Render the operator tree rooted at ``root``.

    ``timing`` adds a ``time=`` column with each operator's wall-clock
    milliseconds, available when the plan executed under an active
    trace (``Database.explain(sql, analyze=True, timing=True)`` opens
    one).  It is off by default so EXPLAIN output stays byte-identical
    to the untraced engine's.
    """
    lines: List[str] = []

    def emit(op: PhysicalOp, prefix: str, child_prefix: str) -> None:
        body = op.describe()
        bits = []
        if analyze and op.rows_out is not None:
            bits.append("rows=%d" % op.rows_out)
        if analyze and op.batches_out is not None:
            bits.append("batches=%d" % op.batches_out)
        if analyze and timing and op.elapsed_seconds is not None:
            bits.append("time=%.3fms" % (op.elapsed_seconds * 1000.0))
        if analyze:
            parts = op.partition_rows
            if parts is not None and any(n is not None for n in parts):
                bits.append("parts=%s" % "|".join(
                    "?" if n is None else str(n) for n in parts))
            if op.backend is not None:
                # Only set for non-default substrates (the pool), so
                # thread/fork analyze output stays byte-identical.
                bits.append("backend=%s" % op.backend)
            if op.degraded is not None:
                bits.append("degraded=%s" % op.degraded)
                if op.degraded_kinds:
                    bits.append("degrade_kind=%s"
                                % "|".join(op.degraded_kinds))
        if op.est_rows is not None:
            bits.append("est_rows=%s" % _estimate(op.est_rows))
        if op.est_cost is not None:
            bits.append("cost=%s" % _estimate(op.est_cost))
        if bits:
            body += "  [%s]" % ", ".join(bits)
        lines.append(prefix + body)
        children = op.children
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = " └─ " if last else " ├─ "
            extension = "    " if last else " │  "
            emit(child, child_prefix + connector, child_prefix + extension)

    emit(root, "", "")
    return "\n".join(lines)
