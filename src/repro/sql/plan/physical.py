"""Physical operators: the executable form of an optimized plan.

Lowering (:func:`lower`) maps each logical node onto an operator object:

* ``Scan``      -> :class:`FullScanOp` / :class:`IndexScanOp` /
                   :class:`SubqueryScanOp`
* ``Join``      -> :class:`HashJoinOp` / :class:`NestedLoopJoinOp`
* ``Filter``    -> :class:`FilterOp`
* ``Sort``      -> :class:`SortOp` (heap top-k selection when the
                   optimizer attached a LIMIT bound)
* ``Aggregate`` -> :class:`AggregateOp` (GROUP BY grouping in
                   first-encounter order, HAVING, aggregate projection),
                   or :class:`PartialAggregateOp` under a partitioned
                   child when every aggregate is combinable
* ``Project`` / ``Distinct`` / ``Limit`` -> the matching row operators
* ``Gather``    -> :class:`GatherOp` over a chain of partitioned
                   operators (:class:`PartitionedScanOp`,
                   :class:`PartitionedHashJoinOp`, ...)

Operators delegate scalar/aggregate expression evaluation to the owning
:class:`~repro.sql.executor.Executor`, so both executor modes share one
expression semantics.  Each operator records its output cardinality in
``rows_out`` (per-operator execution statistics), which the EXPLAIN
printer surfaces in ``analyze`` mode; engine-wide counters still go to
the familiar :class:`~repro.sql.executor.ExecutionStats`.  Partitioned
operators additionally record per-partition output counts in
``partition_rows`` (EXPLAIN's ``parts=`` annotation).

The partition-parallel invariant: a partitioned chain splits the
leftmost scan into contiguous range partitions, shares every join's
build table, probes per partition, and merges in partition-index order
— which is exactly the serial row order, so ``parallel=K`` is
row/column/stats-identical to the serial plan for every K.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sql import ast as S
from repro.sql.errors import SQLExecutionError
from repro.sql.executor import (
    Env,
    ExecutionStats,
    QueryResult,
    _apply_op,
    _avg_final,
    _avg_state,
    _combine_avg,
    _default_name,
    _hash_build,
    _hash_probe,
    _param,
    _ScannedSource,
    _truthy,
    merge_stats,
)
from repro.sql.plan import logical as L
from repro.sql.plan.parallel import run_tasks
from repro.sql.plan.vector import (
    Batch,
    compile_filter,
    compile_scalar,
    vectorizable,
)
from repro.service.faults import classify_exception
from repro.tor.values import Record

#: degradation events by rung transition and classified failure kind —
#: the metrics face of the ``degraded=`` / ``degrade_kind=`` EXPLAIN
#: annotations.
_DEGRADATIONS = obs_metrics.counter(
    "repro_degradations_total",
    "substrate degradation events by rung transition and failure kind")


@dataclass
class _Ctx:
    """Per-execution state threaded through the operator tree."""

    executor: Any                       # repro.sql.executor.Executor
    params: Dict[str, Any]
    stats: Any                          # ExecutionStats (engine-wide)
    scanned: List[_ScannedSource] = None
    #: optional repro.service.faults.Deadline bounding the whole query;
    #: partitioned drivers abandon unfinished partitions at expiry.
    deadline: Any = None

    def __post_init__(self):
        if self.scanned is None:
            self.scanned = []


#: operator entry points that open a trace span when a trace is active.
_TRACED_METHODS = ("scanned", "envs", "rows", "run_partition", "batches")


def _traced(method):
    """Wrap an operator entry point with an optional trace span.

    With tracing off (the default) the wrapper is one contextvar read
    and a direct call — the operator body is untouched, so results,
    statistics and EXPLAIN output are exactly the seed's.  With a
    trace active it opens a child span named after the operator,
    tagged with the serial-equivalent description (``trace_name``) and
    the observed row count.  ``run_partition`` timings stay in the
    span only (partition tasks may run on pool threads or in forked
    children, where mutating the shared operator would race or be
    lost); driver-side methods also accumulate ``elapsed_seconds`` on
    the operator for EXPLAIN's ``time=`` column.
    """
    is_partition = method.__name__ == "run_partition"

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        parent = obs_trace.current_span()
        if parent is None:
            return method(self, *args, **kwargs)
        # The op tag rides on the span from creation (trace_name is
        # constructor state) so the sampling profiler can attribute
        # samples to the serial-equivalent operator label live, while
        # the operator is still running.
        node = parent.child(type(self).name, op=self.trace_name())
        with node:
            out = method(self, *args, **kwargs)
        if is_partition:
            if isinstance(out, list):
                node.tag(rows=len(out))
        else:
            if self.rows_out is not None:
                node.tag(rows=self.rows_out)
            self.elapsed_seconds = ((self.elapsed_seconds or 0.0)
                                    + (node.elapsed_seconds or 0.0))
        return out

    wrapper._obs_traced = True
    return wrapper


class PhysicalOp:
    """Base class: explain metadata plus per-operator statistics."""

    name = "op"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # Every operator subclass gets its entry points span-wrapped
        # exactly once, so no call site needs tracing code.
        for attr in _TRACED_METHODS:
            fn = cls.__dict__.get(attr)
            if fn is not None and callable(fn) \
                    and not getattr(fn, "_obs_traced", False):
                setattr(cls, attr, _traced(fn))

    def __init__(self):
        self.rows_out: Optional[int] = None
        #: number of column batches this operator emitted (vectorized
        #: operators only; None elsewhere).  EXPLAIN ANALYZE renders it
        #: as ``batches=``.
        self.batches_out: Optional[int] = None
        #: per-partition output counts, filled by the parallel driver
        #: (None on serial operators).
        self.partition_rows: Optional[List[Optional[int]]] = None
        #: the cost-based optimizer's estimates, copied from the
        #: logical node at lowering time (None in greedy mode); the
        #: EXPLAIN printer renders them as ``est_rows=`` / ``cost=``.
        self.est_rows: Optional[float] = None
        self.est_cost: Optional[float] = None
        #: substrate degradation path taken while executing this
        #: operator (e.g. ``"processes->threads"``); None when the
        #: requested backend worked.  EXPLAIN ANALYZE renders it as
        #: ``degraded=``.
        self.degraded: Optional[str] = None
        #: classified failure kind for each degradation step (same
        #: length as the arrows in ``degraded``), rendered by EXPLAIN
        #: ANALYZE as ``degrade_kind=``.
        self.degraded_kinds: Optional[List[str]] = None
        #: wall-clock seconds spent in this operator, accumulated by
        #: the span wrapper when tracing is active; None otherwise.
        #: EXPLAIN renders it as ``time=`` when asked (``timing=True``).
        self.elapsed_seconds: Optional[float] = None
        #: the parallel substrate this operator's fan-out was
        #: *dispatched to* when it differs from the default (currently
        #: only ``"pool"``); EXPLAIN ANALYZE renders it as ``backend=``.
        #: ``degraded`` records any rungs actually fallen afterwards.
        self.backend: Optional[str] = None

    #: prepared/runtime state that never crosses the pool's process
    #: boundary: either rebuilt by the worker's own ``prepare`` (row
    #: slices, hash buckets, scan aliases) or compiled closures that
    #: cannot pickle at all.  Dropping them keeps partition jobs small
    #: — a shipped plan fragment carries structure, never data.
    _UNPICKLED_STATE = ("_slices", "_vec_filter", "_vec_size", "_alias",
                        "_buckets", "_probe_expr", "_build_alias",
                        "_rows", "_vec")

    def __getstate__(self):
        state = self.__dict__.copy()
        for attr in self._UNPICKLED_STATE:
            state.pop(attr, None)
        return state

    @property
    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def describe(self) -> str:
        return self.name

    def trace_name(self) -> str:
        """The operator description used as the span's ``op`` tag.

        Partition-parallel operators override this with their serial
        operator's description, so a stitched parallel trace carries
        the same operator set as the serial trace (the partitioning is
        visible in the span *names* and the ``partition`` nodes, not
        in the operator identity).
        """
        return self.describe()


# -- scans -------------------------------------------------------------------


class ScanOp(PhysicalOp):
    """Base scan: produces a filtered :class:`_ScannedSource`."""

    def __init__(self, alias: str, predicates: Tuple[S.Expr, ...]):
        super().__init__()
        self.alias = alias
        self.predicates = predicates

    def scanned(self, ctx: _Ctx) -> _ScannedSource:
        source = self._rows(ctx)
        if self.predicates:
            executor = ctx.executor
            filtered = []
            for rowid, record in source.rows:
                env = {self.alias: (rowid, record)}
                if all(_truthy(executor._eval(p, env, ctx.params, ctx.stats))
                       for p in self.predicates):
                    filtered.append((rowid, record))
            source = _ScannedSource(alias=source.alias,
                                    columns=source.columns,
                                    rows=filtered, table=source.table)
        self.rows_out = len(source.rows)
        ctx.scanned.append(source)
        return source

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        raise NotImplementedError


class FullScanOp(ScanOp):
    name = "FullScan"

    def __init__(self, table: str, alias: str,
                 predicates: Tuple[S.Expr, ...]):
        super().__init__(alias, predicates)
        self.table = table

    def describe(self) -> str:
        body = "%s(%s AS %s)" % (self.name, self.table, self.alias)
        if self.predicates:
            body += " filter=%d" % len(self.predicates)
        return body

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        table = ctx.executor.catalog.table(self.table)
        candidate = list(enumerate(table.rows))
        ctx.stats.rows_scanned += len(candidate)
        ctx.stats.full_scans += 1
        table.rows_scanned += len(candidate)
        return _ScannedSource(alias=self.alias, columns=table.columns,
                              rows=candidate, table=table)


class IndexScanOp(ScanOp):
    name = "IndexScan"

    def __init__(self, table: str, alias: str, column: str,
                 value_expr: S.Expr, predicates: Tuple[S.Expr, ...]):
        super().__init__(alias, predicates)
        self.table = table
        self.column = column
        self.value_expr = value_expr

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        body = "%s(%s AS %s, %s = %s)" % (
            self.name, self.table, self.alias, self.column,
            expr_sql(self.value_expr))
        if self.predicates:
            body += " filter=%d" % len(self.predicates)
        return body

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        table = ctx.executor.catalog.table(self.table)
        if isinstance(self.value_expr, S.Literal):
            value = self.value_expr.value
        else:
            value = ctx.params.get(self.value_expr.name)
        index = table.indexes[self.column]
        positions = index.lookup(value)
        ctx.stats.index_probes += 1
        ctx.stats.index_scans += 1
        candidate = [(pos, table.rows[pos]) for pos in positions]
        ctx.stats.rows_scanned += len(candidate)
        return _ScannedSource(alias=self.alias, columns=table.columns,
                              rows=candidate, table=table)


class SubqueryScanOp(ScanOp):
    name = "SubqueryScan"

    def __init__(self, query: S.Select, alias: str,
                 predicates: Tuple[S.Expr, ...]):
        super().__init__(alias, predicates)
        self.query = query

    def describe(self) -> str:
        body = "%s(AS %s)" % (self.name, self.alias)
        if self.predicates:
            body += " filter=%d" % len(self.predicates)
        return body

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        sub = ctx.executor.execute(self.query, ctx.params, ctx.stats)
        candidate = [(idx, row) for idx, row in enumerate(sub.rows)]
        ctx.stats.rows_scanned += len(candidate)
        ctx.stats.full_scans += 1
        return _ScannedSource(alias=self.alias, columns=sub.columns,
                              rows=candidate, table=None)


# -- env producers (joins) ----------------------------------------------------


class EnvOp(PhysicalOp):
    """Base class for operators producing joined-row environments."""

    def envs(self, ctx: _Ctx) -> List[Env]:
        raise NotImplementedError


class ScanEnvsOp(EnvOp):
    """Adapts the leftmost scan into single-alias environments.

    Transparent in EXPLAIN output: it renders as the scan itself.
    """

    name = "Rows"

    def __init__(self, scan: ScanOp):
        super().__init__()
        self.scan = scan

    def describe(self) -> str:
        return self.scan.describe()

    def envs(self, ctx: _Ctx) -> List[Env]:
        source = self.scan.scanned(ctx)
        out = [{source.alias: row} for row in source.rows]
        self.rows_out = len(out)
        return out


class HashJoinOp(EnvOp):
    """Build a hash table on the new source, probe with the prefix."""

    name = "HashJoin"

    def __init__(self, left: EnvOp, right: ScanOp, predicate: S.BinOp):
        super().__init__()
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, expr_sql(self.predicate))

    def envs(self, ctx: _Ctx) -> List[Env]:
        prefix = self.left.envs(ctx)
        source = self.right.scanned(ctx)
        out = ctx.executor._hash_join(prefix, source, self.predicate,
                                      ctx.params, ctx.stats)
        self.rows_out = len(out)
        return out


class NestedLoopJoinOp(EnvOp):
    """Cross product with the new source (no connecting predicate)."""

    name = "NestedLoop"

    def __init__(self, left: EnvOp, right: ScanOp):
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def envs(self, ctx: _Ctx) -> List[Env]:
        prefix = self.left.envs(ctx)
        source = self.right.scanned(ctx)
        ctx.stats.nested_loop_joins += 1
        out = [dict(env, **{source.alias: row})
               for env in prefix for row in source.rows]
        self.rows_out = len(out)
        return out


class FilterOp(EnvOp):
    """Residual predicates over joined environments."""

    name = "Filter"

    def __init__(self, child: EnvOp, predicates: Tuple[S.Expr, ...]):
        super().__init__()
        self.child = child
        self.predicates = predicates

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, " AND ".join(
            expr_sql(p) for p in self.predicates))

    def envs(self, ctx: _Ctx) -> List[Env]:
        executor = ctx.executor
        out = self.child.envs(ctx)
        for pred in self.predicates:
            out = [env for env in out
                   if _truthy(executor._eval(pred, env, ctx.params,
                                             ctx.stats))]
        self.rows_out = len(out)
        return out


class RestoreOp(EnvOp):
    """Re-sort environments into the pinned FROM-order enumeration.

    The cost-based optimizer may run the join chain in a cheaper
    order; the environment *set* is unchanged but its enumeration is
    leftmost-major in the chosen order.  Sorting by the rowid tuple
    taken in FROM order reproduces the seed pipeline's storage-order
    enumeration exactly (each env's rowid tuple is unique, so the sort
    is a pure permutation).  The scanned-source registry is reordered
    the same way, so ``*`` expansion and bare-column resolution above
    also see FROM order.
    """

    name = "Restore"

    def __init__(self, child: EnvOp, aliases: Tuple[str, ...]):
        super().__init__()
        self.child = child
        self.aliases = aliases

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(self.aliases))

    def envs(self, ctx: _Ctx) -> List[Env]:
        out = self.child.envs(ctx)
        aliases = self.aliases
        out.sort(key=lambda env: tuple(env[a][0] for a in aliases))
        position = {alias: i for i, alias in enumerate(aliases)}
        ctx.scanned.sort(
            key=lambda src: position.get(src.alias, len(position)))
        self.rows_out = len(out)
        return out


class SortOp(EnvOp):
    """ORDER BY over environments; heap top-k when a bound is known."""

    name = "Sort"

    def __init__(self, child: EnvOp, order_by: Tuple[S.OrderItem, ...],
                 top_k: Optional[int] = None):
        super().__init__()
        self.child = child
        self.order_by = order_by
        self.top_k = top_k

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            ("%s.%s" % (o.column.alias, o.column.column)
             if o.column.alias else o.column.column)
            + (" DESC" if o.descending else "")
            for o in self.order_by)
        if self.top_k is not None:
            return "TopK(%d, %s)" % (self.top_k, keys)
        return "%s(%s)" % (self.name, keys)

    def envs(self, ctx: _Ctx) -> List[Env]:
        executor = ctx.executor
        incoming = self.child.envs(ctx)
        if self.top_k is not None:
            out = executor._top_k(self.order_by, incoming, ctx.scanned,
                                  self.top_k)
        else:
            out = executor._order(self.order_by, incoming, ctx.scanned)
        self.rows_out = len(out)
        return out


# -- row producers -------------------------------------------------------------


class RowOp(PhysicalOp):
    """Base class for operators producing projected output rows."""

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        raise NotImplementedError


class ProjectOp(RowOp):
    name = "Project"

    def __init__(self, child: EnvOp, items: Tuple[S.SelectItem, ...]):
        super().__init__()
        self.child = child
        self.items = items

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import _item

        return "%s(%s)" % (self.name,
                           ", ".join(_item(i) for i in self.items))

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        envs = self.child.envs(ctx)
        rows, columns = ctx.executor._project(self.items, envs, ctx.scanned,
                                              ctx.params, ctx.stats)
        self.rows_out = len(rows)
        return rows, columns


class AggregateOp(RowOp):
    """Aggregate / GROUP BY / HAVING evaluation.

    Without group keys this is the executor's whole-input aggregation
    (one output row).  With keys, environments are bucketed by their
    evaluated key tuple; groups are emitted in **first-encounter
    order**, the engine's deterministic analogue of the ordered-relation
    semantics (the join chain enumerates environments left-major, so
    groups keyed on the leftmost source come out in its storage order).
    Non-aggregate select items are evaluated against the group's first
    environment (group keys are constant within a group).
    """

    name = "Aggregate"

    def __init__(self, child: EnvOp, items: Tuple[S.SelectItem, ...],
                 group_by: Tuple[S.Expr, ...],
                 having: Optional[S.Expr]):
        super().__init__()
        self.child = child
        self.items = items
        self.group_by = group_by
        self.having = having
        self.groups_in = None

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        if not self.group_by:
            return "Aggregate(whole input)"
        body = "GroupBy(%s)" % ", ".join(expr_sql(e)
                                         for e in self.group_by)
        if self.having is not None:
            body += " having %s" % expr_sql(self.having)
        return body

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        envs = self.child.envs(ctx)
        if not self.group_by:
            result = ctx.executor._aggregate_result(
                S.Select(items=self.items, sources=()), envs, ctx.params,
                ctx.stats)
            self.rows_out = len(result.rows)
            return result.rows, result.columns

        executor = ctx.executor
        buckets: Dict[Tuple, List[Env]] = {}
        order: List[Tuple] = []
        for env in envs:
            key = tuple(executor._eval(e, env, ctx.params, ctx.stats)
                        for e in self.group_by)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
                order.append(key)
            bucket.append(env)
        self.groups_in = len(order)

        columns: List[str] = []
        for item in self.items:
            if isinstance(item.expr, S.Star):
                raise SQLExecutionError(
                    "* cannot appear in a grouped select list")
            name = item.as_name or _default_name(item.expr)
            columns.append(executor._fresh_name(name, columns))

        rows: List[Record] = []
        for key in order:
            group = buckets[key]
            if self.having is not None and not _truthy(
                    self._group_value(self.having, group, ctx)):
                continue
            values = [self._group_value(item.expr, group, ctx)
                      for item in self.items]
            rows.append(Record(dict(zip(columns, values))))
        self.rows_out = len(rows)
        return rows, tuple(columns)

    def _group_value(self, expr: S.Expr, group: List[Env], ctx: _Ctx) -> Any:
        """Evaluate a select/HAVING expression over one group.

        Aggregate calls see the whole group; non-aggregate subtrees are
        evaluated on the group's first environment.
        """
        executor = ctx.executor
        if isinstance(expr, S.FuncCall):
            return executor._eval_aggregate(expr, group, ctx.params,
                                            ctx.stats)
        if isinstance(expr, S.BinOp):
            if expr.op == "AND":
                return (_truthy(self._group_value(expr.left, group, ctx))
                        and _truthy(self._group_value(expr.right, group,
                                                      ctx)))
            if expr.op == "OR":
                return (_truthy(self._group_value(expr.left, group, ctx))
                        or _truthy(self._group_value(expr.right, group,
                                                     ctx)))
            return _apply_op(expr.op,
                             self._group_value(expr.left, group, ctx),
                             self._group_value(expr.right, group, ctx))
        if isinstance(expr, S.NotOp):
            return not _truthy(self._group_value(expr.expr, group, ctx))
        return executor._eval(expr, group[0], ctx.params, ctx.stats)


class RowSortOp(RowOp):
    """ORDER BY over already-projected rows (grouped queries)."""

    name = "RowSort"

    def __init__(self, child: RowOp, order_by: Tuple[S.OrderItem, ...]):
        super().__init__()
        self.child = child
        self.order_by = order_by

    @property
    def children(self):
        return (self.child,)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        from repro.sql.executor import _ReverseAware

        rows, columns = self.child.rows(ctx)

        def key(row: Record):
            parts = []
            for item in self.order_by:
                name = item.column.column
                if name not in row.fields:
                    raise SQLExecutionError(
                        "ORDER BY on a grouped query must name an output "
                        "column (no column %r)" % name)
                parts.append(_ReverseAware(row[name], item.descending))
            return tuple(parts)

        rows = sorted(rows, key=key)
        self.rows_out = len(rows)
        return rows, columns


class DistinctOp(RowOp):
    name = "Distinct"

    def __init__(self, child: RowOp):
        super().__init__()
        self.child = child

    @property
    def children(self):
        return (self.child,)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        rows, columns = self.child.rows(ctx)
        seen = set()
        deduped = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        self.rows_out = len(deduped)
        return deduped, columns


class LimitOp(RowOp):
    name = "Limit"

    def __init__(self, child: RowOp, count: int):
        super().__init__()
        self.child = child
        self.count = count

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "%s(%d)" % (self.name, self.count)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        rows, columns = self.child.rows(ctx)
        rows = rows[: self.count]
        self.rows_out = len(rows)
        return rows, columns


# -- partition-parallel execution ---------------------------------------------


class _PartCtx:
    """Per-partition execution state: private stats, private counters.

    Each partition task owns one of these so nothing is mutated
    concurrently; the driver merges ``stats`` back into the query's
    :class:`ExecutionStats` in partition-index order and copies
    ``recorded`` per-operator counts into ``partition_rows``.  Both
    survive a process boundary (the payload is plain data), which is
    what lets the fork backend report honest per-partition statistics.
    """

    __slots__ = ("executor", "params", "stats", "recorded")

    def __init__(self, executor, params):
        self.executor = executor
        self.params = params
        self.stats = ExecutionStats()
        self.recorded: Dict[int, int] = {}

    def record(self, op: "PartitionedOp", count: int) -> None:
        self.recorded[op._ordinal] = count


class PartitionedOp(PhysicalOp):
    """Base for operators that run once per partition.

    ``prepare`` does the serial, shared work exactly once (scanning,
    stats counting, hash-table builds) and returns the partition count;
    ``run_partition`` produces one partition's environments using only
    partition-local state.  The driver guarantees partitions merge in
    partition-index order, so concatenated output equals the serial
    operator's output row for row.
    """

    def __init__(self):
        super().__init__()
        self._ordinal = 0

    def prepare(self, ctx: _Ctx) -> int:
        raise NotImplementedError

    def run_partition(self, part: int, pctx: _PartCtx) -> List[Env]:
        raise NotImplementedError


class PartitionedScanOp(PartitionedOp):
    """A scan split into contiguous range partitions.

    The underlying rows are produced (and counted in the engine stats)
    exactly once, then divided into ``partitions`` contiguous slices of
    near-equal size; pushed-down predicates are evaluated per
    partition.  Range partitioning preserves storage order within and
    across partitions — the foundation of the merge-order invariant.
    """

    name = "PartitionedScan"

    def __init__(self, scan: ScanOp, partitions: int):
        super().__init__()
        self.scan = scan
        self.partitions = partitions

    def describe(self) -> str:
        return "%s(%s, partitions=%d)" % (self.name, self.scan.describe(),
                                          self.partitions)

    def trace_name(self) -> str:
        return self.scan.describe()

    def prepare(self, ctx: _Ctx) -> int:
        source = self.scan._rows(ctx)   # scan-level stats count once here
        self._alias = source.alias
        self._slices = _split_ranges(source.rows, self.partitions)
        # Under ExecutorOptions(vectorized=True) the per-partition
        # predicate filter runs batch-at-a-time when the compiler
        # covers the predicates.  Pushed-down predicates are pure
        # comparisons, so the compiled filter keeps the exact rows and
        # touches no statistics — partition output is unchanged.
        self._vec_filter = None
        options = ctx.executor.options
        if (getattr(options, "vectorized", False) and self.scan.predicates
                and all(vectorizable(p) for p in self.scan.predicates)):
            self._vec_filter = compile_filter(self.scan.predicates)
            self._vec_size = options.batch_size
        # Register the source for downstream column resolution (ORDER
        # BY / projection); consumers only read alias and columns, so
        # the filtered row payload stays partition-private.
        ctx.scanned.append(_ScannedSource(alias=source.alias,
                                          columns=source.columns,
                                          rows=[], table=source.table))
        return self.partitions

    def run_partition(self, part: int, pctx: _PartCtx) -> List[Env]:
        rows = self._slices[part]
        if self._vec_filter is not None:
            size = self._vec_size
            filtered = []
            for start in range(0, len(rows), size):
                batch = Batch.from_pairs(self._alias,
                                         rows[start:start + size])
                batch = self._vec_filter(batch, pctx.params)
                if batch.n:
                    filtered.extend(batch.pairs[self._alias])
            rows = filtered
        elif self.scan.predicates:
            executor = pctx.executor
            filtered = []
            for rowid, record in rows:
                env = {self._alias: (rowid, record)}
                if all(_truthy(executor._eval(p, env, pctx.params,
                                              pctx.stats))
                       for p in self.scan.predicates):
                    filtered.append((rowid, record))
            rows = filtered
        pctx.record(self, len(rows))
        return [{self._alias: row} for row in rows]


class PartitionedHashJoinOp(PartitionedOp):
    """Hash join with a shared build table and per-partition probes.

    The build side (the new source) is scanned, filtered and bucketed
    once in ``prepare``; each partition probes with its own slice of
    the prefix.  Probe output is probe-major, so contiguous probe
    partitions concatenate into exactly the serial join result.
    """

    name = "PartitionedHashJoin"

    def __init__(self, left: PartitionedOp, right: ScanOp,
                 predicate: S.BinOp):
        super().__init__()
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, expr_sql(self.predicate))

    def trace_name(self) -> str:
        from repro.sql.pretty import expr_sql

        return "HashJoin(%s)" % expr_sql(self.predicate)

    def prepare(self, ctx: _Ctx) -> int:
        partitions = self.left.prepare(ctx)
        source = self.right.scanned(ctx)
        ctx.stats.hash_joins += 1
        self._buckets, self._probe_expr = _hash_build(source,
                                                      self.predicate)
        self._build_alias = source.alias
        return partitions

    def run_partition(self, part: int, pctx: _PartCtx) -> List[Env]:
        envs = self.left.run_partition(part, pctx)
        out = _hash_probe(pctx.executor, envs, self._buckets,
                          self._probe_expr, self._build_alias,
                          pctx.params, pctx.stats)
        pctx.record(self, len(out))
        return out


class PartitionedNestedLoopOp(PartitionedOp):
    """Cross product of each prefix partition with the shared source."""

    name = "PartitionedNestedLoop"

    def __init__(self, left: PartitionedOp, right: ScanOp):
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def trace_name(self) -> str:
        return "NestedLoop"

    def prepare(self, ctx: _Ctx) -> int:
        partitions = self.left.prepare(ctx)
        source = self.right.scanned(ctx)
        ctx.stats.nested_loop_joins += 1
        self._rows = source.rows
        self._alias = source.alias
        return partitions

    def run_partition(self, part: int, pctx: _PartCtx) -> List[Env]:
        envs = self.left.run_partition(part, pctx)
        out = [dict(env, **{self._alias: row})
               for env in envs for row in self._rows]
        pctx.record(self, len(out))
        return out


class PartitionedFilterOp(PartitionedOp):
    """Residual predicates evaluated inside each partition."""

    name = "PartitionedFilter"

    def __init__(self, child: PartitionedOp,
                 predicates: Tuple[S.Expr, ...]):
        super().__init__()
        self.child = child
        self.predicates = predicates

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, " AND ".join(
            expr_sql(p) for p in self.predicates))

    def trace_name(self) -> str:
        from repro.sql.pretty import expr_sql

        return "Filter(%s)" % " AND ".join(
            expr_sql(p) for p in self.predicates)

    def prepare(self, ctx: _Ctx) -> int:
        return self.child.prepare(ctx)

    def run_partition(self, part: int, pctx: _PartCtx) -> List[Env]:
        executor = pctx.executor
        out = self.child.run_partition(part, pctx)
        for pred in self.predicates:
            out = [env for env in out
                   if _truthy(executor._eval(pred, env, pctx.params,
                                             pctx.stats))]
        pctx.record(self, len(out))
        return out


def _split_ranges(rows: List, partitions: int) -> List[List]:
    """Contiguous range partitions of near-equal size (sizes differ by
    at most one; earlier partitions take the remainder)."""
    n = len(rows)
    base, extra = divmod(n, partitions)
    slices = []
    start = 0
    for part in range(partitions):
        size = base + (1 if part < extra else 0)
        slices.append(rows[start:start + size])
        start += size
    return slices


def _chain_ops(op: PartitionedOp) -> List[PartitionedOp]:
    """The partitioned operators of a chain, leaf-last."""
    out = [op]
    for child in op.children:
        if isinstance(child, PartitionedOp):
            out.extend(_chain_ops(child))
    return out


def _split_estimates(est_rows: Optional[float],
                     partitions: int) -> List[int]:
    """The cost model's row estimate divided over the partitions by the
    same remainder rule as :func:`_split_ranges` (earlier partitions
    take one extra), so the pool's longest-estimate-first dispatch
    order mirrors the actual contiguous-slice sizes.  Estimates steer
    dispatch order only — results merge in partition-index order."""
    total = int(est_rows) if est_rows and est_rows > 0 else 0
    base, extra = divmod(total, partitions)
    return [base + (1 if part < extra else 0)
            for part in range(partitions)]


class _PoolPartitionJob:
    """One partition of a partitioned chain, in shippable form.

    Carries the unprepared operator chain (runtime state is stripped by
    :meth:`PhysicalOp.__getstate__`), the gather mode, the executor
    options and a ``digest_map`` naming every catalog table by content
    digest — the pool ships table content separately and caches it per
    worker, so a warm pool receives only this job.  The worker rebuilds
    a catalog from its cache, re-prepares the chain against the exact
    same content (identical slices, buckets and statistics by
    construction) and returns the standard partition payload
    ``(result, stats, recorded, span_dict)`` — the same 4-tuple the
    thread and fork backends produce, so the driver merge is shared.
    """

    __slots__ = ("mode", "root", "part", "params", "options", "traced",
                 "order_by", "top_k", "digest_map", "est")

    def __init__(self, mode: str, root: PhysicalOp, part: int, params,
                 options, traced: bool, order_by, top_k,
                 digest_map: Dict[str, str], est: int):
        self.mode = mode                  # "gather" | "merge" | "partial"
        self.root = root
        self.part = part
        self.params = params
        self.options = options
        self.traced = traced
        self.order_by = order_by
        self.top_k = top_k
        self.digest_map = digest_map      # table name -> content digest
        self.est = est

    def run_in_worker(self, cache: Dict[str, Any]):
        """Execute this partition inside a pool worker against the
        worker's digest-keyed table ``cache``."""
        from repro.service import faults
        from repro.sql.catalog import Catalog
        from repro.sql.executor import Executor

        missing = sorted(name for name, digest in self.digest_map.items()
                         if digest not in cache)
        if missing:
            # A store frame was lost or mis-decoded.  Classified as
            # corruption: the pool retries, and a respawned worker's
            # empty cache forces a clean re-ship.
            raise faults.CorruptPayload(
                "pool worker cache is missing tables: %s"
                % ", ".join(missing))
        catalog = Catalog()
        catalog.tables = {name: cache[digest]
                          for name, digest in self.digest_map.items()}
        # The worker executes with *serialized* options: partitioning
        # is already baked into the shipped op tree, and anything the
        # fragment re-plans from scratch (FROM-subqueries during
        # prepare, per-row IN subqueries) must run serial — spawning a
        # substrate from inside a daemonic pool worker is forbidden.
        options = dataclasses.replace(self.options, parallel=1,
                                      parallel_backend="threads")
        executor = Executor(catalog, options)
        ctx = _Ctx(executor=executor, params=self.params,
                   stats=ExecutionStats())
        root = self.root
        chain = root.child if self.mode == "partial" else root
        # Worker-side prepare recounts the shared scan/build statistics
        # into a throwaway ExecutionStats — the driver already prepared
        # (and counted) once; only the per-partition pctx.stats ship
        # home, exactly as on the thread and fork backends.
        chain.prepare(ctx)
        if self.mode == "partial":
            root._setup_vec(ctx)
        pctx = _PartCtx(executor, self.params)
        if self.traced:
            pspan = obs_trace.Span("partition", part=self.part)
            pspan.detached = True
            with pspan:
                payload = self._execute(chain, root, ctx, pctx, executor)
            pspan.tag(backend="pool")
            return payload, pctx.stats, pctx.recorded, pspan.to_dict()
        return (self._execute(chain, root, ctx, pctx, executor),
                pctx.stats, pctx.recorded, None)

    def _execute(self, chain: PartitionedOp, root: PhysicalOp, ctx: _Ctx,
                 pctx: _PartCtx, executor):
        if self.mode == "partial":
            worker = root._grouped_partition if root.group_by \
                else root._whole_partition
            return worker(chain.run_partition(self.part, pctx), pctx)
        envs = chain.run_partition(self.part, pctx)
        if self.mode == "merge":
            if self.top_k is not None:
                return executor._top_k(self.order_by, envs, ctx.scanned,
                                       self.top_k)
            return executor._order(self.order_by, envs, ctx.scanned)
        return envs                       # "gather"


def _attach_pool_jobs(tasks: List[Any], chain: PartitionedOp, ctx: _Ctx,
                      pool_spec: Dict[str, Any],
                      driver_op: Optional[PhysicalOp],
                      traced: bool) -> None:
    """Give every partition task its picklable pool payload.

    The pool rung of :func:`~repro.sql.plan.parallel.run_tasks` reads
    ``task.pool_job`` / ``task.pool_tables``; the task closures stay
    callable unchanged, which is what the degradation ladder runs when
    the pool rung fails."""
    executor = ctx.executor
    catalog = executor.catalog
    digest_map = {name: table.content_digest()
                  for name, table in catalog.tables.items()}
    pool_tables = {digest: catalog.tables[name]
                   for name, digest in digest_map.items()}
    ests = _split_estimates(getattr(chain, "est_rows", None), len(tasks))
    mode = pool_spec["mode"]
    root = driver_op if mode == "partial" else chain
    for part, task in enumerate(tasks):
        task.pool_job = _PoolPartitionJob(
            mode=mode, root=root, part=part, params=ctx.params,
            options=executor.options, traced=traced,
            order_by=pool_spec.get("order_by"),
            top_k=pool_spec.get("top_k"),
            digest_map=digest_map, est=ests[part])
        task.pool_tables = pool_tables


def _run_partitioned(chain: PartitionedOp, ctx: _Ctx, backend: str,
                     worker, driver_op: Optional[PhysicalOp] = None,
                     owner: Optional[PhysicalOp] = None,
                     pool_spec: Optional[Dict[str, Any]] = None) \
        -> List[Any]:
    """Drive a partitioned chain: prepare serially, fan partitions out.

    ``worker(part, pctx)`` runs per partition on the configured backend
    and its (picklable, for the process backend) results come back in
    partition-index order.  Partition stats merge into the query stats
    in that same order, and each chain operator's ``partition_rows`` /
    ``rows_out`` are filled from the per-partition counters.
    ``driver_op`` (e.g. the partial-aggregation operator whose workers
    also record counts) joins the same ordinal space.

    Substrate faults never fail the query: :func:`run_tasks` degrades
    processes → threads → serial, and each task builds a fresh
    :class:`_PartCtx`, so a degraded rerun merges exactly one run's
    statistics and stays stats-identical to serial.  The path taken is
    recorded on the gathering operator (``degraded``, surfaced by
    EXPLAIN ANALYZE) and counted in ``ctx.stats.degradations``.
    """
    count = chain.prepare(ctx)
    ops = _chain_ops(chain)
    if driver_op is not None:
        ops.append(driver_op)
    for ordinal, op in enumerate(ops):
        op._ordinal = ordinal
        op.partition_rows = [None] * count

    executor, params = ctx.executor, ctx.params
    # Cross-process stitching: when a trace is active, every partition
    # task builds a *detached* root span locally (a fresh one per
    # attempt, so a degraded rerun never double-counts) and ships its
    # ``to_dict`` payload home beside the stats — the same transport
    # partition statistics already ride, picklable for the fork
    # backend.  The driver re-parents them below in partition-index
    # order, so the stitched tree's child order is deterministic
    # regardless of completion order.
    parent_span = obs_trace.current_span()
    traced = parent_span is not None

    def make_task(part: int):
        def task():
            pctx = _PartCtx(executor, params)
            if traced:
                pspan = obs_trace.Span("partition", part=part)
                # Worker-local by construction: it exits with no
                # ambient parent and is stitched into the driver's
                # tree afterwards — not a root for the recent ring.
                pspan.detached = True
                with pspan:
                    payload = worker(part, pctx)
                pspan.tag(backend=backend)
                return payload, pctx.stats, pctx.recorded, pspan.to_dict()
            return worker(part, pctx), pctx.stats, pctx.recorded, None
        return task

    if owner is None:
        owner = driver_op if driver_op is not None else chain
    rungs: List[str] = []
    kinds: List[str] = []

    def on_degrade(from_rung: str, to_rung: str, fault: Exception) -> None:
        ctx.stats.degradations += 1
        kind = classify_exception(fault)
        if not rungs:
            rungs.append(from_rung)
        rungs.append(to_rung)
        kinds.append(kind)
        owner.degraded = "->".join(rungs)
        owner.degraded_kinds = list(kinds)
        _DEGRADATIONS.inc(**{"from": from_rung, "to": to_rung,
                             "kind": kind})

    tasks = [make_task(part) for part in range(count)]
    if backend == "pool" and pool_spec is not None:
        _attach_pool_jobs(tasks, chain, ctx, pool_spec, driver_op, traced)
        owner.backend = "pool"
    results = run_tasks(tasks, backend=backend, deadline=ctx.deadline,
                        on_degrade=on_degrade)
    payloads = []
    for part, (payload, pstats, recorded, span_dict) in enumerate(results):
        merge_stats(ctx.stats, pstats)
        for ordinal, rows in recorded.items():
            ops[ordinal].partition_rows[part] = rows
        if span_dict is not None and parent_span is not None:
            parent_span.adopt(span_dict)
        payloads.append(payload)
    for op in ops:
        op.rows_out = sum(rows for rows in op.partition_rows
                          if rows is not None)
    return payloads


class GatherOp(EnvOp):
    """Merge a partitioned chain back into one env stream.

    Partitions are concatenated in partition-index order — the serial
    row order — so every operator above a Gather is oblivious to the
    parallelism below it.
    """

    name = "Gather"

    def __init__(self, child: PartitionedOp, partitions: int):
        super().__init__()
        self.child = child
        self.partitions = partitions

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "%s(partitions=%d)" % (self.name, self.partitions)

    def envs(self, ctx: _Ctx) -> List[Env]:
        child = self.child
        # Threads by default: a Gather's per-partition result is a full
        # row set, which threads hand over by reference; fork-per-query
        # would pickle every joined row back through a pipe (the fork
        # backend is reserved for PartialAggregateOp, whose partition
        # results are scalars).  The persistent pool is the exception:
        # its workers cache table content across queries, so only the
        # per-partition result rows cross the pipe — it runs Gathers.
        backend = "pool" \
            if ctx.executor.options.parallel_backend == "pool" \
            else "threads"
        parts = _run_partitioned(
            child, ctx, backend,
            lambda part, pctx: child.run_partition(part, pctx),
            owner=self, pool_spec={"mode": "gather"})
        out = [env for part in parts for env in part]
        self.rows_out = len(out)
        return out


class GatherMergeOp(EnvOp):
    """Partition-parallel ORDER BY: per-partition sorts + k-way merge.

    Each partition sorts (or heap-selects top-k from) its own
    environment slice on the substrate; the driver merges the sorted
    runs with the enumerator's heap merge
    (:func:`repro.core.enumerate.merge_sorted_runs`), whose ties
    resolve to the earlier partition — which is the earlier input
    position, so the merged sequence equals the serial stable sort of
    the concatenated input *exactly* (and, with ``top_k``, its first k
    rows: any row of the global top k is within its own partition's
    top k, so per-partition truncation loses nothing).
    """

    name = "GatherMerge"

    def __init__(self, child: PartitionedOp, partitions: int,
                 order_by: Tuple[S.OrderItem, ...],
                 top_k: Optional[int] = None):
        super().__init__()
        self.child = child
        self.partitions = partitions
        self.order_by = order_by
        self.top_k = top_k

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            ("%s.%s" % (o.column.alias, o.column.column)
             if o.column.alias else o.column.column)
            + (" DESC" if o.descending else "")
            for o in self.order_by)
        body = "%s(partitions=%d, %s)" % (self.name, self.partitions,
                                          keys)
        if self.top_k is not None:
            body += " top_k=%d" % self.top_k
        return body

    def envs(self, ctx: _Ctx) -> List[Env]:
        from repro.core.enumerate import merge_sorted_runs
        from repro.sql.executor import _ReverseAware

        child = self.child
        executor = ctx.executor
        order_by, top_k = self.order_by, self.top_k
        scanned = ctx.scanned     # populated by prepare, before workers

        def worker(part: int, pctx: _PartCtx) -> List[Env]:
            envs = child.run_partition(part, pctx)
            if top_k is not None:
                return executor._top_k(order_by, envs, scanned, top_k)
            return executor._order(order_by, envs, scanned)

        # Threads by default, like GatherOp — and the pool for the same
        # reason Gather runs there: cached tables make the per-run
        # traffic just the sorted partition runs.
        backend = "pool" \
            if ctx.executor.options.parallel_backend == "pool" \
            else "threads"
        parts = _run_partitioned(child, ctx, backend, worker,
                                 owner=self,
                                 pool_spec={"mode": "merge",
                                            "order_by": order_by,
                                            "top_k": top_k})

        def key(env: Env):
            return tuple(
                _ReverseAware(
                    executor._order_value(item.column, env, scanned),
                    item.descending)
                for item in order_by)

        out = list(merge_sorted_runs(parts, key=key))
        if top_k is not None:
            out = out[:top_k]
        self.rows_out = len(out)
        return out


#: Aggregates with an exact, order-insensitive combine step.  AVG
#: qualifies via ``(exact total, count)`` partials: finite floats
#: accumulate as exact fractions (:func:`repro.sql.executor._avg_state`),
#: so combining partition states in any order yields the same
#: exactly-rounded mean as the serial evaluation — the float-bitwise
#: identity the engine's contract demands.
_COMBINABLE_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")


def combinable_aggregate(items: Tuple[S.SelectItem, ...],
                         group_by: Tuple[S.Expr, ...],
                         having: Optional[S.Expr]) -> bool:
    """Whether this aggregation can run as partials + a combine step.

    Conservative by design — anything not provably identical to the
    serial evaluation (AND/OR short-circuits, subqueries whose
    statistics would be double-counted across partitions) falls back
    to :class:`GatherOp` + :class:`AggregateOp`, which is always
    correct.
    """
    grouped = bool(group_by)
    # With HAVING, the serial path never evaluates select-list
    # aggregates for filtered-out groups; partials evaluate them for
    # every group, so their arguments must be statistics-free.
    pure_args = grouped and having is not None
    trees = [item.expr for item in items]
    if having is not None:
        trees.append(having)
    return all(not isinstance(tree, S.Star)
               and _combinable_expr(tree, grouped, pure_args)
               for tree in trees)


def _combinable_expr(expr: S.Expr, grouped: bool,
                     pure_args: bool) -> bool:
    if isinstance(expr, S.FuncCall):
        if expr.name not in _COMBINABLE_AGGREGATES:
            return False
        if expr.arg is not None and pure_args \
                and not _pure_scalar(expr.arg):
            return False
        return True
    if isinstance(expr, S.BinOp):
        if expr.op in ("AND", "OR"):
            return False            # short-circuit evaluation parity
        return (_combinable_expr(expr.left, grouped, pure_args)
                and _combinable_expr(expr.right, grouped, pure_args))
    if isinstance(expr, (S.Literal, S.Param)):
        return True
    if grouped:
        # Non-aggregate subtree: evaluated on the group's first
        # environment, potentially once per partition — must not touch
        # engine statistics.
        return _pure_scalar(expr)
    return False


def _pure_scalar(expr: S.Expr) -> bool:
    """No aggregates, no subqueries: evaluation is repeatable and
    statistics-free."""
    if isinstance(expr, (S.Literal, S.Param, S.ColumnRef, S.RowRef)):
        return True
    if isinstance(expr, S.BinOp):
        return _pure_scalar(expr.left) and _pure_scalar(expr.right)
    if isinstance(expr, S.NotOp):
        return _pure_scalar(expr.expr)
    return False


def _partial_state(call: S.FuncCall, envs: List[Env], executor, params,
                   stats) -> Any:
    """One aggregate call's partial state over one partition's envs.

    For COUNT/SUM/MIN/MAX the partial state *is* the aggregate value
    over the partition, so this delegates to the executor's single
    aggregate semantics (COUNT-arg None filtering, SUM of an empty
    series = 0, MIN/MAX of an empty series = None) rather than
    re-implementing it — a semantics tweak there cannot desynchronize
    the parallel path.  AVG's state is the executor's ``(exact total,
    count)`` pair (:func:`repro.sql.executor._avg_state`), finished
    with :func:`repro.sql.executor._avg_final` after the merge.
    """
    if call.name == "AVG":
        series = [executor._eval(call.arg, env, params, stats)
                  for env in envs]
        return _avg_state(series)
    return executor._eval_aggregate(call, envs, params, stats)


def _combine_states(call: S.FuncCall, left: Any, right: Any) -> Any:
    """Fold two partial states of one aggregate call."""
    if call.name in ("COUNT", "SUM"):
        return left + right
    if call.name == "AVG":
        return _combine_avg(left, right)
    if left is None:
        return right
    if right is None:
        return left
    return max(left, right) if call.name == "MAX" else min(left, right)


def _finish_state(call: S.FuncCall, state: Any) -> Any:
    """Turn a fully-combined partial state into the aggregate value."""
    if call.name == "AVG":
        return _avg_final(state)
    return state


class PartialAggregateOp(RowOp):
    """Aggregation as per-partition partials plus an exact combine.

    Each partition computes, per group (or for the whole input), the
    partial state of every COUNT/SUM/MIN/MAX/AVG call; the driver
    merges partitions in partition-index order, which preserves the serial
    **first-encounter group order** and picks each group's first
    environment from the earliest partition that saw the group — so
    non-aggregate select items evaluate exactly as they do serially.
    Only ``combinable_aggregate`` shapes lower here; everything else
    uses :class:`GatherOp` + :class:`AggregateOp`.

    This is the operator the ``"processes"`` backend exists for: a
    partition's result is a handful of scalars, so fork fan-out pays
    for real CPU parallelism without shipping row sets between
    processes.
    """

    name = "PartialAggregate"

    def __init__(self, child: PartitionedOp, partitions: int,
                 items: Tuple[S.SelectItem, ...],
                 group_by: Tuple[S.Expr, ...],
                 having: Optional[S.Expr]):
        super().__init__()
        self.child = child
        self.partitions = partitions
        self.items = items
        self.group_by = group_by
        self.having = having
        self.groups_in = None
        self._ordinal = 0
        self._agg_calls: List[S.FuncCall] = []
        self._leaves: List[S.Expr] = []
        trees = [item.expr for item in items]
        if having is not None:
            trees.append(having)
        for tree in trees:
            _collect_partial_nodes(tree, self._agg_calls, self._leaves)
        self._agg_index = {id(call): i
                           for i, call in enumerate(self._agg_calls)}
        self._leaf_index = {id(leaf): i
                            for i, leaf in enumerate(self._leaves)}

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        if not self.group_by:
            return "PartialAggregate(whole input, partitions=%d)" \
                % self.partitions
        body = "PartialGroupBy(%s, partitions=%d)" % (
            ", ".join(expr_sql(e) for e in self.group_by),
            self.partitions)
        if self.having is not None:
            body += " having %s" % expr_sql(self.having)
        return body

    def trace_name(self) -> str:
        from repro.sql.pretty import expr_sql

        if not self.group_by:
            return "Aggregate(whole input)"
        body = "GroupBy(%s)" % ", ".join(expr_sql(e)
                                         for e in self.group_by)
        if self.having is not None:
            body += " having %s" % expr_sql(self.having)
        return body

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        self._setup_vec(ctx)
        child = self.child
        if self.group_by:
            worker = self._grouped_partition
        else:
            worker = self._whole_partition
        parts = _run_partitioned(
            child, ctx, ctx.executor.options.parallel_backend,
            lambda part, pctx: worker(child.run_partition(part, pctx),
                                      pctx),
            driver_op=self, pool_spec={"mode": "partial"})
        if self.group_by:
            return self._merge_grouped(parts, ctx)
        return self._merge_whole(parts, ctx)

    # -- per-partition workers (run on the parallel substrate) -------------

    def _setup_vec(self, ctx: _Ctx) -> None:
        """Compile per-partition argument/key closures when the query
        runs under ``ExecutorOptions(vectorized=True)``.

        Workers then fold column series instead of walking envs; the
        fold runs in row order with the same arithmetic, so partial
        states are identical.  The closures stay on this operator and
        only scalar states cross the partition boundary, so the forked
        ``"processes"`` backend (which inherits memory) still works.
        """
        self._vec = None
        options = ctx.executor.options
        if not getattr(options, "vectorized", False):
            return
        for call in self._agg_calls:
            if call.arg is not None and not vectorizable(call.arg):
                return
        if self.group_by and not all(vectorizable(e)
                                     for e in self.group_by):
            return
        self._vec = {
            "args": {id(call): (compile_scalar(call.arg)
                                if call.arg is not None else None)
                     for call in self._agg_calls},
            "keys": [compile_scalar(e) for e in self.group_by],
            "size": options.batch_size,
        }

    def _vec_series(self, compiled, envs: List[Env], params) -> List[Any]:
        if not envs:
            return []
        is_const, fn = compiled
        if is_const:
            return [fn(params)] * len(envs)
        size = self._vec["size"]
        aliases = tuple(envs[0])
        out: List[Any] = []
        for start in range(0, len(envs), size):
            batch = Batch.from_envs(envs[start:start + size], aliases)
            out.extend(fn(batch, params))
        return out

    def _vec_state(self, call: S.FuncCall, envs: List[Env],
                   params) -> Any:
        # Partial-state semantics of the combinable aggregates (see
        # _partial_state): COUNT(*) = len, COUNT(x) drops None, SUM of
        # an empty series = 0, MIN/MAX of an empty series = None, AVG
        # is the (exact total, count) pair.
        if call.arg is None:
            return len(envs)                     # COUNT(*)
        series = self._vec_series(self._vec["args"][id(call)], envs,
                                  params)
        if call.name == "COUNT":
            return sum(1 for v in series if v is not None)
        if call.name == "SUM":
            return sum(series) if series else 0
        if call.name == "AVG":
            return _avg_state(series)
        if call.name == "MAX":
            return max(series) if series else None
        return min(series) if series else None   # MIN

    def _whole_partition(self, envs: List[Env], pctx: _PartCtx):
        if self._vec is not None:
            states = tuple(self._vec_state(call, envs, pctx.params)
                           for call in self._agg_calls)
        else:
            states = tuple(_partial_state(call, envs, pctx.executor,
                                          pctx.params, pctx.stats)
                           for call in self._agg_calls)
        pctx.record(self, len(envs))
        return states

    def _grouped_partition(self, envs: List[Env], pctx: _PartCtx):
        executor, params, stats = pctx.executor, pctx.params, pctx.stats
        vec = self._vec
        if vec is not None:
            key_vecs = [self._vec_series(c, envs, params)
                        for c in vec["keys"]]
            keys = list(zip(*key_vecs)) if key_vecs else []
        else:
            keys = [tuple(executor._eval(e, env, params, stats)
                          for e in self.group_by)
                    for env in envs]
        buckets: Dict[Tuple, List[Env]] = {}
        order: List[Tuple] = []
        for env, key in zip(envs, keys):
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
                order.append(key)
            bucket.append(env)
        out = []
        for key in order:
            group = buckets[key]
            if vec is not None:
                states = tuple(self._vec_state(call, group, params)
                               for call in self._agg_calls)
            else:
                states = tuple(_partial_state(call, group, executor,
                                              params, stats)
                               for call in self._agg_calls)
            leaves = tuple(executor._eval(leaf, group[0], params, stats)
                           for leaf in self._leaves)
            out.append((key, states, leaves))
        pctx.record(self, len(out))
        return out

    # -- merge (serial, partition-index order) -----------------------------

    def _columns(self, ctx: _Ctx) -> List[str]:
        columns: List[str] = []
        for item in self.items:
            name = item.as_name or _default_name(item.expr)
            columns.append(ctx.executor._fresh_name(name, columns))
        return columns

    def _merge_whole(self, parts, ctx: _Ctx):
        combined: Dict[int, Any] = {}
        for i, call in enumerate(self._agg_calls):
            value = parts[0][i]
            for states in parts[1:]:
                value = _combine_states(call, value, states[i])
            combined[id(call)] = _finish_state(call, value)

        columns = self._columns(ctx)
        values = [self._merge_eval(item.expr, combined, {}, ctx.params)
                  for item in self.items]
        rows = [Record(dict(zip(columns, values)))]
        self.rows_out = len(rows)
        return rows, tuple(columns)

    def _merge_grouped(self, parts, ctx: _Ctx):
        merged: Dict[Tuple, List[Any]] = {}
        first_leaves: Dict[Tuple, Tuple] = {}
        order: List[Tuple] = []
        for part in parts:
            for key, states, leaves in part:
                seen = merged.get(key)
                if seen is None:
                    merged[key] = list(states)
                    first_leaves[key] = leaves
                    order.append(key)
                else:
                    for i, call in enumerate(self._agg_calls):
                        seen[i] = _combine_states(call, seen[i],
                                                  states[i])
        self.groups_in = len(order)

        columns = self._columns(ctx)
        rows: List[Record] = []
        for key in order:
            agg_values = {id(call): _finish_state(call, merged[key][i])
                          for i, call in enumerate(self._agg_calls)}
            leaf_values = {id(leaf): first_leaves[key][i]
                           for i, leaf in enumerate(self._leaves)}
            if self.having is not None and not _truthy(
                    self._merge_eval(self.having, agg_values,
                                     leaf_values, ctx.params)):
                continue
            values = [self._merge_eval(item.expr, agg_values,
                                       leaf_values, ctx.params)
                      for item in self.items]
            rows.append(Record(dict(zip(columns, values))))
        self.rows_out = len(rows)
        return rows, tuple(columns)

    def _merge_eval(self, expr: S.Expr, agg_values, leaf_values,
                    params) -> Any:
        key = id(expr)
        if key in agg_values:
            return agg_values[key]
        if key in leaf_values:
            return leaf_values[key]
        if isinstance(expr, S.BinOp):
            return _apply_op(
                expr.op,
                self._merge_eval(expr.left, agg_values, leaf_values,
                                 params),
                self._merge_eval(expr.right, agg_values, leaf_values,
                                 params))
        if isinstance(expr, S.Literal):
            return expr.value
        if isinstance(expr, S.Param):
            return _param(params, expr.name)
        raise SQLExecutionError("unsupported aggregate expression %r"
                                % (expr,))


def _collect_partial_nodes(expr: S.Expr, agg_calls: List[S.FuncCall],
                           leaves: List[S.Expr]) -> None:
    """Split a combinable tree into aggregate calls and scalar leaves,
    mirroring ``_combinable_expr``'s traversal exactly."""
    if isinstance(expr, S.FuncCall):
        agg_calls.append(expr)
        return
    if isinstance(expr, S.BinOp):
        _collect_partial_nodes(expr.left, agg_calls, leaves)
        _collect_partial_nodes(expr.right, agg_calls, leaves)
        return
    if isinstance(expr, (S.Literal, S.Param)):
        return
    leaves.append(expr)


# -- vectorized (batch-at-a-time) operators -----------------------------------


class VecOp(PhysicalOp):
    """Base class for operators streaming column batches.

    The vectorized counterpart of :class:`EnvOp`: ``batches`` returns
    a list of :class:`~repro.sql.plan.vector.Batch` objects whose
    concatenation is exactly the row operator's environment stream
    (same pairs, same order).  Every batch is non-empty; empty batches
    are dropped at the producer so downstream closures never see
    ``n == 0``.
    """

    def batches(self, ctx: _Ctx) -> List[Batch]:
        raise NotImplementedError


def _concat_batches(batches: List[Batch]):
    """Concatenate batches into ``(aliases, pairs, n)``; None if empty."""
    if not batches:
        return None
    first = batches[0]
    aliases = first.aliases
    pairs = {a: list(first.pairs[a]) for a in aliases}
    for batch in batches[1:]:
        for a in aliases:
            pairs[a].extend(batch.pairs[a])
    return aliases, pairs, len(pairs[aliases[0]])


def _chunk_pairs(aliases: Tuple[str, ...], pairs, n: int,
                 size: int) -> List[Batch]:
    """Re-chunk concatenated pair lists into batches of ``size``."""
    out = []
    for start in range(0, n, size):
        chunk = {a: rows[start:start + size]
                 for a, rows in pairs.items()}
        out.append(Batch(aliases, chunk, min(size, n - start)))
    return out


class VecScanOp(VecOp):
    """A scan emitting filtered column batches.

    The underlying access path (:meth:`ScanOp._rows`) is unchanged —
    full-scan / index-probe statistics count exactly as in row mode —
    then the row list is sliced into batches and the scan's pushed-down
    predicates, compiled once at plan time, filter each batch.
    """

    name = "VecScan"

    def __init__(self, scan: ScanOp, batch_size: int):
        super().__init__()
        self.scan = scan
        self.batch_size = batch_size
        self._filter = (compile_filter(scan.predicates)
                        if scan.predicates else None)

    def describe(self) -> str:
        return "%s(%s, batch=%d)" % (self.name, self.scan.describe(),
                                     self.batch_size)

    def trace_name(self) -> str:
        return self.scan.describe()

    def batches(self, ctx: _Ctx) -> List[Batch]:
        source = self.scan._rows(ctx)
        # Register for downstream name resolution (``*`` expansion,
        # ORDER BY aliasing); consumers only read alias and columns,
        # so the row payload stays with the batches (the same contract
        # PartitionedScanOp established).
        ctx.scanned.append(_ScannedSource(alias=source.alias,
                                          columns=source.columns,
                                          rows=[], table=source.table))
        rows = source.rows
        size = self.batch_size
        out: List[Batch] = []
        total = 0
        for start in range(0, len(rows), size):
            batch = Batch.from_pairs(source.alias, rows[start:start + size])
            if self._filter is not None:
                batch = self._filter(batch, ctx.params)
            if batch.n:
                out.append(batch)
                total += batch.n
        self.rows_out = total
        self.batches_out = len(out)
        return out


class EnvsToVecOp(VecOp):
    """Adapter: re-batch an environment stream (e.g. above a Gather,
    or above a row-mode fallback segment)."""

    name = "Rebatch"

    def __init__(self, child: EnvOp, batch_size: int):
        super().__init__()
        self.child = child
        self.batch_size = batch_size

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "%s(batch=%d)" % (self.name, self.batch_size)

    def batches(self, ctx: _Ctx) -> List[Batch]:
        envs = self.child.envs(ctx)
        out: List[Batch] = []
        if envs:
            aliases = tuple(envs[0])
            size = self.batch_size
            for start in range(0, len(envs), size):
                out.append(Batch.from_envs(envs[start:start + size],
                                           aliases))
        self.rows_out = len(envs)
        self.batches_out = len(out)
        return out


class VecToEnvsOp(EnvOp):
    """Adapter: concatenate batches back into an environment stream
    (for row-mode fallback operators above a vectorized segment)."""

    name = "Unbatch"

    def __init__(self, child: VecOp):
        super().__init__()
        self.child = child

    @property
    def children(self):
        return (self.child,)

    def envs(self, ctx: _Ctx) -> List[Env]:
        out: List[Env] = []
        for batch in self.child.batches(ctx):
            out.extend(batch.envs())
        self.rows_out = len(out)
        return out


class VecFilterOp(VecOp):
    """Residual predicates applied per batch via a compiled closure."""

    name = "VecFilter"

    def __init__(self, child: VecOp, predicates: Tuple[S.Expr, ...]):
        super().__init__()
        self.child = child
        self.predicates = predicates
        self._filter = compile_filter(predicates)

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, " AND ".join(
            expr_sql(p) for p in self.predicates))

    def trace_name(self) -> str:
        from repro.sql.pretty import expr_sql

        return "Filter(%s)" % " AND ".join(
            expr_sql(p) for p in self.predicates)

    def batches(self, ctx: _Ctx) -> List[Batch]:
        out: List[Batch] = []
        total = 0
        for batch in self.child.batches(ctx):
            batch = self._filter(batch, ctx.params)
            if batch.n:
                out.append(batch)
                total += batch.n
        self.rows_out = total
        self.batches_out = len(out)
        return out


class VecHashJoinOp(VecOp):
    """Hash join probing with whole batches.

    The build phase is the shared :func:`_hash_build`; the probe key
    is compiled once and evaluated as a vector per batch, then matches
    expand probe-major (probe position order, then bucket order) via
    index gather — the exact row order of :class:`HashJoinOp`.
    """

    name = "VecHashJoin"

    def __init__(self, left: VecOp, right: ScanOp, predicate: S.BinOp):
        super().__init__()
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, expr_sql(self.predicate))

    def trace_name(self) -> str:
        from repro.sql.pretty import expr_sql

        return "HashJoin(%s)" % expr_sql(self.predicate)

    def batches(self, ctx: _Ctx) -> List[Batch]:
        incoming = self.left.batches(ctx)
        source = self.right.scanned(ctx)
        ctx.stats.hash_joins += 1
        buckets, probe_expr = _hash_build(source, self.predicate)
        build_alias = source.alias
        _, probe = compile_scalar(probe_expr)    # ColumnRef: never const
        out: List[Batch] = []
        total = 0
        for batch in incoming:
            values = probe(batch, ctx.params)
            idx: List[int] = []
            rows: List = []
            for i, value in enumerate(values):
                matches = buckets.get(value)
                if matches:
                    for row in matches:
                        idx.append(i)
                        rows.append(row)
            if not idx:
                continue
            pairs = {a: [ps[i] for i in idx]
                     for a, ps in batch.pairs.items()}
            pairs[build_alias] = rows
            joined = Batch(batch.aliases + (build_alias,), pairs,
                           len(rows))
            out.append(joined)
            total += joined.n
        self.rows_out = total
        self.batches_out = len(out)
        return out


class VecNestedLoopOp(VecOp):
    """Cross product with the new source, by index expansion."""

    name = "VecNestedLoop"

    def __init__(self, left: VecOp, right: ScanOp):
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def trace_name(self) -> str:
        return "NestedLoop"

    def batches(self, ctx: _Ctx) -> List[Batch]:
        incoming = self.left.batches(ctx)
        source = self.right.scanned(ctx)
        ctx.stats.nested_loop_joins += 1
        rows = source.rows
        alias = source.alias
        out: List[Batch] = []
        total = 0
        if rows:
            m = len(rows)
            for batch in incoming:
                # Prefix-major, like the row operator: each prefix row
                # pairs with every source row before the next prefix row.
                idx = [i for i in range(batch.n) for _ in range(m)]
                pairs = {a: [ps[i] for i in idx]
                         for a, ps in batch.pairs.items()}
                pairs[alias] = rows * batch.n
                joined = Batch(batch.aliases + (alias,), pairs, len(idx))
                out.append(joined)
                total += joined.n
        self.rows_out = total
        self.batches_out = len(out)
        return out


class VecSortOp(VecOp):
    """ORDER BY over batches: materialize, sort by key vectors, re-chunk.

    Key vectors are extracted column-wise; the sort permutes row
    indices with Python's stable sort, so tie order (and the
    ``sorted(...)[:k]`` equivalence of the top-k truncation) matches
    :class:`SortOp` exactly.
    """

    name = "VecSort"

    def __init__(self, child: VecOp, order_by: Tuple[S.OrderItem, ...],
                 top_k: Optional[int], batch_size: int):
        super().__init__()
        self.child = child
        self.order_by = order_by
        self.top_k = top_k
        self.batch_size = batch_size

    @property
    def children(self):
        return (self.child,)

    def _keys(self) -> str:
        return ", ".join(
            ("%s.%s" % (o.column.alias, o.column.column)
             if o.column.alias else o.column.column)
            + (" DESC" if o.descending else "")
            for o in self.order_by)

    def describe(self) -> str:
        if self.top_k is not None:
            return "VecTopK(%d, %s)" % (self.top_k, self._keys())
        return "%s(%s)" % (self.name, self._keys())

    def trace_name(self) -> str:
        if self.top_k is not None:
            return "TopK(%d, %s)" % (self.top_k, self._keys())
        return "Sort(%s)" % self._keys()

    def batches(self, ctx: _Ctx) -> List[Batch]:
        from repro.sql.executor import _ReverseAware

        concat = _concat_batches(self.child.batches(ctx))
        if concat is None:
            self.rows_out = 0
            self.batches_out = 0
            return []
        aliases, pairs, n = concat
        executor = ctx.executor
        key_vecs = []
        for item in self.order_by:
            col = item.column
            alias = col.alias
            if alias is None:
                alias = executor._alias_for_column(col.column, ctx.scanned)
            if alias not in pairs:
                raise SQLExecutionError("unknown alias %r in ORDER BY"
                                        % alias)
            rows = pairs[alias]
            if col.column == "_rowid":
                vec = [pair[0] for pair in rows]
            else:
                # Raw item access: a missing column raises the same
                # bare KeyError the row mode's _order_value does.
                vec = [pair[1][col.column] for pair in rows]
            key_vecs.append((vec, item.descending))

        def key(i: int):
            return tuple(_ReverseAware(vec[i], desc)
                         for vec, desc in key_vecs)

        order = sorted(range(n), key=key)
        if self.top_k is not None:
            order = order[: self.top_k]
        pairs = {a: [rows[i] for i in order] for a, rows in pairs.items()}
        out = _chunk_pairs(aliases, pairs, len(order), self.batch_size)
        self.rows_out = len(order)
        self.batches_out = len(out)
        return out


class VecRestoreOp(VecOp):
    """FROM-order restoration over batches (see :class:`RestoreOp`)."""

    name = "VecRestore"

    def __init__(self, child: VecOp, aliases: Tuple[str, ...],
                 batch_size: int):
        super().__init__()
        self.child = child
        self.aliases = aliases
        self.batch_size = batch_size

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(self.aliases))

    def trace_name(self) -> str:
        return "Restore(%s)" % ", ".join(self.aliases)

    def batches(self, ctx: _Ctx) -> List[Batch]:
        incoming = self.child.batches(ctx)
        position = {alias: i for i, alias in enumerate(self.aliases)}
        ctx.scanned.sort(
            key=lambda src: position.get(src.alias, len(position)))
        concat = _concat_batches(incoming)
        if concat is None:
            self.rows_out = 0
            self.batches_out = 0
            return []
        batch_aliases, pairs, n = concat
        rowids = [[pair[0] for pair in pairs[a]] for a in self.aliases]
        order = sorted(range(n),
                       key=lambda i: tuple(vec[i] for vec in rowids))
        pairs = {a: [rows[i] for i in order] for a, rows in pairs.items()}
        out = _chunk_pairs(batch_aliases, pairs, n, self.batch_size)
        self.rows_out = n
        self.batches_out = len(out)
        return out


class VecProjectOp(RowOp):
    """Projection evaluated column-wise over batches.

    Select items compile once at plan time; per batch, each item
    yields one value vector (``*`` expands to direct column gathers,
    constants broadcast) and output records assemble row-wise from the
    zipped vectors — the same values, names and order as
    :class:`ProjectOp`.
    """

    name = "VecProject"

    def __init__(self, child: VecOp, items: Tuple[S.SelectItem, ...]):
        super().__init__()
        self.child = child
        self.items = items
        self._compiled = [None if isinstance(item.expr, S.Star)
                          else compile_scalar(item.expr)
                          for item in items]

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import _item

        return "%s(%s)" % (self.name,
                           ", ".join(_item(i) for i in self.items))

    def trace_name(self) -> str:
        from repro.sql.pretty import _item

        return "Project(%s)" % ", ".join(_item(i) for i in self.items)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        batches = self.child.batches(ctx)
        executor = ctx.executor
        columns: List[str] = []
        plan = []     # ("star", alias, column) | ("const", fn) | ("vec", fn)
        for item, compiled in zip(self.items, self._compiled):
            if compiled is None:
                star_sources = [s for s in ctx.scanned
                                if item.expr.alias in (None, s.alias)]
                if not star_sources:
                    raise SQLExecutionError(
                        "unknown alias %r in select list" % item.expr.alias)
                for source in star_sources:
                    for column in source.columns:
                        name = executor._fresh_name(column, columns)
                        columns.append(name)
                        plan.append(("star", source.alias, column))
            else:
                name = item.as_name or _default_name(item.expr)
                columns.append(executor._fresh_name(name, columns))
                is_const, fn = compiled
                plan.append(("const" if is_const else "vec", fn))

        rows: List[Record] = []
        params = ctx.params
        for batch in batches:
            vectors = []
            for entry in plan:
                if entry[0] == "star":
                    vectors.append(batch.column(entry[1], entry[2]))
                elif entry[0] == "const":
                    vectors.append([entry[1](params)] * batch.n)
                else:
                    vectors.append(entry[1](batch, params))
            for vals in zip(*vectors):
                rows.append(Record(dict(zip(columns, vals))))
        self.rows_out = len(rows)
        return rows, tuple(columns)


#: Aggregate functions the vectorized fold implements (all five — the
#: fold runs serially over the full series in row order and AVG uses
#: the executor's exactly-rounded mean, so every fold is
#: arithmetic-identical to ``_eval_aggregate``).
_VEC_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")


def _vec_call_ok(call: S.FuncCall) -> bool:
    if call.name not in _VEC_AGGREGATES:
        return False
    if call.arg is None:
        return call.name == "COUNT"
    return vectorizable(call.arg)


def _vec_whole_ok(expr: S.Expr) -> bool:
    """Whole-input aggregation trees VecAggregateOp reproduces exactly
    (mirrors ``_eval_aggregate``'s structure)."""
    if isinstance(expr, S.FuncCall):
        return _vec_call_ok(expr)
    if isinstance(expr, S.BinOp):
        # Any operator: combination goes through _apply_op either way,
        # including its unsupported-operator error for AND/OR.
        return _vec_whole_ok(expr.left) and _vec_whole_ok(expr.right)
    return isinstance(expr, (S.Literal, S.Param))


def _vec_group_ok(expr: S.Expr) -> bool:
    """Grouped trees VecAggregateOp reproduces exactly (mirrors
    ``AggregateOp._group_value``: non-structural leaves evaluate via
    the executor on the group's first environment, so any leaf is
    fine)."""
    if isinstance(expr, S.FuncCall):
        return _vec_call_ok(expr)
    if isinstance(expr, S.BinOp):
        return _vec_group_ok(expr.left) and _vec_group_ok(expr.right)
    if isinstance(expr, S.NotOp):
        return _vec_group_ok(expr.expr)
    return True


def _vec_aggregate_ok(items: Tuple[S.SelectItem, ...],
                      group_by: Tuple[S.Expr, ...],
                      having: Optional[S.Expr]) -> bool:
    """Whether :class:`VecAggregateOp` can run this aggregation; other
    shapes (``*`` items, unknown functions, unvectorizable arguments)
    fall back to :class:`AggregateOp`, which raises or evaluates
    exactly as the seed does."""
    trees = []
    for item in items:
        if isinstance(item.expr, S.Star):
            return False
        trees.append(item.expr)
    if having is not None:
        trees.append(having)
    if group_by:
        if not all(vectorizable(e) for e in group_by):
            return False
        return all(_vec_group_ok(tree) for tree in trees)
    return all(_vec_whole_ok(tree) for tree in trees)


class VecAggregateOp(RowOp):
    """Aggregation folding column vectors instead of per-env walks.

    Aggregate arguments and group keys compile once at plan time;
    per query, argument series concatenate in batch order — which is
    row order — so every fold (including SUM/AVG float accumulation)
    is arithmetic-identical to ``_eval_aggregate``'s left-to-right
    loop.  Grouping buckets row indices by key tuple in
    first-encounter order; HAVING evaluates before select items per
    group, so filtered groups never compute their aggregates (the row
    mode's lazy evaluation set).  Group-local non-aggregate leaves
    evaluate through the executor on the group's first environment,
    exactly as ``AggregateOp._group_value`` does.
    """

    name = "VecAggregate"

    def __init__(self, child: VecOp, items: Tuple[S.SelectItem, ...],
                 group_by: Tuple[S.Expr, ...],
                 having: Optional[S.Expr]):
        super().__init__()
        self.child = child
        self.items = items
        self.group_by = group_by
        self.having = having
        self.groups_in = None
        self._agg_args: Dict[int, Any] = {}
        trees = [item.expr for item in items]
        if having is not None:
            trees.append(having)
        for tree in trees:
            self._collect_args(tree)
        self._key_fns = [compile_scalar(e) for e in group_by]

    def _collect_args(self, expr: S.Expr) -> None:
        if isinstance(expr, S.FuncCall):
            if expr.arg is not None:
                self._agg_args[id(expr)] = compile_scalar(expr.arg)
            return
        if isinstance(expr, S.BinOp):
            self._collect_args(expr.left)
            self._collect_args(expr.right)
            return
        if isinstance(expr, S.NotOp):
            self._collect_args(expr.expr)

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        if not self.group_by:
            return "VecAggregate(whole input)"
        body = "VecGroupBy(%s)" % ", ".join(expr_sql(e)
                                           for e in self.group_by)
        if self.having is not None:
            body += " having %s" % expr_sql(self.having)
        return body

    def trace_name(self) -> str:
        from repro.sql.pretty import expr_sql

        if not self.group_by:
            return "Aggregate(whole input)"
        body = "GroupBy(%s)" % ", ".join(expr_sql(e)
                                         for e in self.group_by)
        if self.having is not None:
            body += " having %s" % expr_sql(self.having)
        return body

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        batches = self.child.batches(ctx)
        if self.group_by:
            return self._grouped(batches, ctx)
        return self._whole(batches, ctx)

    def _series(self, call: S.FuncCall, batches: List[Batch],
                params) -> List[Any]:
        is_const, fn = self._agg_args[id(call)]
        out: List[Any] = []
        for batch in batches:
            if is_const:
                out.extend([fn(params)] * batch.n)
            else:
                out.extend(fn(batch, params))
        return out

    def _fold(self, call: S.FuncCall, batches: List[Batch],
              n_total: int, params) -> Any:
        if call.name == "COUNT":
            if call.arg is None:
                return n_total
            return sum(1 for v in self._series(call, batches, params)
                       if v is not None)
        series = self._series(call, batches, params)
        if call.name == "SUM":
            return sum(series) if series else 0
        if call.name == "MAX":
            return max(series) if series else None
        if call.name == "MIN":
            return min(series) if series else None
        # AVG: the executor's exactly-rounded mean
        return _avg_final(_avg_state(series))

    def _whole(self, batches: List[Batch], ctx: _Ctx):
        n_total = sum(batch.n for batch in batches)
        params = ctx.params

        def value(expr: S.Expr) -> Any:
            if isinstance(expr, S.FuncCall):
                return self._fold(expr, batches, n_total, params)
            if isinstance(expr, S.BinOp):
                return _apply_op(expr.op, value(expr.left),
                                 value(expr.right))
            if isinstance(expr, S.Literal):
                return expr.value
            return _param(params, expr.name)     # S.Param (gated)

        executor = ctx.executor
        columns: List[str] = []
        values: List[Any] = []
        for item in self.items:
            name = item.as_name or _default_name(item.expr)
            columns.append(executor._fresh_name(name, columns))
            values.append(value(item.expr))
        rows = [Record(dict(zip(columns, values)))]
        self.rows_out = 1
        return rows, tuple(columns)

    def _grouped(self, batches: List[Batch], ctx: _Ctx):
        executor, params, stats = ctx.executor, ctx.params, ctx.stats
        n_total = sum(batch.n for batch in batches)
        key_vecs: List[List[Any]] = []
        for is_const, fn in self._key_fns:
            if is_const:
                key_vecs.append([fn(params)] * n_total if n_total else [])
            else:
                vec: List[Any] = []
                for batch in batches:
                    vec.extend(fn(batch, params))
                key_vecs.append(vec)

        buckets: Dict[Tuple, List[int]] = {}
        order: List[Tuple] = []
        for i in range(n_total):
            key = tuple(vec[i] for vec in key_vecs)
            got = buckets.get(key)
            if got is None:
                buckets[key] = got = []
                order.append(key)
            got.append(i)
        self.groups_in = len(order)

        columns: List[str] = []
        for item in self.items:
            name = item.as_name or _default_name(item.expr)
            columns.append(executor._fresh_name(name, columns))

        concat = _concat_batches(batches)
        rows: List[Record] = []
        for group_key in order:
            idx = buckets[group_key]
            aliases, all_pairs, _ = concat
            gbatch = Batch(aliases,
                           {a: [all_pairs[a][i] for i in idx]
                            for a in aliases}, len(idx))
            gb = [gbatch]
            first_env = {a: all_pairs[a][idx[0]] for a in aliases}

            def value(expr: S.Expr, gb=gb, gbatch=gbatch,
                      first_env=first_env) -> Any:
                if isinstance(expr, S.FuncCall):
                    return self._fold(expr, gb, gbatch.n, params)
                if isinstance(expr, S.BinOp):
                    if expr.op == "AND":
                        return (_truthy(value(expr.left))
                                and _truthy(value(expr.right)))
                    if expr.op == "OR":
                        return (_truthy(value(expr.left))
                                or _truthy(value(expr.right)))
                    return _apply_op(expr.op, value(expr.left),
                                     value(expr.right))
                if isinstance(expr, S.NotOp):
                    return not _truthy(value(expr.expr))
                return executor._eval(expr, first_env, params, stats)

            if self.having is not None and not _truthy(value(self.having)):
                continue
            values = [value(item.expr) for item in self.items]
            rows.append(Record(dict(zip(columns, values))))
        self.rows_out = len(rows)
        return rows, tuple(columns)


# -- lowering -----------------------------------------------------------------


def lower(plan: L.LogicalPlan, options: Optional[Any] = None) -> RowOp:
    """Lower an optimized logical plan to a physical operator tree.

    ``options`` (an ``OptimizerOptions``) selects the operator family:
    with ``vectorized=True`` the env segment lowers to batch operators
    wherever the expression compiler covers the query, falling back to
    the row operators elsewhere.  The default (None, or
    ``vectorized=False``) is byte-identical to the seed lowering — no
    vectorized operator is ever instantiated, so serial plans, golden
    traces and EXPLAIN output are untouched.
    """
    if options is not None and getattr(options, "vectorized", False):
        return _lower_rows_vec(plan, options.batch_size)
    return _lower_rows(plan)


def _with_est(op: PhysicalOp, plan: L.LogicalPlan) -> PhysicalOp:
    """Copy the optimizer's estimates onto the physical operator."""
    op.est_rows = plan.est_rows
    op.est_cost = plan.est_cost
    return op


def _lower_rows(plan: L.LogicalPlan) -> RowOp:
    if isinstance(plan, L.Limit):
        return _with_est(LimitOp(_lower_rows(plan.child), plan.count),
                         plan)
    if isinstance(plan, L.Distinct):
        return _with_est(DistinctOp(_lower_rows(plan.child)), plan)
    if isinstance(plan, L.Project):
        return _with_est(ProjectOp(_lower_envs(plan.child), plan.items),
                         plan)
    if isinstance(plan, L.Aggregate):
        child = plan.child
        if isinstance(child, L.Gather) and combinable_aggregate(
                plan.items, plan.group_by, plan.having):
            return _with_est(PartialAggregateOp(
                _lower_partitioned(child.child, child.partitions),
                child.partitions, plan.items, plan.group_by,
                plan.having), plan)
        return _with_est(AggregateOp(_lower_envs(child), plan.items,
                                     plan.group_by, plan.having), plan)
    if isinstance(plan, L.Sort):
        child = plan.child
        if isinstance(child, L.Aggregate):
            return _with_est(RowSortOp(_lower_rows(child),
                                       plan.order_by), plan)
        raise TypeError("Sort over %r cannot be lowered here" % (child,))
    raise TypeError("expected a row-producing logical node, got %r"
                    % (plan,))


def _lower_envs(plan: L.LogicalPlan) -> EnvOp:
    if isinstance(plan, L.Sort):
        child = plan.child
        if plan.merge and isinstance(child, L.Gather):
            return _with_est(GatherMergeOp(
                _lower_partitioned(child.child, child.partitions),
                child.partitions, plan.order_by, plan.top_k), plan)
        return _with_est(SortOp(_lower_envs(child), plan.order_by,
                                plan.top_k), plan)
    if isinstance(plan, L.Restore):
        return _with_est(RestoreOp(_lower_envs(plan.child),
                                   plan.aliases), plan)
    if isinstance(plan, L.Gather):
        return _with_est(
            GatherOp(_lower_partitioned(plan.child, plan.partitions),
                     plan.partitions), plan)
    if isinstance(plan, L.Filter):
        return _with_est(FilterOp(_lower_envs(plan.child),
                                  plan.predicates), plan)
    if isinstance(plan, L.Join):
        left = _lower_envs(plan.left)
        right = _lower_scan(plan.right)
        if plan.strategy == "hash":
            return _with_est(HashJoinOp(left, right, plan.predicate),
                             plan)
        return _with_est(NestedLoopJoinOp(left, right), plan)
    if isinstance(plan, L.Scan):
        return _with_est(ScanEnvsOp(_lower_scan(plan)), plan)
    raise TypeError("expected an env-producing logical node, got %r"
                    % (plan,))


def _lower_partitioned(plan: L.LogicalPlan,
                       partitions: int) -> PartitionedOp:
    """Lower the env segment under a Gather to partitioned operators."""
    if isinstance(plan, L.Filter):
        return _with_est(PartitionedFilterOp(
            _lower_partitioned(plan.child, partitions),
            plan.predicates), plan)
    if isinstance(plan, L.Join):
        left = _lower_partitioned(plan.left, partitions)
        right = _lower_scan(plan.right)
        if plan.strategy == "hash":
            return _with_est(PartitionedHashJoinOp(left, right,
                                                   plan.predicate), plan)
        return _with_est(PartitionedNestedLoopOp(left, right), plan)
    if isinstance(plan, L.Scan):
        return _with_est(PartitionedScanOp(_lower_scan(plan),
                                           partitions), plan)
    raise TypeError("expected a partitionable logical node, got %r"
                    % (plan,))


def _lower_scan(scan: L.Scan) -> ScanOp:
    if scan.subquery is not None:
        return _with_est(SubqueryScanOp(scan.subquery, scan.alias,
                                        scan.predicates), scan)
    if scan.index is not None:
        column, value_expr, index_pred = scan.index
        # The probe consumes the chosen predicate; the rest filter.
        predicates = tuple(p for p in scan.predicates
                           if p is not index_pred)
        return _with_est(IndexScanOp(scan.table, scan.alias, column,
                                     value_expr, predicates), scan)
    return _with_est(FullScanOp(scan.table, scan.alias,
                                scan.predicates), scan)


def _as_vec(op: PhysicalOp, batch_size: int) -> VecOp:
    """Coerce a lowered env segment to a batch producer."""
    if isinstance(op, VecOp):
        return op
    return EnvsToVecOp(op, batch_size)


def _as_envs(op: PhysicalOp) -> EnvOp:
    """Coerce a lowered env segment to an environment producer."""
    if isinstance(op, VecOp):
        return VecToEnvsOp(op)
    return op


def _lower_rows_vec(plan: L.LogicalPlan, batch_size: int) -> RowOp:
    """Vectorized counterpart of :func:`_lower_rows`.

    Each node checks whether the expression compiler covers its
    expressions; covered nodes lower to the Vec operator, others to
    the seed row operator with an adapter below.  The partitioned
    Gather shapes (PartialAggregateOp, GatherMergeOp, GatherOp) lower
    exactly as in row mode — partitions keep envs as their currency
    and vectorize internally instead (see PartitionedScanOp /
    PartialAggregateOp).
    """
    if isinstance(plan, L.Limit):
        return _with_est(LimitOp(_lower_rows_vec(plan.child, batch_size),
                                 plan.count), plan)
    if isinstance(plan, L.Distinct):
        return _with_est(DistinctOp(_lower_rows_vec(plan.child,
                                                    batch_size)), plan)
    if isinstance(plan, L.Project):
        lowered = _lower_envs_vec(plan.child, batch_size)
        if all(isinstance(item.expr, S.Star) or vectorizable(item.expr)
               for item in plan.items):
            return _with_est(VecProjectOp(_as_vec(lowered, batch_size),
                                          plan.items), plan)
        return _with_est(ProjectOp(_as_envs(lowered), plan.items), plan)
    if isinstance(plan, L.Aggregate):
        child = plan.child
        if isinstance(child, L.Gather) and combinable_aggregate(
                plan.items, plan.group_by, plan.having):
            return _with_est(PartialAggregateOp(
                _lower_partitioned(child.child, child.partitions),
                child.partitions, plan.items, plan.group_by,
                plan.having), plan)
        lowered = _lower_envs_vec(child, batch_size)
        if _vec_aggregate_ok(plan.items, plan.group_by, plan.having):
            return _with_est(VecAggregateOp(_as_vec(lowered, batch_size),
                                            plan.items, plan.group_by,
                                            plan.having), plan)
        return _with_est(AggregateOp(_as_envs(lowered), plan.items,
                                     plan.group_by, plan.having), plan)
    if isinstance(plan, L.Sort):
        child = plan.child
        if isinstance(child, L.Aggregate):
            return _with_est(RowSortOp(_lower_rows_vec(child, batch_size),
                                       plan.order_by), plan)
        raise TypeError("Sort over %r cannot be lowered here" % (child,))
    raise TypeError("expected a row-producing logical node, got %r"
                    % (plan,))


def _lower_envs_vec(plan: L.LogicalPlan, batch_size: int) -> PhysicalOp:
    """Vectorized counterpart of :func:`_lower_envs`; returns either a
    VecOp or an EnvOp (callers adapt with ``_as_vec`` / ``_as_envs``)."""
    if isinstance(plan, L.Sort):
        child = plan.child
        if plan.merge and isinstance(child, L.Gather):
            return _with_est(GatherMergeOp(
                _lower_partitioned(child.child, child.partitions),
                child.partitions, plan.order_by, plan.top_k), plan)
        return _with_est(VecSortOp(
            _as_vec(_lower_envs_vec(child, batch_size), batch_size),
            plan.order_by, plan.top_k, batch_size), plan)
    if isinstance(plan, L.Restore):
        return _with_est(VecRestoreOp(
            _as_vec(_lower_envs_vec(plan.child, batch_size), batch_size),
            plan.aliases, batch_size), plan)
    if isinstance(plan, L.Gather):
        return _with_est(
            GatherOp(_lower_partitioned(plan.child, plan.partitions),
                     plan.partitions), plan)
    if isinstance(plan, L.Filter):
        lowered = _lower_envs_vec(plan.child, batch_size)
        if all(vectorizable(p) for p in plan.predicates):
            return _with_est(VecFilterOp(_as_vec(lowered, batch_size),
                                         plan.predicates), plan)
        return _with_est(FilterOp(_as_envs(lowered), plan.predicates),
                         plan)
    if isinstance(plan, L.Join):
        left = _as_vec(_lower_envs_vec(plan.left, batch_size), batch_size)
        right = _lower_scan(plan.right)
        if plan.strategy == "hash":
            return _with_est(VecHashJoinOp(left, right, plan.predicate),
                             plan)
        return _with_est(VecNestedLoopOp(left, right), plan)
    if isinstance(plan, L.Scan):
        scan = _lower_scan(plan)
        if all(vectorizable(p) for p in scan.predicates):
            return _with_est(VecScanOp(scan, batch_size), plan)
        return _with_est(ScanEnvsOp(scan), plan)
    raise TypeError("expected an env-producing logical node, got %r"
                    % (plan,))


# -- plan driver ---------------------------------------------------------------


class PhysicalPlan:
    """An executable physical plan (root operator + execution entry)."""

    def __init__(self, root: RowOp):
        self.root = root

    def execute(self, executor, params: Dict[str, Any],
                stats) -> QueryResult:
        deadline = None
        seconds = executor.options.deadline_seconds
        if seconds is not None:
            from repro.service.faults import Deadline

            deadline = Deadline.after(seconds)
        ctx = _Ctx(executor=executor, params=params, stats=stats,
                   deadline=deadline)
        rows, columns = self.root.rows(ctx)
        return QueryResult(rows=rows, columns=columns, stats=stats)
