"""Physical operators: the executable form of an optimized plan.

Lowering (:func:`lower`) maps each logical node onto an operator object:

* ``Scan``      -> :class:`FullScanOp` / :class:`IndexScanOp` /
                   :class:`SubqueryScanOp`
* ``Join``      -> :class:`HashJoinOp` / :class:`NestedLoopJoinOp`
* ``Filter``    -> :class:`FilterOp`
* ``Sort``      -> :class:`SortOp` (heap top-k selection when the
                   optimizer attached a LIMIT bound)
* ``Aggregate`` -> :class:`AggregateOp` (GROUP BY grouping in
                   first-encounter order, HAVING, aggregate projection)
* ``Project`` / ``Distinct`` / ``Limit`` -> the matching row operators

Operators delegate scalar/aggregate expression evaluation to the owning
:class:`~repro.sql.executor.Executor`, so both executor modes share one
expression semantics.  Each operator records its output cardinality in
``rows_out`` (per-operator execution statistics), which the EXPLAIN
printer surfaces in ``analyze`` mode; engine-wide counters still go to
the familiar :class:`~repro.sql.executor.ExecutionStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sql import ast as S
from repro.sql.errors import SQLExecutionError
from repro.sql.executor import (
    Env,
    QueryResult,
    _apply_op,
    _default_name,
    _ScannedSource,
    _truthy,
)
from repro.sql.plan import logical as L
from repro.tor.values import Record


@dataclass
class _Ctx:
    """Per-execution state threaded through the operator tree."""

    executor: Any                       # repro.sql.executor.Executor
    params: Dict[str, Any]
    stats: Any                          # ExecutionStats (engine-wide)
    scanned: List[_ScannedSource] = None

    def __post_init__(self):
        if self.scanned is None:
            self.scanned = []


class PhysicalOp:
    """Base class: explain metadata plus per-operator statistics."""

    name = "op"

    def __init__(self):
        self.rows_out: Optional[int] = None

    @property
    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def describe(self) -> str:
        return self.name


# -- scans -------------------------------------------------------------------


class ScanOp(PhysicalOp):
    """Base scan: produces a filtered :class:`_ScannedSource`."""

    def __init__(self, alias: str, predicates: Tuple[S.Expr, ...]):
        super().__init__()
        self.alias = alias
        self.predicates = predicates

    def scanned(self, ctx: _Ctx) -> _ScannedSource:
        source = self._rows(ctx)
        if self.predicates:
            executor = ctx.executor
            filtered = []
            for rowid, record in source.rows:
                env = {self.alias: (rowid, record)}
                if all(_truthy(executor._eval(p, env, ctx.params, ctx.stats))
                       for p in self.predicates):
                    filtered.append((rowid, record))
            source = _ScannedSource(alias=source.alias,
                                    columns=source.columns,
                                    rows=filtered, table=source.table)
        self.rows_out = len(source.rows)
        ctx.scanned.append(source)
        return source

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        raise NotImplementedError


class FullScanOp(ScanOp):
    name = "FullScan"

    def __init__(self, table: str, alias: str,
                 predicates: Tuple[S.Expr, ...]):
        super().__init__(alias, predicates)
        self.table = table

    def describe(self) -> str:
        body = "%s(%s AS %s)" % (self.name, self.table, self.alias)
        if self.predicates:
            body += " filter=%d" % len(self.predicates)
        return body

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        table = ctx.executor.catalog.table(self.table)
        candidate = list(enumerate(table.rows))
        ctx.stats.rows_scanned += len(candidate)
        ctx.stats.full_scans += 1
        table.rows_scanned += len(candidate)
        return _ScannedSource(alias=self.alias, columns=table.columns,
                              rows=candidate, table=table)


class IndexScanOp(ScanOp):
    name = "IndexScan"

    def __init__(self, table: str, alias: str, column: str,
                 value_expr: S.Expr, predicates: Tuple[S.Expr, ...]):
        super().__init__(alias, predicates)
        self.table = table
        self.column = column
        self.value_expr = value_expr

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        body = "%s(%s AS %s, %s = %s)" % (
            self.name, self.table, self.alias, self.column,
            expr_sql(self.value_expr))
        if self.predicates:
            body += " filter=%d" % len(self.predicates)
        return body

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        table = ctx.executor.catalog.table(self.table)
        if isinstance(self.value_expr, S.Literal):
            value = self.value_expr.value
        else:
            value = ctx.params.get(self.value_expr.name)
        index = table.indexes[self.column]
        positions = index.lookup(value)
        ctx.stats.index_probes += 1
        ctx.stats.index_scans += 1
        candidate = [(pos, table.rows[pos]) for pos in positions]
        ctx.stats.rows_scanned += len(candidate)
        return _ScannedSource(alias=self.alias, columns=table.columns,
                              rows=candidate, table=table)


class SubqueryScanOp(ScanOp):
    name = "SubqueryScan"

    def __init__(self, query: S.Select, alias: str,
                 predicates: Tuple[S.Expr, ...]):
        super().__init__(alias, predicates)
        self.query = query

    def describe(self) -> str:
        body = "%s(AS %s)" % (self.name, self.alias)
        if self.predicates:
            body += " filter=%d" % len(self.predicates)
        return body

    def _rows(self, ctx: _Ctx) -> _ScannedSource:
        sub = ctx.executor.execute(self.query, ctx.params, ctx.stats)
        candidate = [(idx, row) for idx, row in enumerate(sub.rows)]
        ctx.stats.rows_scanned += len(candidate)
        ctx.stats.full_scans += 1
        return _ScannedSource(alias=self.alias, columns=sub.columns,
                              rows=candidate, table=None)


# -- env producers (joins) ----------------------------------------------------


class EnvOp(PhysicalOp):
    """Base class for operators producing joined-row environments."""

    def envs(self, ctx: _Ctx) -> List[Env]:
        raise NotImplementedError


class ScanEnvsOp(EnvOp):
    """Adapts the leftmost scan into single-alias environments.

    Transparent in EXPLAIN output: it renders as the scan itself.
    """

    name = "Rows"

    def __init__(self, scan: ScanOp):
        super().__init__()
        self.scan = scan

    def describe(self) -> str:
        return self.scan.describe()

    def envs(self, ctx: _Ctx) -> List[Env]:
        source = self.scan.scanned(ctx)
        out = [{source.alias: row} for row in source.rows]
        self.rows_out = len(out)
        return out


class HashJoinOp(EnvOp):
    """Build a hash table on the new source, probe with the prefix."""

    name = "HashJoin"

    def __init__(self, left: EnvOp, right: ScanOp, predicate: S.BinOp):
        super().__init__()
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, expr_sql(self.predicate))

    def envs(self, ctx: _Ctx) -> List[Env]:
        prefix = self.left.envs(ctx)
        source = self.right.scanned(ctx)
        out = ctx.executor._hash_join(prefix, source, self.predicate,
                                      ctx.params, ctx.stats)
        self.rows_out = len(out)
        return out


class NestedLoopJoinOp(EnvOp):
    """Cross product with the new source (no connecting predicate)."""

    name = "NestedLoop"

    def __init__(self, left: EnvOp, right: ScanOp):
        super().__init__()
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def envs(self, ctx: _Ctx) -> List[Env]:
        prefix = self.left.envs(ctx)
        source = self.right.scanned(ctx)
        ctx.stats.nested_loop_joins += 1
        out = [dict(env, **{source.alias: row})
               for env in prefix for row in source.rows]
        self.rows_out = len(out)
        return out


class FilterOp(EnvOp):
    """Residual predicates over joined environments."""

    name = "Filter"

    def __init__(self, child: EnvOp, predicates: Tuple[S.Expr, ...]):
        super().__init__()
        self.child = child
        self.predicates = predicates

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        return "%s(%s)" % (self.name, " AND ".join(
            expr_sql(p) for p in self.predicates))

    def envs(self, ctx: _Ctx) -> List[Env]:
        executor = ctx.executor
        out = self.child.envs(ctx)
        for pred in self.predicates:
            out = [env for env in out
                   if _truthy(executor._eval(pred, env, ctx.params,
                                             ctx.stats))]
        self.rows_out = len(out)
        return out


class SortOp(EnvOp):
    """ORDER BY over environments; heap top-k when a bound is known."""

    name = "Sort"

    def __init__(self, child: EnvOp, order_by: Tuple[S.OrderItem, ...],
                 top_k: Optional[int] = None):
        super().__init__()
        self.child = child
        self.order_by = order_by
        self.top_k = top_k

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            ("%s.%s" % (o.column.alias, o.column.column)
             if o.column.alias else o.column.column)
            + (" DESC" if o.descending else "")
            for o in self.order_by)
        if self.top_k is not None:
            return "TopK(%d, %s)" % (self.top_k, keys)
        return "%s(%s)" % (self.name, keys)

    def envs(self, ctx: _Ctx) -> List[Env]:
        executor = ctx.executor
        incoming = self.child.envs(ctx)
        if self.top_k is not None:
            out = executor._top_k(self.order_by, incoming, ctx.scanned,
                                  self.top_k)
        else:
            out = executor._order(self.order_by, incoming, ctx.scanned)
        self.rows_out = len(out)
        return out


# -- row producers -------------------------------------------------------------


class RowOp(PhysicalOp):
    """Base class for operators producing projected output rows."""

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        raise NotImplementedError


class ProjectOp(RowOp):
    name = "Project"

    def __init__(self, child: EnvOp, items: Tuple[S.SelectItem, ...]):
        super().__init__()
        self.child = child
        self.items = items

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import _item

        return "%s(%s)" % (self.name,
                           ", ".join(_item(i) for i in self.items))

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        envs = self.child.envs(ctx)
        rows, columns = ctx.executor._project(self.items, envs, ctx.scanned,
                                              ctx.params, ctx.stats)
        self.rows_out = len(rows)
        return rows, columns


class AggregateOp(RowOp):
    """Aggregate / GROUP BY / HAVING evaluation.

    Without group keys this is the executor's whole-input aggregation
    (one output row).  With keys, environments are bucketed by their
    evaluated key tuple; groups are emitted in **first-encounter
    order**, the engine's deterministic analogue of the ordered-relation
    semantics (the join chain enumerates environments left-major, so
    groups keyed on the leftmost source come out in its storage order).
    Non-aggregate select items are evaluated against the group's first
    environment (group keys are constant within a group).
    """

    name = "Aggregate"

    def __init__(self, child: EnvOp, items: Tuple[S.SelectItem, ...],
                 group_by: Tuple[S.Expr, ...],
                 having: Optional[S.Expr]):
        super().__init__()
        self.child = child
        self.items = items
        self.group_by = group_by
        self.having = having
        self.groups_in = None

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        from repro.sql.pretty import expr_sql

        if not self.group_by:
            return "Aggregate(whole input)"
        body = "GroupBy(%s)" % ", ".join(expr_sql(e)
                                         for e in self.group_by)
        if self.having is not None:
            body += " having %s" % expr_sql(self.having)
        return body

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        envs = self.child.envs(ctx)
        if not self.group_by:
            result = ctx.executor._aggregate_result(
                S.Select(items=self.items, sources=()), envs, ctx.params,
                ctx.stats)
            self.rows_out = len(result.rows)
            return result.rows, result.columns

        executor = ctx.executor
        buckets: Dict[Tuple, List[Env]] = {}
        order: List[Tuple] = []
        for env in envs:
            key = tuple(executor._eval(e, env, ctx.params, ctx.stats)
                        for e in self.group_by)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
                order.append(key)
            bucket.append(env)
        self.groups_in = len(order)

        columns: List[str] = []
        for item in self.items:
            if isinstance(item.expr, S.Star):
                raise SQLExecutionError(
                    "* cannot appear in a grouped select list")
            name = item.as_name or _default_name(item.expr)
            columns.append(executor._fresh_name(name, columns))

        rows: List[Record] = []
        for key in order:
            group = buckets[key]
            if self.having is not None and not _truthy(
                    self._group_value(self.having, group, ctx)):
                continue
            values = [self._group_value(item.expr, group, ctx)
                      for item in self.items]
            rows.append(Record(dict(zip(columns, values))))
        self.rows_out = len(rows)
        return rows, tuple(columns)

    def _group_value(self, expr: S.Expr, group: List[Env], ctx: _Ctx) -> Any:
        """Evaluate a select/HAVING expression over one group.

        Aggregate calls see the whole group; non-aggregate subtrees are
        evaluated on the group's first environment.
        """
        executor = ctx.executor
        if isinstance(expr, S.FuncCall):
            return executor._eval_aggregate(expr, group, ctx.params,
                                            ctx.stats)
        if isinstance(expr, S.BinOp):
            if expr.op == "AND":
                return (_truthy(self._group_value(expr.left, group, ctx))
                        and _truthy(self._group_value(expr.right, group,
                                                      ctx)))
            if expr.op == "OR":
                return (_truthy(self._group_value(expr.left, group, ctx))
                        or _truthy(self._group_value(expr.right, group,
                                                     ctx)))
            return _apply_op(expr.op,
                             self._group_value(expr.left, group, ctx),
                             self._group_value(expr.right, group, ctx))
        if isinstance(expr, S.NotOp):
            return not _truthy(self._group_value(expr.expr, group, ctx))
        return executor._eval(expr, group[0], ctx.params, ctx.stats)


class RowSortOp(RowOp):
    """ORDER BY over already-projected rows (grouped queries)."""

    name = "RowSort"

    def __init__(self, child: RowOp, order_by: Tuple[S.OrderItem, ...]):
        super().__init__()
        self.child = child
        self.order_by = order_by

    @property
    def children(self):
        return (self.child,)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        from repro.sql.executor import _ReverseAware

        rows, columns = self.child.rows(ctx)

        def key(row: Record):
            parts = []
            for item in self.order_by:
                name = item.column.column
                if name not in row.fields:
                    raise SQLExecutionError(
                        "ORDER BY on a grouped query must name an output "
                        "column (no column %r)" % name)
                parts.append(_ReverseAware(row[name], item.descending))
            return tuple(parts)

        rows = sorted(rows, key=key)
        self.rows_out = len(rows)
        return rows, columns


class DistinctOp(RowOp):
    name = "Distinct"

    def __init__(self, child: RowOp):
        super().__init__()
        self.child = child

    @property
    def children(self):
        return (self.child,)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        rows, columns = self.child.rows(ctx)
        seen = set()
        deduped = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        self.rows_out = len(deduped)
        return deduped, columns


class LimitOp(RowOp):
    name = "Limit"

    def __init__(self, child: RowOp, count: int):
        super().__init__()
        self.child = child
        self.count = count

    @property
    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "%s(%d)" % (self.name, self.count)

    def rows(self, ctx: _Ctx) -> Tuple[List[Record], Tuple[str, ...]]:
        rows, columns = self.child.rows(ctx)
        rows = rows[: self.count]
        self.rows_out = len(rows)
        return rows, columns


# -- lowering -----------------------------------------------------------------


def lower(plan: L.LogicalPlan) -> RowOp:
    """Lower an optimized logical plan to a physical operator tree."""
    return _lower_rows(plan)


def _lower_rows(plan: L.LogicalPlan) -> RowOp:
    if isinstance(plan, L.Limit):
        return LimitOp(_lower_rows(plan.child), plan.count)
    if isinstance(plan, L.Distinct):
        return DistinctOp(_lower_rows(plan.child))
    if isinstance(plan, L.Project):
        return ProjectOp(_lower_envs(plan.child), plan.items)
    if isinstance(plan, L.Aggregate):
        return AggregateOp(_lower_envs(plan.child), plan.items,
                           plan.group_by, plan.having)
    if isinstance(plan, L.Sort):
        child = plan.child
        if isinstance(child, L.Aggregate):
            return RowSortOp(_lower_rows(child), plan.order_by)
        raise TypeError("Sort over %r cannot be lowered here" % (child,))
    raise TypeError("expected a row-producing logical node, got %r"
                    % (plan,))


def _lower_envs(plan: L.LogicalPlan) -> EnvOp:
    if isinstance(plan, L.Sort):
        return SortOp(_lower_envs(plan.child), plan.order_by, plan.top_k)
    if isinstance(plan, L.Filter):
        return FilterOp(_lower_envs(plan.child), plan.predicates)
    if isinstance(plan, L.Join):
        left = _lower_envs(plan.left)
        right = _lower_scan(plan.right)
        if plan.strategy == "hash":
            return HashJoinOp(left, right, plan.predicate)
        return NestedLoopJoinOp(left, right)
    if isinstance(plan, L.Scan):
        return ScanEnvsOp(_lower_scan(plan))
    raise TypeError("expected an env-producing logical node, got %r"
                    % (plan,))


def _lower_scan(scan: L.Scan) -> ScanOp:
    if scan.subquery is not None:
        return SubqueryScanOp(scan.subquery, scan.alias, scan.predicates)
    if scan.index is not None:
        column, value_expr, index_pred = scan.index
        # The probe consumes the chosen predicate; the rest filter.
        predicates = tuple(p for p in scan.predicates
                           if p is not index_pred)
        return IndexScanOp(scan.table, scan.alias, column, value_expr,
                           predicates)
    return FullScanOp(scan.table, scan.alias, scan.predicates)


# -- plan driver ---------------------------------------------------------------


class PhysicalPlan:
    """An executable physical plan (root operator + execution entry)."""

    def __init__(self, root: RowOp):
        self.root = root

    def execute(self, executor, params: Dict[str, Any],
                stats) -> QueryResult:
        ctx = _Ctx(executor=executor, params=params, stats=stats)
        rows, columns = self.root.rows(ctx)
        return QueryResult(rows=rows, columns=columns, stats=stats)
