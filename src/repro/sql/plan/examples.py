"""Executable EXPLAIN examples: one source for docs and tests.

``docs/explain.md`` embeds the rendered plans below verbatim;
``tests/sql/test_explain_golden.py`` pins them as golden strings, and
``tools/check_docs.py`` re-renders them and fails if the document has
drifted from what the engine actually prints.  Change a plan shape
here (or in the optimizer) and the golden test + docs check will point
at every place that needs updating.

The example database is tiny and fully deterministic so rendered
``analyze`` cardinalities are stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.sql.database import Database
from repro.sql.executor import ExecutorOptions


def example_database() -> Database:
    """The deterministic three-table database the examples run on."""
    db = Database()
    db.create_table("participant", ("id", "login", "role_id"))
    db.create_table("role", ("role_id", "role_name"))
    db.create_table("role_descriptor",
                    ("id", "role_id", "descriptor_name"))
    db.create_index("participant", "id")
    db.create_index("role_descriptor", "role_id")
    db.insert_many("participant", (
        {"id": i, "login": "user%d" % i, "role_id": i % 3}
        for i in range(9)))
    db.insert_many("role", (
        {"role_id": i, "role_name": "role%d" % i} for i in range(3)))
    db.insert_many("role_descriptor", (
        {"id": i, "role_id": i % 3, "descriptor_name": "rd%d" % i}
        for i in range(12)))
    return db


@dataclass
class ExplainExample:
    """One rendered example: its slug names the doc snippet."""

    slug: str
    title: str
    sql: str
    options: Optional[ExecutorOptions]
    analyze: bool
    text: str = ""


#: (slug, title, sql, options, analyze) — rendered by render_examples.
_SPECS: Tuple[Tuple[str, str, str, Optional[ExecutorOptions], bool], ...] = (
    ("index-scan", "Index scan with a residual filter",
     "SELECT p.login FROM participant p WHERE p.id = 4 AND p.role_id = 1",
     None, True),
    ("join-chain", "Three-table hash-join chain",
     "SELECT p.login, d.descriptor_name "
     "FROM participant p, role r, role_descriptor d "
     "WHERE p.role_id = r.role_id AND d.role_id = r.role_id",
     None, True),
    ("group-by", "GROUP BY with HAVING",
     "SELECT p.role_id, COUNT(*) AS n FROM participant p "
     "GROUP BY p.role_id HAVING COUNT(*) > 2",
     None, True),
    ("partitioned-join", "Partition-parallel join (parallel=2)",
     "SELECT p.login, r.role_name FROM participant p, role r "
     "WHERE p.role_id = r.role_id",
     ExecutorOptions(parallel=2), True),
    ("partial-aggregate", "Partition-parallel partial aggregation",
     "SELECT COUNT(*) AS n, SUM(p.id) AS tot FROM participant p "
     "WHERE p.role_id = 1",
     ExecutorOptions(parallel=2), True),
    ("partial-group-by", "Partition-parallel GROUP BY",
     "SELECT p.role_id, COUNT(*) AS n FROM participant p "
     "GROUP BY p.role_id",
     ExecutorOptions(parallel=2), True),
    ("having-fallback", "Gather fallback (AND short-circuits in HAVING)",
     "SELECT p.role_id, COUNT(*) AS n FROM participant p "
     "GROUP BY p.role_id HAVING COUNT(*) > 2 AND COUNT(*) < 9",
     ExecutorOptions(parallel=2), False),
    ("cost-reorder", "Cost-based join reordering with order restore",
     "SELECT d.descriptor_name, p.login "
     "FROM role_descriptor d, role r, participant p "
     "WHERE p.role_id = r.role_id AND d.role_id = r.role_id",
     None, True),
    ("merge-sort", "Partition-parallel ORDER BY (sort + k-way merge)",
     "SELECT p.login FROM participant p ORDER BY p.login DESC LIMIT 5",
     ExecutorOptions(parallel=2), True),
    ("having-pushdown", "HAVING conjunct over a group key moves to WHERE",
     "SELECT p.role_id, COUNT(*) AS n FROM participant p "
     "GROUP BY p.role_id HAVING p.role_id > 0 AND COUNT(*) > 2",
     None, True),
    ("vectorized-scan", "Vectorized scan + aggregate (vectorized=True)",
     "SELECT COUNT(*) AS n, SUM(p.id) AS tot FROM participant p "
     "WHERE p.role_id = 1",
     ExecutorOptions(vectorized=True, batch_size=4), True),
)


def render_examples(cost_based: bool = True) -> List[ExplainExample]:
    """Render every example against a fresh example database.

    ``cost_based=False`` renders the same fixtures under the greedy
    planner (``ExecutorOptions(cost_based=False)``) — the
    compatibility mode the golden tests pin against the pre-cost plan
    shapes.
    """
    db = example_database()
    out = []
    for slug, title, sql, options, analyze in _SPECS:
        effective = options or ExecutorOptions()
        if not cost_based:
            effective = replace(effective, cost_based=False)
        view = db.view(effective)
        text = view.explain(sql, analyze=analyze)
        out.append(ExplainExample(slug=slug, title=title, sql=sql,
                                  options=options, analyze=analyze,
                                  text=text))
    return out


def example(slug: str) -> ExplainExample:
    """One rendered example by slug (for tests and docs tooling)."""
    for ex in render_examples():
        if ex.slug == slug:
            return ex
    raise KeyError(slug)
