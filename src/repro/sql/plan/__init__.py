"""Query planning: logical plans, the rule optimizer, physical operators.

The subsystem behind ``ExecutorOptions(planner=True)``:

* :mod:`repro.sql.plan.logical` — the logical plan IR and the
  ``Select`` -> logical-tree builder;
* :mod:`repro.sql.plan.optimizer` — predicate pushdown, index-scan
  selection and hash-join-chain ordering;
* :mod:`repro.sql.plan.physical` — executable operators with
  per-operator statistics;
* :mod:`repro.sql.plan.explain` — the EXPLAIN tree printer.

``plan_select`` is the one-call facade the executor uses.
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast as S
from repro.sql.catalog import Catalog
from repro.sql.plan.explain import render
from repro.sql.plan.logical import LogicalPlan, build_logical
from repro.sql.plan.optimizer import OptimizerOptions, optimize
from repro.sql.plan.physical import PhysicalPlan, lower

__all__ = [
    "LogicalPlan",
    "OptimizerOptions",
    "PhysicalPlan",
    "build_logical",
    "lower",
    "optimize",
    "plan_select",
    "render",
]


def plan_select(select: S.Select, catalog: Catalog,
                options: Optional[OptimizerOptions] = None) -> PhysicalPlan:
    """Build, optimize and lower the plan for one SELECT."""
    logical = build_logical(select)
    optimized = optimize(logical, catalog, options)
    return PhysicalPlan(lower(optimized))
