"""Query planning: logical plans, the rule optimizer, physical operators.

The subsystem behind ``ExecutorOptions(planner=True)``:

* :mod:`repro.sql.plan.logical` — the logical plan IR and the
  ``Select`` -> logical-tree builder;
* :mod:`repro.sql.plan.optimizer` — predicate pushdown, index-scan
  selection, hash-join-chain ordering and the partition-parallel
  Gather rewrite;
* :mod:`repro.sql.plan.physical` — executable operators with
  per-operator statistics, including the partitioned operators behind
  ``ExecutorOptions(parallel=K)``;
* :mod:`repro.sql.plan.parallel` — the thread / forked-process
  substrate partition tasks run on;
* :mod:`repro.sql.plan.explain` — the EXPLAIN tree printer
  (format reference: ``docs/explain.md``);
* :mod:`repro.sql.plan.examples` — the executable EXPLAIN examples
  shared by ``docs/explain.md``, the golden tests and
  ``tools/check_docs.py``.

``plan_select`` is the one-call facade the executor uses.

Invariants every rewrite must preserve (pinned by
``tests/sql/test_planner_equivalence.py`` and
``tests/sql/test_parallel_equivalence.py``):

* **storage order** — unordered scans enumerate rows in insertion
  order, and join output is probe-major (probe order, then bucket
  order); the paper's ``Order`` axiom (Fig. 9) leans on this.
* **tie order** — ORDER BY sorts are stable, and the top-k heap path
  appends the input position to the sort key so it matches
  ``sorted(...)[:limit]`` exactly.
* **first-encounter group order** — GROUP BY emits groups in the order
  their keys first appear in the (storage-ordered) input; the grouped
  analogue of storage order.
* **partition transparency** — a partitioned chain splits the leftmost
  scan into contiguous range partitions and merges in partition-index
  order, which reproduces the three orders above bit for bit; shared
  work (scans, hash-table builds) is counted in the engine statistics
  exactly once, and per-partition counters merge in partition-index
  order.  ``parallel=K`` is therefore row/column/stats-identical to
  the serial plan for every K.
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast as S
from repro.sql.catalog import Catalog
from repro.sql.plan.explain import render
from repro.sql.plan.logical import LogicalPlan, build_logical
from repro.sql.plan.optimizer import OptimizerOptions, optimize
from repro.sql.plan.physical import PhysicalPlan, lower

__all__ = [
    "LogicalPlan",
    "OptimizerOptions",
    "PhysicalPlan",
    "build_logical",
    "lower",
    "optimize",
    "plan_select",
    "render",
]


def plan_select(select: S.Select, catalog: Catalog,
                options: Optional[OptimizerOptions] = None) -> PhysicalPlan:
    """Build, optimize and lower the plan for one SELECT."""
    logical = build_logical(select)
    optimized = optimize(logical, catalog, options)
    return PhysicalPlan(lower(optimized, options))
