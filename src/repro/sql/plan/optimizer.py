"""Logical-plan optimizer: rule rewrites plus a cost-based planner.

The rewrites, applied in order:

1. **HAVING pushdown** — HAVING conjuncts that reference only group
   keys filter whole groups at once, so they move into the WHERE pool
   and filter *rows* before grouping (every row of a group shares the
   group key, so a group survives iff each of its rows does).
   Conjuncts containing aggregates, subqueries or non-key columns stay
   in HAVING.  Toggle: ``OptimizerOptions(having_pushdown=...)``.

2. **Predicate pushdown** — the WHERE conjunction is split; conjuncts
   that mention a single source move into that source's :class:`Scan`,
   conjuncts of the form ``a.x = b.y`` become join-predicate candidates,
   everything else stays in a residual :class:`Filter` above the joins.

3. **Index-scan selection** — a pushed ``alias.col = constant/param``
   conjunct whose column carries a hash index turns the scan into an
   index probe (``Scan.index``).  In greedy mode the *first* such
   conjunct wins (the seed rule); in cost-based mode the probe with
   the lowest estimated cost (``rows / ndv(col)``) wins, with the
   full scan as the alternative — an equality probe is never estimated
   costlier than the full scan it replaces, so the cost rule agrees
   with the seed rule whenever both apply, by construction.

4. **Join ordering** — greedy mode joins sources left-deep in FROM
   order (the seed behaviour); cost-based mode runs a Selinger-style
   dynamic program over left-deep orders, scoring each join by the
   estimated intermediate cardinality (``|L|·|R| / max(ndv)`` for an
   equality connector, the full cross product otherwise) from the
   table statistics (:mod:`repro.sql.stats`).  Equal-cost orders
   tie-break toward FROM order.  When the chosen order differs from
   FROM order, a :class:`~repro.sql.plan.logical.Restore` node above
   the chain re-sorts environments into the pinned FROM-order
   enumeration, so the reordering is invisible to every operator above
   it (rows, columns, group order and engine statistics all match the
   seed pipeline exactly).

5. **Partition parallelism** — with ``parallel = K > 1`` the whole
   env-producing segment is wrapped in a
   :class:`~repro.sql.plan.logical.Gather` boundary (see PR 4).
   ``parallel="auto"`` resolves K from the estimated leftmost-scan
   cardinality and the usable core count
   (:func:`resolve_auto_partitions`).  An ORDER BY directly above the
   boundary lowers to per-partition sorts plus a k-way heap merge
   (``Sort.merge``) when ``parallel_sort`` is on.

``OptimizerOptions(cost_based=False)`` reproduces the greedy planner's
plans exactly; ``cost_based=True`` (the default) additionally annotates
every logical node with ``est_rows`` / ``est_cost``, which lowering
copies onto the physical operators and EXPLAIN prints.  The
classification logic deliberately mirrors the legacy executor's
(`Executor._classify` / `_join_all`), so every mode stays row-for-row
identical to the seed pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sql import ast as S
from repro.sql.catalog import Catalog
from repro.sql.errors import SQLExecutionError
from repro.sql.executor import (
    Executor,
    _aliases_used,
    _default_name,
    _flatten_and,
)
from repro.sql.plan import logical as L
from repro.sql.plan.parallel import usable_cores
from repro.sql.stats import ROWID, TableStats

#: Default selectivities when statistics cannot answer (System R's
#: magic numbers): equality against an unknown-NDV column, range
#: predicates, and anything the estimator does not understand.
DEFAULT_EQ_NDV = 10
RANGE_SELECTIVITY = 1.0 / 3.0
UNKNOWN_SELECTIVITY = 1.0 / 3.0

#: Join-order search switches to the greedy chain beyond this many
#: sources (the DP is O(n·2^n)); QBS-generated queries have 2-4.
MAX_DP_SOURCES = 12

#: ``parallel="auto"``: one partition per this many (estimated) rows
#: of the leftmost scan, capped by the usable core count.
AUTO_ROWS_PER_PARTITION = 2048


@dataclass
class OptimizerOptions:
    """Rule toggles (ablation knobs for benchmarks and EXPLAIN tests).

    ``parallel`` is the partition count for the Gather rewrite; ``1``
    (the default) keeps the serial plan shape and ``"auto"`` derives K
    from table statistics.  ``cost_based=False`` is the greedy planner
    exactly as PR 3 built it (mode flags, not forks).
    """

    index_scans: bool = True
    hash_joins: bool = True
    predicate_pushdown: bool = True
    parallel: Union[int, str] = 1
    cost_based: bool = True
    having_pushdown: bool = True
    parallel_sort: bool = True
    #: lowering concerns, not rewrite rules: ``optimize`` ignores them
    #: (the logical plan is mode-independent) and ``lower`` consumes
    #: them to pick vectorized physical operators.
    vectorized: bool = False
    batch_size: int = 1024


def resolve_auto_partitions(est_rows: float, cores: int) -> int:
    """The ``parallel="auto"`` cost rule: K from leftmost-scan size.

    One partition per :data:`AUTO_ROWS_PER_PARTITION` estimated rows,
    at least 1, never more than the usable cores — small inputs stay
    serial (partitioning overhead would dominate), large inputs fan
    out to the hardware.
    """
    return int(max(1, min(cores, est_rows // AUTO_ROWS_PER_PARTITION)))


def optimize(plan: L.LogicalPlan, catalog: Catalog,
             options: Optional[OptimizerOptions] = None) -> L.LogicalPlan:
    """Apply the rewrite rules to a freshly built logical tree."""
    options = options or OptimizerOptions()

    # Locate the Filter-over-joins segment the rules operate on.
    #  The builder produces  wrappers* -> [Filter] -> (Join* | Scan).
    wrappers: List[L.LogicalPlan] = []
    node = plan
    while isinstance(node, (L.Limit, L.Distinct, L.Project, L.Sort,
                            L.Aggregate)):
        wrappers.append(node)
        node = node.children()[0]

    conjuncts: List[S.Expr] = []
    if isinstance(node, L.Filter):
        for pred in node.predicates:
            conjuncts.extend(_flatten_and(pred))
        node = node.child

    if options.having_pushdown:
        _push_having(wrappers, conjuncts)

    scans = _collect_scans(node)
    pushed, join_pool, residual = _classify(conjuncts, scans, catalog,
                                            options)

    model = _CostModel(scans, catalog) if (options.cost_based
                                           or options.parallel == "auto") \
        else None

    for scan in scans:
        scan.predicates = tuple(pushed.get(scan.alias, ()))
        if options.index_scans:
            if options.cost_based:
                _select_index_cost(scan, catalog)
            else:
                _select_index(scan, catalog)

    from_order = tuple(scan.alias for scan in scans)
    if options.cost_based and _reorder_is_safe(wrappers, conjuncts,
                                               scans, catalog):
        ordered = _search_join_order(scans, join_pool, options, model)
    else:
        ordered = list(scans)
    order_changed = tuple(s.alias for s in ordered) != from_order
    joined = _build_chain(ordered, join_pool, residual, options,
                          orient=options.cost_based)
    leftmost = ordered[0]
    if residual:
        joined = L.Filter(joined, predicates=tuple(residual))

    partitions = _resolve_partitions(options, leftmost, model)
    if partitions > 1:
        joined = L.Gather(joined, partitions=partitions)

    if order_changed:
        joined = L.Restore(joined, aliases=from_order)

    # Re-attach the wrappers, innermost last.
    for wrapper in reversed(wrappers):
        if isinstance(wrapper, L.Sort) and isinstance(joined, L.Gather) \
                and options.parallel_sort:
            wrapper.merge = True
        _set_child(wrapper, joined)
        joined = wrapper

    if options.cost_based:
        _annotate(joined, model)
    return joined


def _collect_scans(node: L.LogicalPlan) -> List[L.Scan]:
    """The scans of a left-deep join chain, in FROM order."""
    if isinstance(node, L.Scan):
        return [node]
    if isinstance(node, L.Join):
        return _collect_scans(node.left) + [node.right]
    raise TypeError("unexpected logical node %r under Filter" % (node,))


# -- HAVING pushdown -----------------------------------------------------------


def _push_having(wrappers: Sequence[L.LogicalPlan],
                 conjuncts: List[S.Expr]) -> None:
    """Move group-key-only HAVING conjuncts into the WHERE pool.

    Sound because a group key is constant within its group: a conjunct
    built only from group keys (and literals/params) holds for every
    row of a group or for none, so filtering rows before grouping
    removes exactly the groups HAVING would have removed — and the
    surviving groups keep their first-encounter order.  Only plain
    column-reference keys are matched (conservative).
    """
    agg = next((w for w in wrappers if isinstance(w, L.Aggregate)), None)
    if agg is None or not agg.group_by or agg.having is None:
        return
    keys = {(key.alias, key.column) for key in agg.group_by
            if isinstance(key, S.ColumnRef)}
    remaining: List[S.Expr] = []
    for pred in _flatten_and(agg.having):
        if _references_only_keys(pred, keys):
            conjuncts.append(pred)
        else:
            remaining.append(pred)
    if len(remaining) != len(_flatten_and(agg.having)):
        agg.having = reduce(lambda a, b: S.BinOp("AND", a, b),
                            remaining) if remaining else None


def _references_only_keys(expr: S.Expr, keys) -> bool:
    if isinstance(expr, (S.Literal, S.Param)):
        return True
    if isinstance(expr, S.ColumnRef):
        return (expr.alias, expr.column) in keys
    if isinstance(expr, S.BinOp):
        return (_references_only_keys(expr.left, keys)
                and _references_only_keys(expr.right, keys))
    if isinstance(expr, S.NotOp):
        return _references_only_keys(expr.expr, keys)
    return False  # aggregates, subqueries, row refs stay in HAVING


# -- predicate classification --------------------------------------------------


def _classify(conjuncts: Sequence[S.Expr], scans: Sequence[L.Scan],
              catalog: Catalog, options: OptimizerOptions
              ) -> Tuple[Dict[str, List[S.Expr]],
                         List["_JoinPred"], List[S.Expr]]:
    """Split WHERE conjuncts into pushed / join / residual groups."""
    aliases = {scan.alias for scan in scans}
    by_column: Dict[str, str] = {}
    for scan in scans:
        for column in _scan_columns(scan, catalog):
            by_column.setdefault(column, scan.alias)

    pushed: Dict[str, List[S.Expr]] = {}
    join_pool: List[_JoinPred] = []
    residual: List[S.Expr] = []
    for pred in conjuncts:
        used = _aliases_used(pred, aliases, by_column)
        if used is None or not options.predicate_pushdown:
            residual.append(pred)
        elif len(used) <= 1:
            alias = next(iter(used), scans[0].alias)
            pushed.setdefault(alias, []).append(pred)
        elif len(used) == 2 and isinstance(pred, S.BinOp) \
                and pred.op == "=":
            a, b = sorted(used)
            join_pool.append(_JoinPred(
                a, b, pred,
                _side_alias(pred.left, aliases, by_column),
                _side_alias(pred.right, aliases, by_column)))
        else:
            residual.append(pred)
    return pushed, join_pool, residual


@dataclass
class _JoinPred:
    """One ``a.x = b.y`` WHERE conjunct, with its resolved side owners.

    ``a``/``b`` are the two aliases (sorted); ``left_alias`` /
    ``right_alias`` name which alias each *syntactic side* of the
    predicate belongs to (``None`` when a side could not be resolved
    to a single alias) — the cost-based chain builder uses them to
    orient the predicate so the build side is always syntactically
    recognizable, whatever join order was chosen.
    """

    a: str
    b: str
    pred: S.BinOp
    left_alias: Optional[str]
    right_alias: Optional[str]


def _side_alias(expr: S.Expr, aliases, by_column) -> Optional[str]:
    used = _aliases_used(expr, aliases, by_column)
    if used is not None and len(used) == 1:
        return next(iter(used))
    return None


def _scan_columns(scan: L.Scan, catalog: Catalog) -> Tuple[str, ...]:
    """Column names a scan will expose (for bare-column resolution).

    Matches what the executor resolves at run time: catalog columns for
    base tables, statically expanded select-list names for subqueries.
    """
    if scan.subquery is not None:
        return static_output_columns(scan.subquery, catalog)
    try:
        return catalog.table(scan.table).columns
    except SQLExecutionError:
        return ()


def static_output_columns(select: S.Select, catalog: Catalog
                          ) -> Tuple[str, ...]:
    """Output column names of a SELECT, derived without executing it.

    Reproduces the executor's projection naming (``AS`` names, default
    names, ``*`` expansion in source order, ``_2`` de-duplication).
    """
    source_cols: List[Tuple[str, Tuple[str, ...]]] = []
    for src in select.sources:
        if isinstance(src, S.TableSource):
            try:
                cols = catalog.table(src.table).columns
            except SQLExecutionError:
                cols = ()
            source_cols.append((src.alias, cols))
        else:
            source_cols.append(
                (src.alias, static_output_columns(src.query, catalog)))

    columns: List[str] = []
    for item in select.items:
        if isinstance(item.expr, S.Star):
            for alias, cols in source_cols:
                if item.expr.alias in (None, alias):
                    for column in cols:
                        columns.append(Executor._fresh_name(column, columns))
        else:
            name = item.as_name or _default_name(item.expr)
            columns.append(Executor._fresh_name(name, columns))
    return tuple(columns)


# -- index-scan selection ------------------------------------------------------


def _select_index(scan: L.Scan, catalog: Catalog) -> None:
    """Greedy rule: the first pushed ``col = const`` with an index."""
    if scan.table is None:
        return
    table = catalog.table(scan.table)
    for pred in scan.predicates:
        probe = _index_probe_expr(pred, table.indexes)
        if probe is not None:
            scan.index = probe + (pred,)
            return


def _select_index_cost(scan: L.Scan, catalog: Catalog) -> None:
    """Cost rule: the probe with the lowest estimated rows fetched.

    A probe on column ``c`` fetches an estimated ``rows / ndv(c)``
    bucket; the full scan fetches ``rows``.  Since ``ndv >= 1`` the
    probe never loses, so the choice *whether* to use an index matches
    the greedy rule; the cost only arbitrates *which* index when a
    scan has several indexable conjuncts (highest NDV = smallest
    bucket wins; ties keep the first, the greedy choice).
    """
    if scan.table is None:
        return
    table = catalog.table(scan.table)
    best = None
    best_cost = float(table.stats.row_count)
    for pred in scan.predicates:
        probe = _index_probe_expr(pred, table.indexes)
        if probe is None:
            continue
        ndv = table.stats.ndv(probe[0]) or DEFAULT_EQ_NDV
        cost = table.stats.row_count / max(ndv, 1)
        if best is None or cost < best_cost:
            best, best_cost = probe + (pred,), cost
    if best is not None:
        scan.index = best


def _index_probe_expr(pred: S.Expr, indexes
                      ) -> Optional[Tuple[str, S.Expr]]:
    """Match ``alias.col = constant`` against the table's indexes."""
    if not isinstance(pred, S.BinOp) or pred.op != "=":
        return None
    for col_side, val_side in ((pred.left, pred.right),
                               (pred.right, pred.left)):
        if isinstance(col_side, S.ColumnRef) and isinstance(
                val_side, (S.Literal, S.Param)):
            if col_side.column in indexes:
                return col_side.column, val_side
    return None


# -- the cost model ------------------------------------------------------------


class _CostModel:
    """Cardinality and cost estimation over the query's sources.

    Estimates are classic System R: ``rows / ndv`` for equality
    selections, linear interpolation over [min, max] for ranges when
    the bounds are numeric, ``|L|·|R| / max(ndv_l, ndv_r)`` for
    equality joins, and documented default fractions when statistics
    cannot answer.  Costs follow the C_out convention — the sum of
    estimated intermediate cardinalities plus raw scan sizes — which
    is exactly the quantity a join reordering can shrink.
    """

    def __init__(self, scans: Sequence[L.Scan], catalog: Catalog):
        self.stats_by_alias: Dict[str, Optional[TableStats]] = {}
        self.raw_rows: Dict[str, float] = {}
        for scan in scans:
            if scan.table is not None:
                stats = catalog.table(scan.table).stats
                self.stats_by_alias[scan.alias] = stats
                self.raw_rows[scan.alias] = float(stats.row_count)
            else:
                self.stats_by_alias[scan.alias] = None
                self.raw_rows[scan.alias] = _estimate_select(
                    scan.subquery, catalog)

    # -- per-column statistics --------------------------------------------

    def ndv(self, ref: S.Expr, default_alias: Optional[str] = None
            ) -> Optional[int]:
        if not isinstance(ref, S.ColumnRef):
            return None
        alias = ref.alias
        if alias is None:
            alias = default_alias or self._alias_for_column(ref.column)
        stats = self.stats_by_alias.get(alias)
        if stats is None:
            return None
        return stats.ndv(ref.column)

    def bounds(self, ref: S.ColumnRef,
               default_alias: Optional[str] = None):
        alias = ref.alias if ref.alias is not None \
            else (default_alias or self._alias_for_column(ref.column))
        stats = self.stats_by_alias.get(alias)
        if stats is None:
            return None, None
        return stats.bounds(ref.column)

    def _alias_for_column(self, column: str) -> Optional[str]:
        for alias, stats in self.stats_by_alias.items():
            if stats is not None and (column in stats.columns
                                      or column == "_rowid"):
                return alias
        return None

    # -- selectivity -------------------------------------------------------

    def selectivity(self, pred: S.Expr,
                    default_alias: Optional[str] = None) -> float:
        if isinstance(pred, S.BinOp):
            if pred.op == "AND":
                return (self.selectivity(pred.left, default_alias)
                        * self.selectivity(pred.right, default_alias))
            if pred.op == "OR":
                s1 = self.selectivity(pred.left, default_alias)
                s2 = self.selectivity(pred.right, default_alias)
                return s1 + s2 - s1 * s2
            if pred.op in ("=", "!="):
                eq = self._eq_selectivity(pred, default_alias)
                return eq if pred.op == "=" else 1.0 - eq
            if pred.op in ("<", ">", "<=", ">="):
                return self._range_selectivity(pred, default_alias)
            return UNKNOWN_SELECTIVITY
        if isinstance(pred, S.NotOp):
            return 1.0 - self.selectivity(pred.expr, default_alias)
        return UNKNOWN_SELECTIVITY

    def _eq_selectivity(self, pred: S.BinOp,
                        default_alias: Optional[str]) -> float:
        left_col = isinstance(pred.left, S.ColumnRef)
        right_col = isinstance(pred.right, S.ColumnRef)
        if left_col and right_col:
            return self.join_selectivity(pred)
        ref = pred.left if left_col else pred.right if right_col else None
        if ref is None:
            return UNKNOWN_SELECTIVITY
        ndv = self.ndv(ref, default_alias) or DEFAULT_EQ_NDV
        return 1.0 / max(ndv, 1)

    def _range_selectivity(self, pred: S.BinOp,
                           default_alias: Optional[str]) -> float:
        for ref, value, flip in ((pred.left, pred.right, False),
                                 (pred.right, pred.left, True)):
            if isinstance(ref, S.ColumnRef) and isinstance(value,
                                                           S.Literal):
                lo, hi = self.bounds(ref, default_alias)
                if isinstance(lo, (int, float)) \
                        and isinstance(hi, (int, float)) \
                        and isinstance(value.value, (int, float)) \
                        and hi > lo:
                    frac = (value.value - lo) / float(hi - lo)
                    op = pred.op if not flip else \
                        {"<": ">", ">": "<", "<=": ">=", ">=": "<="}[
                            pred.op]
                    sel = frac if op in ("<", "<=") else 1.0 - frac
                    return min(1.0, max(0.0, sel))
        return RANGE_SELECTIVITY

    def join_selectivity(self, pred: S.BinOp) -> float:
        ndvs = [self.ndv(side) for side in (pred.left, pred.right)]
        known = [n for n in ndvs if n]
        return 1.0 / max(max(known) if known else DEFAULT_EQ_NDV, 1)

    # -- per-scan estimates ------------------------------------------------

    def scan_est(self, scan: L.Scan) -> float:
        est = self.raw_rows[scan.alias]
        for pred in scan.predicates:
            est *= self.selectivity(pred, scan.alias)
        return est

    def scan_cost(self, scan: L.Scan) -> float:
        raw = self.raw_rows[scan.alias]
        if scan.index is not None:
            ndv = self.ndv(S.ColumnRef(scan.alias, scan.index[0]),
                           scan.alias) or DEFAULT_EQ_NDV
            return raw / max(ndv, 1)
        return raw


def _estimate_select(select: S.Select, catalog: Catalog) -> float:
    """Rough output-cardinality estimate for a FROM subquery."""
    est = 1.0
    aliases: Dict[str, Optional[TableStats]] = {}
    for src in select.sources:
        if isinstance(src, S.TableSource):
            try:
                stats = catalog.table(src.table).stats
            except SQLExecutionError:
                stats = None
            aliases[src.alias] = stats
            est *= float(stats.row_count) if stats is not None else 1.0
        else:
            aliases[src.alias] = None
            est *= _estimate_select(src.query, catalog)
    for _ in _flatten_and(select.where):
        est *= UNKNOWN_SELECTIVITY
    if select.group_by or select.having is not None:
        est = max(1.0, est * UNKNOWN_SELECTIVITY)
    if select.limit is not None:
        est = min(est, float(select.limit))
    return est


# -- join ordering -------------------------------------------------------------


def _build_chain(ordered: Sequence[L.Scan],
                 join_pool: List[_JoinPred],
                 residual: List[S.Expr],
                 options: OptimizerOptions,
                 orient: bool = False) -> L.LogicalPlan:
    """Left-deep join chain over ``ordered``; connectors taken greedily.

    With ``orient`` (cost-based mode) each hash-join predicate is
    *oriented*: when the build-side expression is not recognizably the
    build alias's (qualified) syntactic left, the sides are swapped so
    the executor's build/probe assignment (`_hash_build`) recognizes
    the build side regardless of the chosen order.  Greedy mode passes
    predicates through untouched — the seed behaviour.
    """
    plan: L.LogicalPlan = ordered[0]
    joined_aliases = {ordered[0].alias}
    remaining = list(join_pool)
    for scan in ordered[1:]:
        connector = None
        if options.hash_joins:
            for entry in remaining:
                if {entry.a, entry.b} & joined_aliases \
                        and scan.alias in (entry.a, entry.b):
                    connector = entry
                    break
        if connector is not None:
            remaining.remove(connector)
            pred = _orient(connector, scan.alias) if orient \
                else connector.pred
            plan = L.Join(plan, scan, strategy="hash", predicate=pred)
        else:
            plan = L.Join(plan, scan, strategy="nested")
        joined_aliases.add(scan.alias)
    # Join predicates that found no slot in the chain become filters,
    # evaluated after the joins exactly like the legacy executor does.
    residual.extend(entry.pred for entry in remaining)
    return plan


def _reorder_is_safe(wrappers: Sequence[L.LogicalPlan],
                     conjuncts: Sequence[S.Expr],
                     scans: Sequence[L.Scan],
                     catalog: Catalog) -> bool:
    """Veto join reordering when bare column references are ambiguous.

    The executor resolves an unqualified column by iterating the
    environment in *insertion* order — which is the join-chain order,
    not FROM order, and :class:`~repro.sql.plan.logical.Restore` only
    re-sorts the environment list, not each environment's insertion
    order.  A bare column exposed by two or more sources (or a bare
    ``_rowid`` with several sources) would therefore resolve against a
    different table under a reordered chain.  Estimates steer, they
    never change results: such queries keep the FROM-order chain.
    Fully qualified references — everything QBS-generated SQL emits —
    are order-insensitive and keep the search enabled.
    """
    if len(scans) <= 1:
        return True
    bare: set = set()
    for expr in _plan_exprs(wrappers, conjuncts):
        _collect_bare_columns(expr, bare)
    if not bare:
        return True
    owners: Dict[str, int] = {}
    for scan in scans:
        for column in _scan_columns(scan, catalog):
            owners[column] = owners.get(column, 0) + 1
    for column in bare:
        if column == ROWID or owners.get(column, 0) > 1:
            return False
    return True


def _plan_exprs(wrappers: Sequence[L.LogicalPlan],
                conjuncts: Sequence[S.Expr]):
    """Every expression the executor may evaluate against an env."""
    for pred in conjuncts:
        yield pred
    for wrapper in wrappers:
        if isinstance(wrapper, L.Aggregate):
            for item in wrapper.items:
                if not isinstance(item.expr, S.Star):
                    yield item.expr
            for key in wrapper.group_by:
                yield key
            if wrapper.having is not None:
                yield wrapper.having
        elif isinstance(wrapper, L.Sort):
            for item in wrapper.order_by:
                yield item.column
        elif isinstance(wrapper, L.Project):
            for item in wrapper.items:
                if not isinstance(item.expr, S.Star):
                    yield item.expr


def _collect_bare_columns(expr: S.Expr, out: set) -> None:
    """Unqualified column names referenced anywhere in ``expr``.

    Subquery *internals* resolve in their own scope (the engine runs
    uncorrelated subqueries through a nested executor), so only the IN
    subject is walked.
    """
    if isinstance(expr, S.ColumnRef):
        if expr.alias is None:
            out.add(expr.column)
    elif isinstance(expr, S.BinOp):
        _collect_bare_columns(expr.left, out)
        _collect_bare_columns(expr.right, out)
    elif isinstance(expr, S.NotOp):
        _collect_bare_columns(expr.expr, out)
    elif isinstance(expr, S.FuncCall):
        if expr.arg is not None:
            _collect_bare_columns(expr.arg, out)
    elif isinstance(expr, S.InSubquery):
        _collect_bare_columns(expr.subject, out)


def _orient(entry: _JoinPred, build_alias: str) -> S.BinOp:
    """Swap predicate sides iff the executor would mis-assign them."""
    pred = entry.pred
    syntactic_build_is_left = (
        isinstance(pred.left, S.ColumnRef)
        and pred.left.alias == build_alias)
    if not syntactic_build_is_left and entry.left_alias == build_alias \
            and entry.right_alias != build_alias:
        return S.BinOp(pred.op, pred.right, pred.left)
    return pred


def _search_join_order(scans: List[L.Scan], join_pool: List[_JoinPred],
                       options: OptimizerOptions,
                       model: _CostModel) -> List[L.Scan]:
    """Selinger-style DP over left-deep join orders.

    States are alias subsets; each is extended by one more scan, costed
    as ``C_out`` (scan cost + every intermediate's estimated rows).
    Equal costs tie-break on the lexicographically smallest FROM-order
    index sequence, so a cost tie (empty tables, symmetric sizes)
    reproduces the greedy FROM-order chain exactly.
    """
    n = len(scans)
    if n <= 1 or n > MAX_DP_SOURCES:
        return list(scans)

    est = [model.scan_est(scan) for scan in scans]
    cost = [model.scan_cost(scan) for scan in scans]
    alias_of = [scan.alias for scan in scans]

    def connect_sel(mask: int, j: int) -> Optional[float]:
        if not options.hash_joins:
            return None
        joined = {alias_of[i] for i in range(n) if mask & (1 << i)}
        for entry in join_pool:
            if {entry.a, entry.b} & joined \
                    and alias_of[j] in (entry.a, entry.b):
                return model.join_selectivity(entry.pred)
        return None

    #: mask -> (cost, est_rows, order tuple of FROM indices)
    best: Dict[int, Tuple[float, float, Tuple[int, ...]]] = {
        1 << i: (cost[i], est[i], (i,)) for i in range(n)}
    for mask in sorted(range(1, 1 << n), key=lambda m: bin(m).count("1")):
        state = best.get(mask)
        if state is None:
            continue
        mask_cost, mask_est, order = state
        for j in range(n):
            bit = 1 << j
            if mask & bit:
                continue
            sel = connect_sel(mask, j)
            out = mask_est * est[j] * (sel if sel is not None else 1.0)
            candidate = (mask_cost + cost[j] + out, out, order + (j,))
            seen = best.get(mask | bit)
            if seen is None or (candidate[0], candidate[2]) \
                    < (seen[0], seen[2]):
                best[mask | bit] = candidate
    order = best[(1 << n) - 1][2]
    return [scans[i] for i in order]


# -- parallelism ---------------------------------------------------------------


def _resolve_partitions(options: OptimizerOptions, leftmost: L.Scan,
                        model: Optional[_CostModel]) -> int:
    if options.parallel == "auto":
        raw = model.raw_rows[leftmost.alias] if model is not None else 0
        return resolve_auto_partitions(raw, usable_cores())
    return options.parallel


# -- estimate annotation -------------------------------------------------------


def _annotate(plan: L.LogicalPlan, model: _CostModel
              ) -> Tuple[float, float]:
    """Bottom-up ``est_rows`` / ``est_cost`` for every node (C_out)."""
    if isinstance(plan, L.Scan):
        est, cost = model.scan_est(plan), model.scan_cost(plan)
    elif isinstance(plan, L.Join):
        l_est, l_cost = _annotate(plan.left, model)
        r_est, r_cost = _annotate(plan.right, model)
        sel = model.join_selectivity(plan.predicate) \
            if plan.strategy == "hash" else 1.0
        est = l_est * r_est * sel
        cost = l_cost + r_cost + est
    elif isinstance(plan, L.Filter):
        est, cost = _annotate(plan.child, model)
        for pred in plan.predicates:
            est *= model.selectivity(pred)
        cost += est
    elif isinstance(plan, (L.Gather, L.Distinct, L.Project)):
        est, cost = _annotate(plan.children()[0], model)
    elif isinstance(plan, L.Restore):
        est, cost = _annotate(plan.child, model)
        cost += est                      # the re-sort touches every env
    elif isinstance(plan, L.Sort):
        est, cost = _annotate(plan.child, model)
        if plan.top_k is not None:
            est = min(est, float(plan.top_k))
        cost += est
    elif isinstance(plan, L.Limit):
        est, cost = _annotate(plan.child, model)
        est = min(est, float(plan.count))
        cost += est
    elif isinstance(plan, L.Aggregate):
        child_est, cost = _annotate(plan.child, model)
        if plan.group_by:
            groups = 1.0
            known = True
            for key in plan.group_by:
                ndv = model.ndv(key)
                if ndv is None:
                    known = False
                    break
                groups *= max(ndv, 1)
            est = min(child_est, groups) if known else child_est
        else:
            est = 1.0
        cost += est
    else:  # pragma: no cover - builder produces no other nodes
        raise TypeError("cannot annotate %r" % (plan,))
    plan.est_rows = est
    plan.est_cost = cost
    return est, cost


def _set_child(wrapper: L.LogicalPlan, child: L.LogicalPlan) -> None:
    if isinstance(wrapper, (L.Filter, L.Aggregate, L.Sort, L.Project,
                            L.Distinct, L.Limit, L.Restore)):
        wrapper.child = child
    else:  # pragma: no cover - builder produces no other wrappers
        raise TypeError("cannot re-parent %r" % (wrapper,))
